"""The existential 2-pebble game as bitset arc consistency.

For ``k = 2`` the greatest forth-closed family of
:func:`repro.pebble.game.solve_pebble_game` collapses to a binary
constraint network over the source elements: a singleton ``{a → b}``
survives iff for *every* other source element ``a'`` some pair
``{a → b, a' → b'}`` survives, and a pair survives iff it is a partial
homomorphism on the facts its two elements cover and both singletons
survive.  That is exactly arc consistency on the complete graph of source
elements with, per pair, the "compatible images" relation — so the
O(n²·m²) fixpoint can run on bitmasks instead of sets of frozenset maps:

* the live images of element ``a`` are one int mask ``D[a]``;
* for each pair with at least one covering mixed fact, a support matrix
  ``row[b1] = mask of compatible b2`` (pairs with no covering fact
  constrain nothing: any live ``b'`` supports, so only constrained pairs
  are stored or propagated);
* the Spoiler wins iff some ``D[a]`` wipes out — equivalently the empty
  map dies in the family formulation.

``spoiler_wins_k2`` agrees with ``spoiler_wins(source, target, 2)`` on
every instance (asserted instance-by-instance in the parity suite) while
skipping the O(n²·m²) explicit family.
"""

from __future__ import annotations

from collections import deque

from repro.kernel.compile import (
    CompiledTarget,
    compile_source,
    compile_target,
)
from repro.structures.structure import Structure

__all__ = ["spoiler_wins_k2"]


def spoiler_wins_k2(
    source: Structure, target: Structure | CompiledTarget
) -> bool:
    """Whether the Spoiler wins the existential 2-pebble game on (A, B)."""
    csource = compile_source(source)
    ctarget = compile_target(target)
    n = len(csource.variables)
    m = len(ctarget.values)
    if n == 0:
        # Only the empty map is in play; it trivially has the forth
        # property over no elements, so the Duplicator wins.
        return False
    if m == 0:
        return True

    full = ctarget.full_mask
    tuples_by_name = ctarget.tuples

    # Singleton domains: facts covered by one element constrain its
    # images to the "diagonal" of the relation.
    domains = [full] * n
    # Pair supports: for each constrained unordered pair, a row matrix in
    # both directions.  rows[(a1, a2)][b1] = mask of b2 compatible with
    # b1 across every mixed fact covered by {a1, a2}.
    rows: dict[tuple[int, int], list[int]] = {}

    for name, scope in csource.constraints:
        members = set(scope)
        if len(members) == 1:
            (a,) = members
            diagonal = 0
            for row in tuples_by_name[name]:
                first = row[0]
                if all(value == first for value in row):
                    diagonal |= 1 << first
            domains[a] &= diagonal
            if not domains[a]:
                return True
        elif len(members) == 2:
            a1, a2 = sorted(members)
            allowed = 0  # mask over packed (b1 * m + b2) pairs
            for row in tuples_by_name[name]:
                b1 = b2 = -1
                consistent = True
                for position, x in enumerate(scope):
                    value = row[position]
                    if x == a1:
                        if b1 >= 0 and b1 != value:
                            consistent = False
                            break
                        b1 = value
                    else:
                        if b2 >= 0 and b2 != value:
                            consistent = False
                            break
                        b2 = value
                if consistent:
                    allowed |= 1 << (b1 * m + b2)
            forward = rows.get((a1, a2))
            backward = rows.get((a2, a1))
            if forward is None:
                forward = rows[(a1, a2)] = [full] * m
                backward = rows[(a2, a1)] = [full] * m
            pair_mask = (1 << m) - 1
            for b1 in range(m):
                row_allowed = allowed >> (b1 * m) & pair_mask
                forward[b1] &= row_allowed
            for b2 in range(m):
                column = 0
                probe = 1 << b2
                for b1 in range(m):
                    if allowed >> (b1 * m) & probe:
                        column |= 1 << b1
                backward[b2] &= column
        # Facts covered by 3+ elements never fit under two pebbles: the
        # 2-pebble game (like the reference implementation) ignores them.

    # Arc consistency over the constrained pairs.
    incoming_arcs: dict[int, list[tuple[int, int]]] = {}
    for arc in rows:
        incoming_arcs.setdefault(arc[1], []).append(arc)
    queue: deque[tuple[int, int]] = deque(rows)
    queued = set(rows)
    while queue:
        arc = queue.popleft()
        queued.discard(arc)
        a1, a2 = arc
        row = rows[arc]
        other = domains[a2]
        domain = domains[a1]
        surviving = 0
        mask = domain
        while mask:
            low = mask & -mask
            if row[low.bit_length() - 1] & other:
                surviving |= low
            mask ^= low
        if surviving != domain:
            if not surviving:
                return True
            domains[a1] = surviving
            for incoming in incoming_arcs.get(a1, ()):
                if incoming not in queued:
                    queue.append(incoming)
                    queued.add(incoming)
    return False
