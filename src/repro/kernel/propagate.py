"""Generalized arc consistency on compiled instances.

The bitset replacement for the AC-3 rescan loop of :mod:`repro.csp.ac3`:
instead of rebuilding the list of supported target tuples per queue pop,
a constraint's valid-tuple set is one AND-of-ORs over precompiled support
bitsets, and each domain value's support question is a single AND.

Two layers keep the common case cheap:

* **AC-2001-style residual last supports** — per ``(constraint, position,
  value)`` the propagator remembers the index of the tuple that supported
  the value last time.  While that tuple is still alive (every coordinate
  still in its variable's domain — an O(arity) bit test), the value is
  supported and the valid-tuple mask is never materialized.
* **Lazy valid masks** — the AND-of-ORs is computed at most once per
  queue pop, and only when some residual actually died.

The fixpoint computed is the unique (generalized) arc-consistent closure,
the same one the reference ``establish_arc_consistency`` reaches.
"""

from __future__ import annotations

from collections import deque

from repro.kernel.compile import CompiledSource, CompiledTarget
from repro.obs.metrics import kcount

__all__ = ["propagate"]


def _valid_mask(
    supports: tuple[tuple[int, ...], ...],
    scope: tuple[int, ...],
    domains: list[int],
    all_tuples: int,
) -> int:
    """The mask of relation tuples compatible with the current domains."""
    valid = all_tuples
    for position, x in enumerate(scope):
        allowed = 0
        mask = domains[x]
        per_value = supports[position]
        while mask:
            low = mask & -mask
            allowed |= per_value[low.bit_length() - 1]
            mask ^= low
        valid &= allowed
        if not valid:
            break
    return valid


def propagate(
    csource: CompiledSource,
    ctarget: CompiledTarget,
    domains: list[int],
) -> list[int] | None:
    """Prune ``domains`` (in place) to generalized arc consistency.

    Returns the pruned domain masks, or ``None`` on a wipe-out of a
    constrained variable (which proves no homomorphism exists).
    """
    constraints = csource.constraints
    constraints_of = csource.constraints_of
    supports_by_name = ctarget.supports
    tuples_by_name = ctarget.tuples
    all_tuples_masks = ctarget.all_tuples_masks
    num_values = len(ctarget.values)

    queue: deque[int] = deque(range(len(constraints)))
    queued = [True] * len(constraints)
    # Residual last supports, allocated lazily per constraint.
    residuals: list[list[list[int]] | None] = [None] * len(constraints)
    # Local accumulators, flushed to the kernel metrics once on exit.
    residual_hits = 0
    revisions = 0

    while queue:
        ci = queue.popleft()
        queued[ci] = False
        revisions += 1
        name, scope = constraints[ci]
        if not scope:
            continue
        supports = supports_by_name[name]
        tuples = tuples_by_name[name]
        residual = residuals[ci]
        if residual is None:
            residual = [[-1] * num_values for _ in scope]
            residuals[ci] = residual
        valid: int | None = None
        changed: list[int] = []
        for position, x in enumerate(scope):
            domain = domains[x]
            per_value = supports[position]
            last = residual[position]
            surviving = 0
            mask = domain
            while mask:
                low = mask & -mask
                value = low.bit_length() - 1
                mask ^= low
                j = last[value]
                if j >= 0:
                    row = tuples[j]
                    for q, y in enumerate(scope):
                        if not domains[y] >> row[q] & 1:
                            break
                    else:
                        residual_hits += 1
                        surviving |= low
                        continue
                if valid is None:
                    valid = _valid_mask(
                        supports, scope, domains, all_tuples_masks[name]
                    )
                hit = per_value[value] & valid
                if hit:
                    surviving |= low
                    last[value] = (hit & -hit).bit_length() - 1
            if surviving != domain:
                domains[x] = surviving
                if not surviving:
                    kcount("propagate.residual_hits", residual_hits)
                    kcount("propagate.revisions", revisions)
                    return None
                changed.append(x)
        for x in changed:
            # Re-enqueue every constraint touching the pruned variable —
            # including this one: pruning position i can retract support
            # for position j of the same constraint.
            for other in constraints_of[x]:
                if not queued[other]:
                    queue.append(other)
                    queued[other] = True
    kcount("propagate.residual_hits", residual_hits)
    kcount("propagate.revisions", revisions)
    return domains
