"""The generalized existential k-pebble game on compiled bitsets.

The legacy fixpoints — :func:`repro.pebble.game.solve_pebble_game`
deleting frozenset maps, :func:`repro.pebble.kconsistency.consistency_tables`
filtering per-domain sets of image tuples — rebuild dicts in their inner
loops.  This module computes the same greatest forth-closed family
(Theorem 4.7.1) for *any* ``k`` on the compiled representation,
replacing the old ``k = 2``-only ``pebble2`` fast path:

* a *domain* is a sorted tuple of ≤ k source-variable indices; the
  surviving images of a domain of size ``s`` are one int bitmask over
  its ``m^s`` mixed-radix codes (digit ``p`` of a code is the value of
  the ``p``-th domain variable), so deleting an image is clearing a bit;
* constraints initialize the mask of their scope's exact domain from
  the target relation's rows (a row that assigns the scope variables
  consistently contributes one code) — facts covered by larger domains
  are enforced transitively through downward closure, and facts with
  more than ``k`` distinct elements never fit under ``k`` pebbles
  (exactly as the reference implementations ignore them);
* the two closure conditions become *arcs* between a domain and its
  one-element extensions: **downward** (an image of ``sub + {a}`` whose
  restriction died, dies — one precomputed expansion pattern shifted per
  removed code) and **forth** (an image of ``sub`` with no surviving
  extension by ``a``, dies — one AND against the extension window);
* a worklist propagates *removed-bit masks* between arcs, and each forth
  arc keeps AC-2001-style residuals — per surviving sub-code, the
  single-bit witness that supported it last time — so a re-check is one
  AND against the live mask before any window is recomputed.

The Spoiler wins iff some domain's mask empties (the wipe-out cascades
down to a singleton and kills the empty map's forth property —
equivalently, in the family formulation, the empty map dies).  The
fixpoint is the greatest family satisfying the same closure conditions
the references enforce, so the decoded family and tables agree with
both legacy implementations *exactly*, map for map — which is what lets
:mod:`repro.pebble.game` and :mod:`repro.pebble.kconsistency` delegate
here behind the engine flag while remaining each other's parity oracle.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable

from repro.core.cancellation import current_token
from repro.exceptions import VocabularyError
from repro.kernel.compile import (
    CompiledTarget,
    compile_source,
    compile_target,
)
from repro.obs.metrics import kcount
from repro.obs.trace import maybe_span
from repro.structures.structure import Structure

__all__ = [
    "spoiler_wins_k",
    "spoiler_wins_k2",
    "pebble_game_family",
    "kernel_consistency_tables",
]

Element = Hashable
PartialMap = frozenset[tuple[Element, Element]]


def _validate(source: Structure, ctarget: CompiledTarget, k: int) -> None:
    if source.vocabulary != ctarget.structure.vocabulary:
        raise VocabularyError("pebble game requires a common vocabulary")
    if k < 1:
        raise ValueError("need at least one pebble")


def _solve_tables(
    source: Structure, ctarget: CompiledTarget, k: int
) -> tuple[list[tuple[int, ...]], list[int]] | None:
    """The greatest fixpoint as ``(domains, live masks)``, or ``None``.

    ``None`` means some domain wiped out — the Spoiler wins.  Assumes a
    non-empty source universe and target (callers handle those edges).

    Observability wrapper: opens a ``kernel.pebble`` span when a trace
    is ambient and flushes the fixpoint's step count (initial-sweep
    domains plus worklist pops) into the ``pebble.steps`` counter.
    """
    steps = [0]
    with maybe_span("kernel.pebble", k=k) as span:
        try:
            return _solve_tables_run(source, ctarget, k, steps)
        finally:
            kcount("pebble.steps", steps[0])
            if span is not None:
                span.set(steps=steps[0])


def _solve_tables_run(
    source: Structure, ctarget: CompiledTarget, k: int, steps: list[int]
) -> tuple[list[tuple[int, ...]], list[int]] | None:
    csource = compile_source(source)
    n = len(csource.variables)
    m = len(ctarget.values)
    k = min(k, n)

    domains: list[tuple[int, ...]] = []
    for size in range(1, k + 1):
        domains.extend(combinations(range(n), size))
    domain_index = {d: i for i, d in enumerate(domains)}

    pow_m = [1]
    for _ in range(k + 1):
        pow_m.append(pow_m[-1] * m)
    #: Per digit position, the bit pattern of "one code for every value"
    #: at that position (shifted to a base code, it is the extension
    #: window of that code).
    window = [
        sum(1 << (value * pow_m[p]) for value in range(m))
        for p in range(k + 1)
    ]
    full = [(1 << pow_m[s]) - 1 for s in range(k + 1)]

    live: list[int] = [full[len(d)] for d in domains]

    # Constraint seeding: the allowed-codes mask of each constraint's
    # exact domain is the union of its target rows' codes.
    for name, scope in csource.constraints:
        variables = tuple(sorted(set(scope)))
        if not variables or len(variables) > k:
            continue
        did = domain_index[variables]
        position = {x: p for p, x in enumerate(variables)}
        allowed = 0
        for row in ctarget.tuples[name]:
            code = 0
            image: dict[int, int] = {}
            consistent = True
            for q, x in enumerate(scope):
                value = row[q]
                seen = image.get(x)
                if seen is None:
                    image[x] = value
                    code += value * pow_m[position[x]]
                elif seen != value:
                    consistent = False
                    break
            if consistent:
                allowed |= 1 << code
        live[did] &= allowed
        if not live[did]:
            return None

    # Arcs between each domain and its one-variable restrictions; the
    # residual dict belongs to the forth direction (sub needs a witness
    # in sup) and is shared by both views of the arc.
    subs_of: list[list[tuple[int, int, dict[int, int]]]] = [
        [] for _ in domains
    ]
    sups_of: list[list[tuple[int, int, dict[int, int]]]] = [
        [] for _ in domains
    ]
    for did, d in enumerate(domains):
        if len(d) == 1:
            continue
        for p in range(len(d)):
            sid = domain_index[d[:p] + d[p + 1 :]]
            residual: dict[int, int] = {}
            subs_of[did].append((sid, p, residual))
            sups_of[sid].append((did, p, residual))

    def expand(code: int, p: int) -> int:
        """The base code of ``code`` with a fresh 0 digit inserted at p."""
        low = code % pow_m[p]
        return low + (code - low) * m

    def restrict(code: int, p: int) -> int:
        """``code`` with digit p removed."""
        low = code % pow_m[p]
        return low + (code // (pow_m[p] * m)) * pow_m[p]

    # Cooperative cancellation: the sweeps and the worklist are the
    # unbounded phases; check every 64 domains / worklist pops (each
    # step is itself a batch of big-int work, so the effective
    # granularity matches the search kernel's node interval).  ``steps``
    # doubles as the fixpoint's work measure, read by the caller.
    token = current_token()

    # Initial downward sweep (sizes ascending: domains is size-ordered):
    # an image whose restriction is not allowed is not allowed.
    for did, d in enumerate(domains):
        steps[0] += 1
        if token is not None and not steps[0] & 63:
            token.check()
        mask = live[did]
        for sid, p, _residual in subs_of[did]:
            permitted = 0
            sub_mask = live[sid]
            while sub_mask:
                bit = sub_mask & -sub_mask
                permitted |= window[p] << expand(bit.bit_length() - 1, p)
                sub_mask ^= bit
            mask &= permitted
            if not mask:
                return None
        live[did] = mask

    # Worklist propagation seeded by an initial forth sweep (sizes
    # descending): each event is the mask of codes just removed from a
    # domain; consequences flow down (forth) and up (downward closure).
    queued: list[int] = [0] * len(domains)
    pending: list[int] = [0] * len(domains)
    worklist: list[int] = []

    def remove(did: int, removed: int) -> bool:
        """Clear ``removed`` bits; False on wipe-out."""
        survived = live[did] & ~removed
        live[did] = survived
        if not survived:
            return False
        pending[did] |= removed
        if not queued[did]:
            queued[did] = 1
            worklist.append(did)
        return True

    for did in range(len(domains) - 1, -1, -1):
        steps[0] += 1
        if token is not None and not steps[0] & 63:
            token.check()
        removed = 0
        for sup_id, p, residual in sups_of[did]:
            sup_live = live[sup_id]
            mask = live[did] & ~removed
            while mask:
                bit = mask & -mask
                code = bit.bit_length() - 1
                hit = sup_live & (window[p] << expand(code, p))
                if hit:
                    residual[code] = hit & -hit
                else:
                    removed |= bit
                mask ^= bit
        if removed and not remove(did, removed):
            return None

    while worklist:
        steps[0] += 1
        if token is not None and not steps[0] & 63:
            token.check()
        did = worklist.pop()
        queued[did] = 0
        removed, pending[did] = pending[did], 0
        if not removed:
            continue
        # Downward closure: extensions of a dead code are dead.
        for sup_id, p, _residual in sups_of[did]:
            kill = 0
            mask = removed
            while mask:
                bit = mask & -mask
                kill |= window[p] << expand(bit.bit_length() - 1, p)
                mask ^= bit
            dying = live[sup_id] & kill
            if dying and not remove(sup_id, dying):
                return None
        # Forth: sub-codes whose extension window just drained re-check
        # their residual witness before any window scan.
        for sid, p, residual in subs_of[did]:
            sup_live = live[did]
            candidates = 0
            mask = removed
            while mask:
                bit = mask & -mask
                candidates |= 1 << restrict(bit.bit_length() - 1, p)
                mask ^= bit
            candidates &= live[sid]
            dying = 0
            while candidates:
                bit = candidates & -candidates
                code = bit.bit_length() - 1
                witness = residual.get(code, 0)
                if not witness & sup_live:
                    hit = sup_live & (window[p] << expand(code, p))
                    if hit:
                        residual[code] = hit & -hit
                    else:
                        dying |= bit
                candidates ^= bit
            if dying and not remove(sid, dying):
                return None

    return domains, live


def _tables(
    source: Structure, target: Structure | CompiledTarget, k: int
):
    """Shared driver handling the edge cases the references special-case."""
    ctarget = compile_target(target)
    _validate(source, ctarget, k)
    if not source.universe:
        return "empty-source", ctarget, None
    if not ctarget.values:
        return "empty-target", ctarget, None
    result = _solve_tables(source, ctarget, k)
    if result is None:
        return "wipeout", ctarget, None
    return "tables", ctarget, result


def spoiler_wins_k(
    source: Structure, target: Structure | CompiledTarget, k: int
) -> bool:
    """Whether the Spoiler wins the existential k-pebble game on (A, B).

    Agrees with :func:`repro.pebble.game.spoiler_wins` on every instance
    and every ``k`` — the generic compiled engine behind the pebble
    strategy and the kernel paths of :mod:`repro.pebble`.
    """
    kind, _ctarget, _result = _tables(source, target, k)
    return kind in ("empty-target", "wipeout")


def spoiler_wins_k2(
    source: Structure, target: Structure | CompiledTarget
) -> bool:
    """The ``k = 2`` game (back-compatible name of the old fast path)."""
    return spoiler_wins_k(source, target, 2)


def pebble_game_family(
    source: Structure, target: Structure | CompiledTarget, k: int
) -> set[PartialMap]:
    """The greatest forth-closed family, decoded to frozenset maps.

    Exactly the family :func:`repro.pebble.game.solve_pebble_game`
    computes: all surviving partial homomorphisms with domain ≤ k, plus
    the empty map when it survives (always, unless a table wiped out).
    """
    kind, ctarget, result = _tables(source, target, k)
    if kind == "empty-source":
        return {frozenset()}
    if kind in ("empty-target", "wipeout"):
        return set()
    assert result is not None
    domains, live = result
    csource = compile_source(source)
    variables = csource.variables
    values = ctarget.values
    m = len(values)
    family: set[PartialMap] = {frozenset()}
    for d, mask in zip(domains, live):
        names = [variables[x] for x in d]
        while mask:
            bit = mask & -mask
            code = bit.bit_length() - 1
            family.add(
                frozenset(
                    (name, values[code // m**p % m])
                    for p, name in enumerate(names)
                )
            )
            mask ^= bit
    return family


def kernel_consistency_tables(
    source: Structure, target: Structure | CompiledTarget, k: int
):
    """The fixpoint decoded in :mod:`repro.pebble.kconsistency`'s layout.

    ``{sorted element tuple: set of image tuples}`` for every domain of
    size 1..min(k, n), or ``None`` when a table empties — byte-for-byte
    the return contract of ``consistency_tables``.
    """
    kind, ctarget, result = _tables(source, target, k)
    if kind == "empty-source":
        return {(): {()}}
    if kind in ("empty-target", "wipeout"):
        return None
    assert result is not None
    domains, live = result
    csource = compile_source(source)
    variables = csource.variables
    values = ctarget.values
    m = len(values)
    tables: dict[tuple[Element, ...], set[tuple[Element, ...]]] = {}
    for d, mask in zip(domains, live):
        images: set[tuple[Element, ...]] = set()
        size = len(d)
        while mask:
            bit = mask & -mask
            code = bit.bit_length() - 1
            images.add(
                tuple(values[code // m**p % m] for p in range(size))
            )
            mask ^= bit
        tables[tuple(variables[x] for x in d)] = images
    return tables
