"""The compiled core/retraction engine: bitset endomorphism search.

The legacy core loop (:func:`repro.structures.product.core`) looks for an
endomorphism of ``A`` missing some element ``v`` by *materializing* the
induced substructure ``A∖{v}`` and searching ``A → A∖{v}`` — one fresh
``Structure`` (plus a fresh solver setup) per candidate element per
shrink round.  This module runs the identical search on the compiled
kernel without ever building a substructure:

* compile ``A`` once per shrink round (source and target sides, both
  memoized on the structure);
* for a candidate removal set, derive the *restricted* starting state by
  masking — per relation, the valid-tuple mask drops every tuple whose
  support bitset touches a removed value, and the node-consistent
  domains are rebuilt from the surviving tuples — which is exactly the
  state the reference solver computes against the materialized
  substructure;
* run :func:`repro.kernel.search.search_homomorphisms` from that state.

Because the masked state equals the restricted instance's state value
for value (same domains, same surviving tuples, same variable/value
order), the search visits the same tree and returns the *same*
endomorphism as the legacy loop — the randomized parity suite
(``tests/test_query_parity.py``) holds the two engines to identical
cores, not merely isomorphic ones.

Cores of canonical databases are minimal conjunctive queries
(Chandra–Merlin); this engine is what makes repeated query minimization
a kernel workload.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.exceptions import VocabularyError
from repro.kernel.compile import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
)
from repro.kernel.search import search_homomorphisms
from repro.structures.structure import Structure

__all__ = ["core_structure", "is_core_structure", "retraction"]

Element = Hashable


def _restricted_start(
    csource: CompiledSource,
    ctarget: CompiledTarget,
    removed_mask: int,
) -> tuple[list[int], list[int]] | None:
    """Starting (domains, per-constraint valid masks) for the search into
    the substructure induced by dropping ``removed_mask``'s values.

    ``None`` means a node-consistency wipe-out — no homomorphism can
    exist, exactly when the reference initial domains against the
    materialized substructure would empty.
    """
    valid_tuples: dict[str, int] = {}
    restricted_masks: dict[str, list[int]] = {}
    for name, per_position in ctarget.supports.items():
        live = ctarget.all_tuples_masks[name]
        remaining = removed_mask
        while remaining:
            low = remaining & -remaining
            value = low.bit_length() - 1
            remaining ^= low
            for per_value in per_position:
                live &= ~per_value[value]
        valid_tuples[name] = live
        masks = []
        for per_value in per_position:
            mask = 0
            for value, support in enumerate(per_value):
                if support & live:
                    mask |= 1 << value
            masks.append(mask)
        restricted_masks[name] = masks

    full = ctarget.full_mask & ~removed_mask
    domains = [full] * len(csource.variables)
    for name, scope in csource.constraints:
        masks = restricted_masks[name]
        for position, x in enumerate(scope):
            narrowed = domains[x] & masks[position]
            if not narrowed:
                return None
            domains[x] = narrowed
    valid = [valid_tuples[name] for name, _scope in csource.constraints]
    return domains, valid


def _first_endomorphism(
    csource: CompiledSource,
    ctarget: CompiledTarget,
    removed_mask: int,
    fixed: Mapping[Element, Element] | None = None,
) -> dict[Element, Element] | None:
    """The first homomorphism into the masked substructure, or ``None``."""
    start = _restricted_start(csource, ctarget, removed_mask)
    if start is None:
        return None
    domains, valid = start
    for assignment in search_homomorphisms(
        csource, ctarget, fixed=fixed, domains=domains, valid=valid
    ):
        return assignment
    return None


def core_structure(a: Structure) -> Structure:
    """The core of ``A`` on the compiled kernel.

    Same shrink loop as the legacy :func:`repro.structures.product.core`
    — look for an endomorphism missing some element, shrink to its
    image, repeat — but each round compiles ``A`` once and tries every
    candidate element by masking instead of materializing ``|A|``
    substructures.  Returns the identical core.
    """
    current = a
    changed = True
    while changed:
        changed = False
        csource = compile_source(current)
        ctarget = compile_target(current)
        for index in range(len(ctarget.values)):
            h = _first_endomorphism(csource, ctarget, 1 << index)
            if h is not None:
                current = current.restrict(set(h.values()))
                changed = True
                break
    return current


def is_core_structure(a: Structure) -> bool:
    """Kernel core-ness check: no endomorphism misses an element."""
    csource = compile_source(a)
    ctarget = compile_target(a)
    for index in range(len(ctarget.values)):
        if _first_endomorphism(csource, ctarget, 1 << index) is not None:
            return False
    return True


def retraction(
    a: Structure, elements: Iterable[Element]
) -> dict[Element, Element] | None:
    """A retraction of ``A`` onto ``elements``, by masked kernel search.

    Mirrors :func:`repro.structures.product.retract_onto` — fix
    ``elements`` pointwise, land inside them — without building the
    induced substructure.
    """
    keep = set(elements)
    if not keep <= a.universe:
        raise VocabularyError("restriction elements outside the universe")
    csource = compile_source(a)
    ctarget = compile_target(a)
    removed_mask = 0
    for index, value in enumerate(ctarget.values):
        if value not in keep:
            removed_mask |= 1 << index
    return _first_endomorphism(
        csource, ctarget, removed_mask, fixed={e: e for e in keep}
    )
