"""Compilation of structures into integer-indexed, bitset form.

The generic solvers of :mod:`repro.structures.homomorphism` and
:mod:`repro.csp.ac3` spend their time re-scanning target relations stored
as Python sets of hashable tuples.  This module compiles each side of a
homomorphism instance once into a layout the inner loops can consume
directly:

* :class:`CompiledTarget` — target elements renumbered ``0..m-1`` so a
  domain is a single Python-int bitmask; for every ``(relation, position,
  value)`` a *support bitset* over the relation's tuple indices (which
  tuples have this value at this position), plus per-position value masks
  for node-consistent initial domains;
* :class:`CompiledSource` — source elements renumbered ``0..n-1``, facts
  as integer scopes, the per-variable occurrence index (which constraints
  touch a variable), and the degree variable order.

Both compilations are memoized on the (immutable) structure itself, so
repeated solves against one target — the motivating workload of the
fingerprint-keyed :class:`repro.core.pipeline.StructureCache` — rebuild
nothing.  Element order is the deterministic ``_sort_key`` order used by
the reference solvers, so bit ``i`` of a domain mask means the ``i``-th
element of ``sorted_universe`` and iterating set bits from the low end
reproduces the reference value order exactly.
"""

from __future__ import annotations

from typing import Hashable

from repro import faultinject
from repro.obs.metrics import kcount
from repro.structures.structure import Structure

__all__ = ["CompiledSource", "CompiledTarget", "compile_source", "compile_target"]

Element = Hashable


class CompiledTarget:
    """A target structure in integer-indexed, support-bitset form.

    Attributes
    ----------
    structure:
        The structure this was compiled from.
    values:
        Target elements in deterministic order; bit ``i`` of any domain
        mask refers to ``values[i]``.
    value_index:
        Inverse of ``values``.
    tuples:
        Per relation name, the relation's facts as tuples of value
        indices, sorted — the tuple index is the bit position in support
        masks.
    supports:
        ``supports[name][position][value]`` is the bitmask of tuple
        indices of relation ``name`` whose ``position``-th coordinate is
        ``value``.  One AND against a "still valid tuples" mask answers
        "does this value still have a support?" without scanning.
    position_masks:
        ``position_masks[name][position]`` is the mask of values occurring
        at that position of the relation — the hoisted ``position_values``
        index that node-consistent initial domains are built from.
    all_tuples_masks:
        Per relation, the mask with one bit per tuple (the "every tuple
        still valid" starting point of a propagation pass).
    full_mask:
        The mask of the whole universe (the unconstrained domain).
    """

    __slots__ = (
        "structure",
        "values",
        "value_index",
        "tuples",
        "supports",
        "position_masks",
        "all_tuples_masks",
        "full_mask",
    )

    def __init__(self, structure: Structure) -> None:
        # Counted here (not in compile_target) so the per-solve kernel
        # bag distinguishes "built the bitset index" from "reused a
        # memo, cache entry, or store record" — the zero-recompilation
        # assertion of the warm-restart tests reads this counter.
        kcount("compile.targets")
        self.structure = structure
        self.values: tuple[Element, ...] = structure.sorted_universe
        self.value_index: dict[Element, int] = {
            value: i for i, value in enumerate(self.values)
        }
        self.full_mask: int = (1 << len(self.values)) - 1
        self.tuples: dict[str, tuple[tuple[int, ...], ...]] = {}
        self.supports: dict[str, tuple[tuple[int, ...], ...]] = {}
        self.position_masks: dict[str, tuple[int, ...]] = {}
        self.all_tuples_masks: dict[str, int] = {}
        index = self.value_index
        for symbol, relation in structure.relations():
            # Tuple order only names bit positions in the (internal)
            # support masks; sorting buys nothing observable.
            rows = tuple(
                tuple(index[e] for e in fact) for fact in relation
            )
            self.tuples[symbol.name] = rows
            arity = symbol.arity
            supports = [[0] * len(self.values) for _ in range(arity)]
            masks = [0] * arity
            for j, row in enumerate(rows):
                bit = 1 << j
                for position, value in enumerate(row):
                    supports[position][value] |= bit
                    masks[position] |= 1 << value
            self.supports[symbol.name] = tuple(
                tuple(per_value) for per_value in supports
            )
            self.position_masks[symbol.name] = tuple(masks)
            self.all_tuples_masks[symbol.name] = (1 << len(rows)) - 1

    def __getstate__(self) -> dict:
        """Pickle every slot verbatim — this *is* the compiled form.

        The carried ``structure`` pickles through its own
        ``__getstate__`` (mathematical content + fingerprint, memos
        dropped), which also breaks the reference cycle through the
        structure's ``_compiled_target`` memo.  This pair makes plain
        pickle the one canonical serializer for compiled targets: pool
        payloads and persistent store records share it byte-discipline
        and all, so the two paths cannot drift.
        """
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot in self.__slots__:
            object.__setattr__(self, slot, state[slot])
        # Re-attach to the carried structure's memo slot: a restored
        # artifact must behave exactly like a freshly compiled one, so
        # compile_target() on its structure finds this object instead
        # of rebuilding (the zero-recompilation warm-restart property).
        if self.structure._compiled_target is None:
            self.structure._compiled_target = self

    def decode(self, mask: int) -> set[Element]:
        """The set of elements a domain mask denotes."""
        out: set[Element] = set()
        values = self.values
        while mask:
            low = mask & -mask
            out.add(values[low.bit_length() - 1])
            mask ^= low
        return out

    def __repr__(self) -> str:
        return (
            f"CompiledTarget(|B|={len(self.values)}, "
            f"relations={len(self.tuples)})"
        )


class CompiledSource:
    """A source structure as integer-scoped constraints.

    Attributes
    ----------
    variables:
        Source elements in deterministic order (variable ``x`` of the
        search is ``variables[x]``).
    var_index:
        Inverse of ``variables``.
    constraints:
        The facts of the source as ``(relation name, scope)`` pairs where
        ``scope`` holds variable indices, in the deterministic
        ``Structure.facts()`` order.
    constraints_of:
        Per variable, the indices of the constraints touching it (each
        constraint listed once) — the hoisted occurrence index.
    degrees:
        Per variable, the total number of ``(fact, position)`` occurrences.
    degree_order:
        Variable indices sorted by decreasing degree (ties by element
        order) — the static degree heuristic, computed once.
    """

    __slots__ = (
        "structure",
        "variables",
        "var_index",
        "constraints",
        "constraints_of",
        "degrees",
        "degree_order",
        "_gaifman_stats",
    )

    def __init__(self, structure: Structure) -> None:
        kcount("compile.sources")
        self.structure = structure
        self.variables: tuple[Element, ...] = structure.sorted_universe
        self.var_index: dict[Element, int] = {
            variable: i for i, variable in enumerate(self.variables)
        }
        index = self.var_index
        constraints: list[tuple[str, tuple[int, ...]]] = []
        touching: list[list[int]] = [[] for _ in self.variables]
        degrees = [0] * len(self.variables)
        # Constraint order is unobservable (propagation reaches the unique
        # fixpoint and the search tree depends only on variable/value
        # order), so iterate relations directly instead of the sorted
        # ``facts()`` stream — compilation is on the per-call path for
        # one-shot instances.
        for symbol, relation in structure.relations():
            name = symbol.name
            for fact in relation:
                scope = tuple(index[e] for e in fact)
                ci = len(constraints)
                constraints.append((name, scope))
                for x in set(scope):
                    touching[x].append(ci)
                for x in scope:
                    degrees[x] += 1
        self.constraints = tuple(constraints)
        self.constraints_of = tuple(tuple(cs) for cs in touching)
        self.degrees = tuple(degrees)
        self.degree_order = tuple(
            sorted(range(len(self.variables)), key=lambda x: (-degrees[x], x))
        )
        #: Memo for repro.kernel.estimate.gaifman_degree_stats.
        self._gaifman_stats: tuple[int, float] | None = None

    def __getstate__(self) -> dict:
        """Slot-verbatim pickling (see :meth:`CompiledTarget.__getstate__`)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot in self.__slots__:
            object.__setattr__(self, slot, state[slot])
        if self.structure._compiled_source is None:
            self.structure._compiled_source = self

    def __repr__(self) -> str:
        return (
            f"CompiledSource(|A|={len(self.variables)}, "
            f"constraints={len(self.constraints)})"
        )


def compile_target(target: Structure | CompiledTarget) -> CompiledTarget:
    """Compile ``target`` (idempotent; memoized on the structure)."""
    faultinject.raise_fault("kernel.compile.raise")
    if isinstance(target, CompiledTarget):
        return target
    compiled = target._compiled_target
    if compiled is None:
        compiled = CompiledTarget(target)
        target._compiled_target = compiled
    return compiled  # type: ignore[return-value]


def compile_source(source: Structure | CompiledSource) -> CompiledSource:
    """Compile ``source`` (idempotent; memoized on the structure)."""
    if isinstance(source, CompiledSource):
        return source
    compiled = source._compiled_source
    if compiled is None:
        compiled = CompiledSource(source)
        source._compiled_source = compiled
    return compiled  # type: ignore[return-value]


def initial_domains(
    csource: CompiledSource, ctarget: CompiledTarget
) -> list[int] | None:
    """Node-consistent initial domain masks, or ``None`` if trivially unsat.

    The bitset form of ``_initial_domains``: every variable starts with
    the full universe mask, narrowed per constraint position through the
    precompiled ``position_masks`` — no target relation is scanned.
    """
    full = ctarget.full_mask
    domains = [full] * len(csource.variables)
    position_masks = ctarget.position_masks
    for name, scope in csource.constraints:
        masks = position_masks[name]
        for position, x in enumerate(scope):
            narrowed = domains[x] & masks[position]
            if not narrowed:
                return None
            domains[x] = narrowed
    return domains
