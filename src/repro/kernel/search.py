"""Bitset backtracking search over compiled instances.

A faithful mirror of the reference search in
:mod:`repro.structures.homomorphism` — MRV dynamic variable ordering
(optionally a static order), forward checking after every assignment, the
same node/backtrack counters — with every inner loop replaced by integer
bit operations:

* a variable's domain is one int mask; MRV is ``bit_count()``;
* each constraint keeps a mask of target tuples compatible with the
  assigned variables so far; assigning ``x := v`` is one AND with the
  precompiled ``(relation, position, v)`` support bitset per occurrence;
* forward checking a neighbour is, per remaining value, one AND against
  that valid-tuple mask.

Because variables and values are numbered in the reference ``_sort_key``
order and pruning is assignment-based exactly like the reference forward
checking, the search visits the same tree: the homomorphisms come out in
the same deterministic order with the same ``SearchStats`` counts.  The
randomized parity suite (``tests/test_kernel_parity.py``) holds the two
implementations to that agreement.

Two drivers share one core.  :func:`search_homomorphisms` enumerates,
materializing an assignment dict per leaf; :func:`count_solutions` (the
fast path of ``count_homomorphisms``) walks the identical tree but only
tallies the leaves.  The setup (:func:`_pinned_domains`,
:func:`_constraint_state`), the variable choice (:func:`_pick_unassigned`)
and the forward-checking/trail logic (:func:`_forward_check` /
:func:`_undo`) are single implementations, so the "identical search
tree" contract cannot drift between the two drivers.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from repro.core.cancellation import CHECK_MASK, current_token
from repro.kernel.compile import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
    initial_domains,
)
from repro.kernel.propagate import propagate
from repro.obs.metrics import kcount
from repro.obs.trace import maybe_span
from repro.structures.structure import Structure

__all__ = ["count_solutions", "search_homomorphisms", "solve"]

Element = Hashable


class _NullStats:
    """Stand-in counters when the caller does not ask for stats."""

    __slots__ = ("nodes", "backtracks")

    def __init__(self) -> None:
        self.nodes = 0
        self.backtracks = 0


def _pinned_domains(
    csource: CompiledSource,
    ctarget: CompiledTarget,
    fixed: Mapping[Element, Element] | None,
    domains: list[int] | None,
) -> list[int] | None:
    """Starting domain masks with ``fixed`` pins applied, or ``None``.

    ``None`` means provably no homomorphism: a node-consistency wipe-out,
    or a ``fixed`` entry naming an unknown element/value or a value
    outside the element's domain.
    """
    if domains is None:
        domains = initial_domains(csource, ctarget)
        if domains is None:
            return None
    else:
        domains = list(domains)
    var_index = csource.var_index
    value_index = ctarget.value_index
    for element, value in (fixed or {}).items():
        x = var_index.get(element)
        v = value_index.get(value)
        if x is None or v is None or not domains[x] >> v & 1:
            return None
        domains[x] = 1 << v
    return domains


def _constraint_state(
    csource: CompiledSource,
    ctarget: CompiledTarget,
    valid: Sequence[int] | None = None,
):
    """Per-constraint supports and the valid-tuple starting masks.

    ``valid`` optionally overrides the all-tuples-valid start with one
    mask per constraint — the core/retraction engine passes masks that
    exclude every target tuple touching a removed element, which makes
    the search behave exactly as if it ran against the restricted
    substructure without ever building it.
    """
    constraints = csource.constraints
    supports = [ctarget.supports[name] for name, _scope in constraints]
    if valid is None:
        valid = [ctarget.all_tuples_masks[name] for name, _scope in constraints]
    else:
        valid = list(valid)
    return constraints, csource.constraints_of, supports, valid


def _pick_unassigned(
    static_order: list[int] | None,
    assigned: list[int],
    domains: list[int],
    n: int,
) -> int:
    """The next variable: static order if given, else MRV (ties by index)."""
    if static_order is not None:
        for x in static_order:
            if assigned[x] < 0:
                return x
    best = -1
    best_size = 0
    for x in range(n):
        if assigned[x] < 0:
            size = domains[x].bit_count()
            if best < 0 or size < best_size:
                best, best_size = x, size
    return best


def _forward_check(
    x: int,
    v: int,
    assigned: list[int],
    domains: list[int],
    valid: list[int],
    constraints,
    constraints_of,
    supports,
) -> tuple[bool, list, list]:
    """Forward-check the constraints touching ``x`` after ``x := v``.

    Returns ``(survived, constraint trail, domain trail)``; the caller
    undoes the trails either way (mirroring the reference undo).
    """
    trail_valid: list[tuple[int, int]] = []
    trail_domains: list[tuple[int, int]] = []
    for ci in constraints_of[x]:
        _name, scope = constraints[ci]
        sup = supports[ci]
        live = valid[ci]
        for position, y in enumerate(scope):
            if y == x:
                live &= sup[position][v]
        if live != valid[ci]:
            trail_valid.append((ci, valid[ci]))
            valid[ci] = live
        if not live:
            return False, trail_valid, trail_domains
        for position, y in enumerate(scope):
            if y == x or assigned[y] >= 0:
                continue
            domain = domains[y]
            per_value = sup[position]
            surviving = 0
            mask = domain
            while mask:
                low = mask & -mask
                if per_value[low.bit_length() - 1] & live:
                    surviving |= low
                mask ^= low
            if surviving != domain:
                trail_domains.append((y, domain))
                domains[y] = surviving
                if not surviving:
                    return False, trail_valid, trail_domains
    return True, trail_valid, trail_domains


def _undo(trail_domains, trail_valid, domains, valid) -> None:
    for y, old in reversed(trail_domains):
        domains[y] = old
    for ci, old in reversed(trail_valid):
        valid[ci] = old


def search_homomorphisms(
    source: Structure | CompiledSource,
    target: Structure | CompiledTarget,
    *,
    stats=None,
    order: Sequence[Element] | None = None,
    fixed: Mapping[Element, Element] | None = None,
    domains: list[int] | None = None,
    valid: Sequence[int] | None = None,
) -> Iterator[dict[Element, Element]]:
    """Yield every homomorphism source → target, reference order.

    ``stats`` is any object with ``nodes``/``backtracks`` counters (a
    :class:`repro.structures.homomorphism.SearchStats`).  ``order`` fixes
    a static variable order; ``fixed`` pre-pins images; ``domains``
    optionally supplies starting masks (e.g. pre-propagated ones) instead
    of the node-consistent initial domains; ``valid`` optionally supplies
    per-constraint starting tuple masks (see :func:`_constraint_state`).
    """
    csource = compile_source(source)
    ctarget = compile_target(target)
    if stats is None:
        stats = _NullStats()

    domains = _pinned_domains(csource, ctarget, fixed, domains)
    if domains is None:
        return

    n = len(csource.variables)
    if n == 0:
        yield {}
        return

    constraints, constraints_of, supports, valid = _constraint_state(
        csource, ctarget, valid
    )
    assigned = [-1] * n
    assign_order: list[int] = []
    var_index = csource.var_index
    static_order = (
        [var_index[element] for element in order] if order is not None else None
    )
    variables = csource.variables
    values = ctarget.values
    # Cooperative cancellation: fetched once, tested every CHECK_INTERVAL
    # nodes — a deadline frees this worker from inside the search.
    token = current_token()

    def extend() -> Iterator[dict[Element, Element]]:
        if len(assign_order) == n:
            yield {
                variables[x]: values[assigned[x]] for x in assign_order
            }
            return
        x = _pick_unassigned(static_order, assigned, domains, n)
        mask = domains[x]
        while mask:
            low = mask & -mask
            v = low.bit_length() - 1
            mask ^= low
            stats.nodes += 1
            if token is not None and not stats.nodes & CHECK_MASK:
                token.check()
            assigned[x] = v
            assign_order.append(x)
            survived, trail_valid, trail_domains = _forward_check(
                x, v, assigned, domains, valid,
                constraints, constraints_of, supports,
            )
            if survived:
                yield from extend()
            else:
                stats.backtracks += 1
            _undo(trail_domains, trail_valid, domains, valid)
            assign_order.pop()
            assigned[x] = -1

    yield from extend()


def count_solutions(
    source: Structure | CompiledSource,
    target: Structure | CompiledTarget,
    *,
    stats=None,
    order: Sequence[Element] | None = None,
    fixed: Mapping[Element, Element] | None = None,
    domains: list[int] | None = None,
) -> int:
    """The number of homomorphisms source → target, counted at the leaves.

    Visits exactly the search tree of :func:`search_homomorphisms` (same
    MRV ordering, same forward checking, same ``nodes``/``backtracks``
    counters — they share the implementation) but only *tallies* complete
    assignments instead of materializing one dict per homomorphism — the
    fast path behind ``count_homomorphisms``, where building and
    discarding every assignment dict dominates on solution-dense
    instances.
    """
    csource = compile_source(source)
    ctarget = compile_target(target)
    if stats is None:
        stats = _NullStats()
    nodes_before, backtracks_before = stats.nodes, stats.backtracks

    domains = _pinned_domains(csource, ctarget, fixed, domains)
    if domains is None:
        return 0

    n = len(csource.variables)
    if n == 0:
        return 1

    constraints, constraints_of, supports, valid = _constraint_state(
        csource, ctarget
    )
    assigned = [-1] * n
    unassigned_count = n
    var_index = csource.var_index
    static_order = (
        [var_index[element] for element in order] if order is not None else None
    )
    token = current_token()

    def extend() -> int:
        nonlocal unassigned_count
        if unassigned_count == 0:
            return 1
        total = 0
        x = _pick_unassigned(static_order, assigned, domains, n)
        mask = domains[x]
        while mask:
            low = mask & -mask
            v = low.bit_length() - 1
            mask ^= low
            stats.nodes += 1
            if token is not None and not stats.nodes & CHECK_MASK:
                token.check()
            assigned[x] = v
            unassigned_count -= 1
            survived, trail_valid, trail_domains = _forward_check(
                x, v, assigned, domains, valid,
                constraints, constraints_of, supports,
            )
            if survived:
                total += extend()
            else:
                stats.backtracks += 1
            _undo(trail_domains, trail_valid, domains, valid)
            unassigned_count += 1
            assigned[x] = -1
        return total

    with maybe_span("kernel.search", counting=True) as span:
        try:
            total = extend()
        finally:
            kcount("search.nodes", stats.nodes - nodes_before)
            kcount("search.backtracks", stats.backtracks - backtracks_before)
            if span is not None:
                span.set(
                    nodes=stats.nodes - nodes_before,
                    backtracks=stats.backtracks - backtracks_before,
                )
    return total


def solve(
    source: Structure | CompiledSource,
    target: Structure | CompiledTarget,
    *,
    stats=None,
    order: Sequence[Element] | None = None,
    propagate_first: bool = True,
) -> dict[Element, Element] | None:
    """Find one homomorphism with the full kernel pipeline, or ``None``.

    The fast path used by the pipeline strategies: compile (memoized),
    establish generalized arc consistency, then search from the pruned
    domains.  Unlike the reference facade, the propagated domains are
    *kept* for the search rather than recomputed.

    Observability: the two phases open ``kernel.propagate`` /
    ``kernel.search`` spans when a trace is ambient, and the search's
    node/backtrack counters are flushed to the kernel metrics
    (``search.nodes`` / ``search.backtracks``) once on exit — the hot
    loop itself carries no instrumentation beyond the counters it
    already kept.
    """
    with maybe_span("kernel.compile"):
        csource = compile_source(source)
        ctarget = compile_target(target)
    domains = initial_domains(csource, ctarget)
    if domains is None:
        return None
    if propagate_first:
        with maybe_span("kernel.propagate"):
            if propagate(csource, ctarget, domains) is None:
                return None
    if stats is None:
        stats = _NullStats()
    # Callers may hand in a long-lived stats object; flush only this
    # solve's delta into the kernel counters.
    nodes_before, backtracks_before = stats.nodes, stats.backtracks
    with maybe_span("kernel.search") as span:
        result: dict[Element, Element] | None = None
        try:
            for assignment in search_homomorphisms(
                csource, ctarget, stats=stats, order=order, domains=domains
            ):
                result = assignment
                break
        finally:
            nodes = stats.nodes - nodes_before
            backtracks = stats.backtracks - backtracks_before
            kcount("search.nodes", nodes)
            kcount("search.backtracks", backtracks)
            if span is not None:
                span.set(
                    nodes=nodes,
                    backtracks=backtracks,
                    found=result is not None,
                )
    return result
