"""The compiled bitset solving kernel.

One compiled representation — integer-indexed elements, Python-int
bitmask domains, per-``(relation, position, value)`` support bitsets —
shared by every inner loop of the library, per the paper's observation
that CQ containment, CQ evaluation, and CSP are one homomorphism
problem:

* :mod:`repro.kernel.compile` — structures → :class:`CompiledSource` /
  :class:`CompiledTarget` (memoized on the structure; also cached across
  structurally-equal rebuilds by the fingerprint-keyed
  :class:`repro.core.pipeline.StructureCache`);
* :mod:`repro.kernel.propagate` — generalized arc consistency with
  AC-2001-style residual last supports;
* :mod:`repro.kernel.search` — forward-checking/MRV backtracking that
  mirrors the reference search tree exactly (same answers, same order,
  same ``SearchStats``), the :func:`solve` fast path used by the
  pipeline strategies, and the :func:`count_solutions` leaf-tally count
  mode behind ``count_homomorphisms``;
* :mod:`repro.kernel.corek` — the core/retraction engine: endomorphism
  search into masked substructures (per-candidate valid-tuple masks and
  restricted domains instead of materialized substructures), behind the
  engine flag of :mod:`repro.structures.product` — the hot path of
  conjunctive-query minimization;
* :mod:`repro.kernel.decomp` — the Theorem 5.4 dynamic program compiled
  to int-coded bag tables over a nice tree decomposition, with
  support-bitset semijoins and top-down witness reconstruction;
* :mod:`repro.kernel.pebblek` — the generalized existential k-pebble
  game: bitset tables over ≤ k-subassignments with worklist propagation
  and AC-2001-style residuals (replacing the old ``k = 2``-only
  ``pebble2`` fast path — ``spoiler_wins_k2`` remains as an alias);
* :mod:`repro.kernel.datalogk` — semi-naive Datalog evaluation lowered
  to bitset delta tables over the compiled encodings: facts as
  mixed-radix tuple codes, rule bodies as cylinder-mask semijoins over
  binding spaces, incremental per-atom lifted masks — the engine behind
  :mod:`repro.datalog.evaluation`'s kernel path;
* :mod:`repro.kernel.estimate` — the width-aware planner: cheap cost
  models over compiled sizes, width and Gaifman-degree estimates, and
  the search/DP/pebble/datalog route choice the pipeline's planner
  strategy and the solve service's thread/process routing consume;
* :mod:`repro.kernel.engine` — the kernel/legacy flag keeping the
  reference implementations available as the parity oracle.
"""

from repro.kernel.compile import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
    initial_domains,
)
from repro.kernel.engine import (
    KERNEL,
    LEGACY,
    default_engine,
    resolve_engine,
    set_default_engine,
    use_engine,
)
from repro.kernel.corek import core_structure, is_core_structure, retraction
from repro.kernel.datalogk import (
    CompiledDatalog,
    compile_datalog,
    datalog_goal_holds,
    evaluate_datalog,
)
from repro.kernel.decomp import decomposition_exists, solve_decomposition
from repro.kernel.estimate import Plan, estimate_cost, plan_instance
from repro.kernel.pebblek import (
    kernel_consistency_tables,
    pebble_game_family,
    spoiler_wins_k,
    spoiler_wins_k2,
)
from repro.kernel.propagate import propagate
from repro.kernel.search import count_solutions, search_homomorphisms, solve

__all__ = [
    "KERNEL",
    "LEGACY",
    "CompiledDatalog",
    "CompiledSource",
    "CompiledTarget",
    "Plan",
    "compile_datalog",
    "compile_source",
    "compile_target",
    "core_structure",
    "count_solutions",
    "datalog_goal_holds",
    "decomposition_exists",
    "default_engine",
    "estimate_cost",
    "evaluate_datalog",
    "initial_domains",
    "is_core_structure",
    "kernel_consistency_tables",
    "pebble_game_family",
    "plan_instance",
    "propagate",
    "resolve_engine",
    "retraction",
    "search_homomorphisms",
    "set_default_engine",
    "solve",
    "solve_decomposition",
    "spoiler_wins_k",
    "spoiler_wins_k2",
    "use_engine",
]
