"""The compiled bitset solving kernel.

One compiled representation — integer-indexed elements, Python-int
bitmask domains, per-``(relation, position, value)`` support bitsets —
shared by every inner loop of the library, per the paper's observation
that CQ containment, CQ evaluation, and CSP are one homomorphism
problem:

* :mod:`repro.kernel.compile` — structures → :class:`CompiledSource` /
  :class:`CompiledTarget` (memoized on the structure; also cached across
  structurally-equal rebuilds by the fingerprint-keyed
  :class:`repro.core.pipeline.StructureCache`);
* :mod:`repro.kernel.propagate` — generalized arc consistency with
  AC-2001-style residual last supports;
* :mod:`repro.kernel.search` — forward-checking/MRV backtracking that
  mirrors the reference search tree exactly (same answers, same order,
  same ``SearchStats``), the :func:`solve` fast path used by the
  pipeline strategies, and the :func:`count_solutions` leaf-tally count
  mode behind ``count_homomorphisms``;
* :mod:`repro.kernel.estimate` — the cheap cost model over compiled
  sizes that the solve service uses to route a request to its thread or
  process backend;
* :mod:`repro.kernel.pebble2` — the existential 2-pebble game as bitset
  arc consistency (the ``k = 2`` fast path of the pebble strategy);
* :mod:`repro.kernel.engine` — the kernel/legacy flag keeping the
  reference implementations available as the parity oracle.
"""

from repro.kernel.compile import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
    initial_domains,
)
from repro.kernel.engine import (
    KERNEL,
    LEGACY,
    default_engine,
    resolve_engine,
    set_default_engine,
    use_engine,
)
from repro.kernel.estimate import estimate_cost
from repro.kernel.pebble2 import spoiler_wins_k2
from repro.kernel.propagate import propagate
from repro.kernel.search import count_solutions, search_homomorphisms, solve

__all__ = [
    "KERNEL",
    "LEGACY",
    "CompiledSource",
    "CompiledTarget",
    "compile_source",
    "compile_target",
    "count_solutions",
    "default_engine",
    "estimate_cost",
    "initial_domains",
    "propagate",
    "resolve_engine",
    "search_homomorphisms",
    "set_default_engine",
    "solve",
    "spoiler_wins_k2",
    "use_engine",
]
