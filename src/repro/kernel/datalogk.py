"""Semi-naive Datalog evaluation compiled to bitset delta tables.

The legacy engine (:mod:`repro.datalog.evaluation`) joins rule bodies by
extending lists of Python dicts, one dict copy per (binding, fact) probe.
This module lowers the same least-fixpoint computation onto the kernel's
integer encodings (:mod:`repro.kernel.compile`):

* a **fact** of an r-ary predicate is one bit: its mixed-radix code
  ``Σ_p value_p · n^p`` over the target compilation's element indices
  (``CompiledTarget.values`` order — the same deterministic ``_sort_key``
  order the legacy evaluator sorts its active domain by), so a relation
  is a single Python int and the semi-naive *delta* is a bit-difference;
* a **rule body** is decided over the mixed-radix *binding space*
  ``n^v`` of its ``v`` distinct variables: each atom contributes an
  allowed-bindings mask (the union of its facts' *cylinders* — per-digit
  value masks ANDed together, the same support-bitset semijoin shape the
  pebble and decomposition kernels use), and the rule's satisfied
  bindings are one AND across its atoms;
* atom masks are maintained **incrementally**: when a predicate gains a
  delta, only the delta facts are lifted and OR-ed into every body atom
  reading that predicate, and the semi-naive firing joins the lifted
  delta of one atom against the full masks of the others;
* **projection** to the head is one pass over the set bits of the
  satisfied-bindings mask — per binding, the head code is a dot product
  with precompiled per-digit weights, and unsafe head variables (the
  canonical program's domain-expanded heads) land as one precomputed
  offsets-mask shift instead of an enumeration.

The fixpoint is the least model either way, so the decoded database
equals the legacy evaluator's output *exactly* — dict for dict, fact for
fact — which is what lets :mod:`repro.datalog.evaluation` delegate here
behind the engine flag with legacy as the parity oracle.  The
per-program compilation (digit masks, scopes, head weights) depends only
on the program and the universe size, and is memoized on the program
object, so template workloads — one canonical program ρ_B evaluated
against many sources of one size — compile once.
"""

from __future__ import annotations

import os
from itertools import product
from typing import TYPE_CHECKING, Hashable

from repro import faultinject
from repro.core.cancellation import current_token
from repro.exceptions import DatalogError, ResourceBudgetError
from repro.kernel.compile import compile_target
from repro.obs.logs import get_logger
from repro.obs.metrics import kcount
from repro.obs.trace import maybe_span
from repro.structures.structure import Structure

if TYPE_CHECKING:  # pragma: no cover — annotation-only imports
    from repro.datalog.program import DatalogProgram, Rule

__all__ = [
    "MAX_TABLE_CELLS",
    "CompiledDatalog",
    "compile_datalog",
    "evaluate_datalog",
    "datalog_goal_holds",
]

#: Refuse to build a binding-space mask family wider than this many
#: cells (bits).  A rule with ``v`` distinct body variables evaluates
#: over ``n^v`` codes; past ~2^28 the digit-mask ints alone reach
#: hundreds of megabytes and a single AND stalls the worker for longer
#: than any reasonable deadline.  The planner treats the resulting
#: :class:`ResourceBudgetError` as "route this instance to search".
MAX_TABLE_CELLS = int(os.environ.get("REPRO_MAX_TABLE_CELLS", 1 << 28))

Element = Hashable
Row = tuple[Element, ...]
#: The legacy evaluator's return shape (``repro.datalog.evaluation``).
Database = dict[str, set[Row]]

_budget_log = get_logger("kernel")


class _CompiledRule:
    """One rule in binding-space form (fixed program, fixed universe size).

    Attributes
    ----------
    head_name / head_arity:
        The head predicate and its arity (head code space is ``n^arity``).
    num_digits:
        ``v`` — distinct body variables; bindings are codes in ``n^v``.
    atoms:
        Per body atom, ``(relation name, digit positions)`` — the digit
        each atom position reads, in atom-term order.
    weights:
        Per digit, the head-code weight ``Σ n^p`` over the head positions
        holding that variable (0 when the variable is body-only).
    unsafe_mask:
        The OR of ``1 << offset`` over every assignment of the unsafe
        (head-only) variables — projection shifts this one mask by the
        safe part's head code.  ``1`` (a single offset of 0) when every
        head variable is bound by the body; ``0`` when unsafe variables
        exist but the domain is empty (no expansion, like the reference).
    """

    __slots__ = (
        "head_name",
        "head_arity",
        "num_digits",
        "atoms",
        "weights",
        "unsafe_mask",
    )

    def __init__(self, rule: "Rule", n: int) -> None:
        head = rule.head
        self.head_name = head.relation
        self.head_arity = head.arity
        body_vars = sorted(rule.body_variables)
        digit = {name: d for d, name in enumerate(body_vars)}
        self.num_digits = len(body_vars)
        self.atoms = tuple(
            (atom.relation, tuple(digit[t] for t in atom.terms))
            for atom in rule.body
        )
        weights = [0] * len(body_vars)
        unsafe_weights: dict[str, int] = {}
        for position, term in enumerate(head.terms):
            if term in digit:
                weights[digit[term]] += n**position
            else:
                unsafe_weights[term] = (
                    unsafe_weights.get(term, 0) + n**position
                )
        self.weights = tuple(weights)
        mask = 0
        names = sorted(unsafe_weights)
        for values in product(range(n), repeat=len(names)):
            mask |= 1 << sum(
                unsafe_weights[name] * value
                for name, value in zip(names, values)
            )
        self.unsafe_mask = mask


class CompiledDatalog:
    """A program compiled for one universe size ``n``.

    Shared across every structure of that size (memoized on the program
    object via :func:`compile_datalog`): rules in binding-space form, the
    per-width digit masks cylinders are built from, and the index of IDB
    body atoms the delta loop walks.
    """

    __slots__ = (
        "program",
        "n",
        "rules",
        "digit_masks",
        "full_masks",
        "idb_atoms",
        "identity",
    )

    def __init__(self, program: "DatalogProgram", n: int) -> None:
        self.program = program
        self.n = n
        self.rules = tuple(_CompiledRule(rule, n) for rule in program.rules)

        #: Per binding width ``v``: ``digit_masks[v][d][value]`` is the
        #: mask over ``n^v`` codes whose digit ``d`` equals ``value``.
        self.digit_masks: dict[int, tuple[tuple[int, ...], ...]] = {}
        self.full_masks: dict[int, int] = {}
        for width in sorted({r.num_digits for r in self.rules}):
            space = n**width
            if space > MAX_TABLE_CELLS:
                _budget_log.warning(
                    "datalog compile refused: binding space exceeds budget",
                    extra={
                        "event": "budget.trip",
                        "engine": "datalog",
                        "bound": space,
                        "budget": MAX_TABLE_CELLS,
                        "width": width,
                    },
                )
                raise ResourceBudgetError(
                    f"datalog binding space n^v = {n}^{width} exceeds "
                    f"max_table_cells={MAX_TABLE_CELLS}; route this "
                    "instance to search"
                )
            full = (1 << space) - 1
            self.full_masks[width] = full
            per_digit = []
            stride = 1  # n^d
            for _d in range(width):
                block = (1 << stride) - 1
                period = stride * n
                zeros = 0
                offset = 0
                while offset < space:
                    zeros |= block << offset
                    offset += period
                per_digit.append(
                    tuple(zeros << (value * stride) for value in range(n))
                )
                stride = period
            self.digit_masks[width] = tuple(per_digit)

        idb = program.idb_predicates
        #: Every (rule index, atom index, predicate) with an IDB body
        #: atom — the places a delta must be lifted into.
        self.idb_atoms = tuple(
            (ri, ai, name)
            for ri, crule in enumerate(self.rules)
            for ai, (name, _digits) in enumerate(crule.atoms)
            if name in idb
        )
        #: Atoms whose lifted mask is the relation's fact mask verbatim
        #: (terms are exactly the body variables in digit order) — the
        #: goal rule of a canonical program is all such atoms.
        self.identity = frozenset(
            (ri, ai)
            for ri, crule in enumerate(self.rules)
            for ai, (name, digits) in enumerate(crule.atoms)
            if digits == tuple(range(crule.num_digits))
            and self._arity(name) == crule.num_digits
        )

    def _arity(self, predicate: str) -> int:
        return self.program.arity(predicate)


def compile_datalog(program: "DatalogProgram", n: int) -> CompiledDatalog:
    """Compile ``program`` for universe size ``n`` (memoized on the program)."""
    cache = getattr(program, "_kernel_compiled", None)
    if cache is None:
        cache = {}
        program._kernel_compiled = cache  # type: ignore[attr-defined]
    compiled = cache.get(n)
    if compiled is None:
        compiled = cache[n] = CompiledDatalog(program, n)
    return compiled


def _decode_codes(mask: int, arity: int, n: int) -> list[tuple[int, ...]]:
    """Set bits of a fact mask as value-index rows (digit 0 first)."""
    rows = []
    while mask:
        low = mask & -mask
        code = low.bit_length() - 1
        row = []
        for _ in range(arity):
            code, value = divmod(code, n)
            row.append(value)
        rows.append(tuple(row))
        mask ^= low
    return rows


class _Evaluation:
    """One fixpoint run: fact masks plus incrementally lifted atom masks."""

    __slots__ = ("cp", "facts", "lifted", "delta")

    def __init__(self, cp: CompiledDatalog, facts: dict[str, int]) -> None:
        self.cp = cp
        self.facts = facts
        #: ``lifted[ri][ai]`` — the OR of cylinders of every fact the
        #: atom's relation currently holds, over the rule's binding space.
        self.lifted: list[list[int]] = []
        n = cp.n
        for ri, crule in enumerate(cp.rules):
            masks = []
            for ai, (name, digits) in enumerate(crule.atoms):
                mask = facts.get(name, 0)
                if mask and (ri, ai) not in cp.identity:
                    rows = _decode_codes(mask, cp._arity(name), n)
                    mask = self._lift(crule, digits, rows)
                masks.append(mask)
            self.lifted.append(masks)
        self.delta: dict[str, int] = {
            p: 0 for p in cp.program.idb_predicates
        }

    def _lift(
        self,
        crule: _CompiledRule,
        digits: tuple[int, ...],
        rows: list[tuple[int, ...]],
    ) -> int:
        """The allowed-bindings mask an atom gets from ``rows``.

        Each consistent row contributes a cylinder: the AND of the digit
        masks it pins, unrestricted in the digits the atom does not read.
        """
        cp = self.cp
        width = crule.num_digits
        full = cp.full_masks[width]
        per_digit = cp.digit_masks[width]
        out = 0
        if len(digits) == width and len(set(digits)) == width:
            # The atom's terms are the body variables in some order: a
            # fact pins every digit, so its cylinder is a single bit.
            n = cp.n
            strides = [n**d for d in digits]
            for row in rows:
                code = 0
                for value, stride in zip(row, strides):
                    code += value * stride
                out |= 1 << code
            return out
        for row in rows:
            assigned: dict[int, int] = {}
            ok = True
            for d, value in zip(digits, row):
                seen = assigned.get(d)
                if seen is None:
                    assigned[d] = value
                elif seen != value:
                    ok = False
                    break
            if not ok:
                continue
            cylinder = full
            for d, value in assigned.items():
                cylinder &= per_digit[d][value]
                if not cylinder:
                    break
            out |= cylinder
        return out

    def _project(self, crule: _CompiledRule, bindings: int) -> int:
        """Derived head-code mask of the rule's satisfied bindings."""
        unsafe = crule.unsafe_mask
        if not unsafe:
            return 0
        weights = crule.weights
        n = self.cp.n
        derived = 0
        while bindings:
            low = bindings & -bindings
            code = low.bit_length() - 1
            head_code = 0
            for weight in weights:
                code, value = divmod(code, n)
                if weight:
                    head_code += weight * value
            derived |= unsafe << head_code
            bindings ^= low
        return derived

    def _fire_full(self, ri: int) -> int:
        """Every head code one rule derives from the current masks."""
        crule = self.cp.rules[ri]
        bindings = self.cp.full_masks[crule.num_digits]
        for mask in self.lifted[ri]:
            bindings &= mask
            if not bindings:
                return 0
        return self._project(crule, bindings)

    def _absorb(self, head: str, derived: int, delta: dict[str, int]) -> None:
        fresh = derived & ~self.facts[head]
        if fresh:
            self.facts[head] |= fresh
            delta[head] |= fresh

    def _push_deltas(self) -> list[tuple[int, int, int]]:
        """Lift the round's deltas into every reading atom.

        Returns ``(rule, atom, lifted delta)`` triples for the semi-naive
        firing; full masks are updated in place first, so a firing joins
        one atom's delta against the others' *current* relations.
        """
        cp = self.cp
        decoded: dict[str, list[tuple[int, ...]]] = {}
        updates: list[tuple[int, int, int]] = []
        for ri, ai, name in cp.idb_atoms:
            mask = self.delta.get(name, 0)
            if not mask:
                continue
            if (ri, ai) in cp.identity:
                lifted_delta = mask
            else:
                rows = decoded.get(name)
                if rows is None:
                    rows = decoded[name] = _decode_codes(
                        mask, cp._arity(name), cp.n
                    )
                lifted_delta = self._lift(
                    cp.rules[ri], cp.rules[ri].atoms[ai][1], rows
                )
            self.lifted[ri][ai] |= lifted_delta
            updates.append((ri, ai, lifted_delta))
        return updates

    def run(self, method: str, *, stop_at_goal: bool = False) -> None:
        """Drive the fixpoint; optionally stop once the goal derives.

        Observability wrapper around :meth:`_run`: opens a
        ``kernel.datalog`` span when a trace is ambient and flushes the
        round count and cumulative delta-table bits into the
        ``datalog.rounds`` / ``datalog.delta_bits`` kernel counters.
        """
        counters = [0, 0]  # rounds, delta bits
        with maybe_span("kernel.datalog", method=method) as span:
            try:
                self._run(method, stop_at_goal, counters)
            finally:
                kcount("datalog.rounds", counters[0])
                kcount("datalog.delta_bits", counters[1])
                if span is not None:
                    span.set(rounds=counters[0], delta_bits=counters[1])

    def _count_round(self, counters: list[int], delta: dict[str, int]) -> None:
        counters[0] += 1
        counters[1] += sum(mask.bit_count() for mask in delta.values())

    def _run(
        self, method: str, stop_at_goal: bool, counters: list[int]
    ) -> None:
        cp = self.cp
        goal = cp.program.goal
        # Cooperative cancellation: a fixpoint round over a wide binding
        # space can run long, so the deadline is tested once per round.
        token = current_token()
        # Round 0: every rule in full (IDB relations start empty, so this
        # is the exact base of the legacy round 0).
        for ri, crule in enumerate(cp.rules):
            if token is not None:
                token.check()
            self._absorb(crule.head_name, self._fire_full(ri), self.delta)
        self._count_round(counters, self.delta)
        if stop_at_goal and self.facts[goal]:
            return
        if method == "naive":
            # Re-fire every rule in full each round; the lifted masks
            # still update incrementally (the fixpoint cannot tell).
            while any(self.delta.values()):
                if token is not None:
                    token.check()
                self._push_deltas()
                next_delta: dict[str, int] = {p: 0 for p in self.delta}
                for ri, crule in enumerate(cp.rules):
                    self._absorb(
                        crule.head_name, self._fire_full(ri), next_delta
                    )
                self.delta = next_delta
                self._count_round(counters, self.delta)
                if stop_at_goal and self.facts[goal]:
                    return
            return
        while any(self.delta.values()):
            if token is not None:
                token.check()
            updates = self._push_deltas()
            next_delta = {p: 0 for p in self.delta}
            for ri, ai, lifted_delta in updates:
                if not lifted_delta:
                    continue
                crule = cp.rules[ri]
                bindings = lifted_delta
                for aj, mask in enumerate(self.lifted[ri]):
                    if aj == ai:
                        continue
                    bindings &= mask
                    if not bindings:
                        break
                if not bindings:
                    continue
                self._absorb(
                    crule.head_name, self._project(crule, bindings), next_delta
                )
            self.delta = next_delta
            self._count_round(counters, self.delta)
            if stop_at_goal and self.facts[goal]:
                return


def _seed(
    program: "DatalogProgram", structure: Structure, method: str
) -> tuple[CompiledDatalog, dict[str, int]]:
    """Validate like the reference evaluator and build the fact masks."""
    if method not in ("semi_naive", "naive"):
        raise DatalogError(f"unknown evaluation method {method!r}")
    ctarget = compile_target(structure)
    n = len(ctarget.values)
    facts: dict[str, int] = {}
    for symbol, _rel in structure.relations():
        expected = program._arities.get(symbol.name)
        if expected is not None and expected != symbol.arity:
            raise DatalogError(
                f"EDB predicate {symbol.name!r} has arity {symbol.arity} "
                f"in the structure but {expected} in the program"
            )
        mask = 0
        for row in ctarget.tuples[symbol.name]:
            code = 0
            stride = 1
            for value in row:
                code += value * stride
                stride *= n
            mask |= 1 << code
        facts[symbol.name] = mask
    for predicate in program.idb_predicates:
        if facts.get(predicate):
            raise DatalogError(
                f"IDB predicate {predicate!r} already populated by the "
                "input structure"
            )
        facts.setdefault(predicate, 0)
    for predicate in program.edb_predicates:
        facts.setdefault(predicate, 0)
    if faultinject.fires("datalogk.budget"):
        _budget_log.warning(
            "injected datalog budget breach",
            extra={"event": "budget.trip", "engine": "datalog",
                   "injected": True},
        )
        raise ResourceBudgetError(
            "injected binding-space budget breach (datalogk.budget)"
        )
    return compile_datalog(program, n), facts


def evaluate_datalog(
    program: "DatalogProgram",
    structure: Structure,
    *,
    method: str = "semi_naive",
) -> Database:
    """The least fixed point on ``structure``, decoded to the legacy shape.

    Exactly the dict :func:`repro.datalog.evaluation.evaluate_program`
    returns — every structure relation passed through, every program
    predicate present, IDB facts decoded back to element tuples.
    """
    cp, facts = _seed(program, structure, method)
    run = _Evaluation(cp, facts)
    run.run(method)
    values = compile_target(structure).values
    n = cp.n
    result: Database = {}
    for symbol, rel in structure.relations():
        result[symbol.name] = set(rel)
    for predicate in program.idb_predicates:
        result[predicate] = {
            tuple(values[v] for v in row)
            for row in _decode_codes(
                facts[predicate], program.arity(predicate), n
            )
        }
    for predicate in program.edb_predicates:
        result.setdefault(predicate, set())
    return result


def datalog_goal_holds(
    program: "DatalogProgram", structure: Structure
) -> bool:
    """Truth of the goal — the fixpoint run stops as soon as it derives.

    Early exit is sound because evaluation is monotone: a derived goal
    fact can never be retracted, and goal truth is non-emptiness.
    """
    cp, facts = _seed(program, structure, "semi_naive")
    run = _Evaluation(cp, facts)
    run.run("semi_naive", stop_at_goal=True)
    return bool(facts[program.goal])
