"""The engine flag: compiled kernel vs legacy reference implementations.

The kernel is the default execution engine everywhere; the legacy
pure-dict solvers stay available as the parity oracle.  Selection, most
specific wins:

1. an explicit ``engine=`` argument to a solver call;
2. the process default, set via :func:`set_default_engine` or the
   :func:`use_engine` context manager (the benchmark harness uses the
   latter for its kernel-vs-legacy tables);
3. the ``REPRO_ENGINE`` environment variable (``kernel`` or ``legacy``)
   read at import time.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "KERNEL",
    "LEGACY",
    "default_engine",
    "resolve_engine",
    "set_default_engine",
    "use_engine",
]

KERNEL = "kernel"
LEGACY = "legacy"
_ENGINES = (KERNEL, LEGACY)

_default = os.environ.get("REPRO_ENGINE", KERNEL)
if _default not in _ENGINES:
    raise ValueError(
        f"REPRO_ENGINE must be one of {_ENGINES}, got {_default!r}"
    )


def default_engine() -> str:
    """The engine used when a call passes ``engine=None``."""
    return _default


def set_default_engine(engine: str) -> None:
    """Set the process-wide default engine."""
    global _default
    _default = resolve_engine(engine)


def resolve_engine(engine: str | None) -> str:
    """Validate an ``engine=`` argument, defaulting to the process engine."""
    if engine is None:
        return _default
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    return engine


@contextmanager
def use_engine(engine: str) -> Iterator[None]:
    """Temporarily switch the process default engine."""
    previous = _default
    set_default_engine(engine)
    try:
        yield
    finally:
        set_default_engine(previous)
