"""Compiled dynamic programming over tree decompositions (Theorem 5.4).

The legacy :func:`repro.treewidth.dp.solve_by_treewidth` enumerates every
bag map with ``itertools.product`` and stores tables as sets of sorted
``(element, value)`` tuples — dict churn on the innermost loop.  This
module runs the same dynamic program on the kernel's integer-indexed
compiled structures instead:

* the decomposition is normalized to a *nice* one
  (:func:`repro.treewidth.nice.make_nice`) and compiled — together with
  the per-node constraint assignment — into a reusable *program*,
  memoized on the decomposition object per source fingerprint (the same
  pattern as the structure compile memos), so repeated solves against
  one decomposition pay the normalization and validation once;
* a bag of ``s`` source variables is a sorted tuple of variable indices,
  and a bag assignment is a single int *code* in mixed radix ``m`` (the
  ``p``-th bag position contributes ``value · m^p``), so a node table is
  a plain ``set[int]``;
* **introduce(v)** is a semijoin against the target: for each child row,
  the compatible images of ``v`` are read off the precompiled
  ``(relation, position, value)`` support bitsets — narrow the
  relation's tuple mask by the already-coded bag values, then test each
  candidate value's support bitset against it — no target relation is
  ever scanned;
* **forget(v)** drops one digit (two divmods per row) and keeps, per
  surviving projected row, one witness extension for the top-down
  reconstruction;
* **join** intersects the two children's code sets directly.

Tables only ever hold satisfying bag assignments, so the answer — and
the reconstructed witness — agrees with the legacy DP on every instance
(the randomized suite in ``tests/test_decomp_parity.py`` holds both, and
the kernel search, to that agreement).  Worst-case size per table is
``m^{w+1}`` — the Theorem 5.4 bound — reached only on unconstrained
bags; the semijoin keeps realistic tables at the size of the joined
relations, in the spirit of worst-case size bounds for conjunctive
joins.
"""

from __future__ import annotations

import os
from typing import Hashable

from repro import faultinject
from repro.core.cancellation import CHECK_MASK, current_token
from repro.exceptions import ResourceBudgetError, VocabularyError
from repro.kernel.compile import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
    initial_domains,
)
from repro.obs.logs import get_logger
from repro.obs.metrics import kcount
from repro.obs.trace import maybe_span
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.structure import Structure
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import cached_decomposition
from repro.treewidth.nice import make_nice

__all__ = ["MAX_TABLE_CELLS", "solve_decomposition", "decomposition_exists"]

Element = Hashable

_budget_log = get_logger("kernel")

#: Worst-case bag-table budget (codes per table, the Theorem 5.4 bound
#: ``m^{w+1}``).  The DP refuses up front — with a typed
#: :class:`ResourceBudgetError` the planner and the service's breaker
#: can degrade on — rather than letting an adversarial (width, target)
#: pair OOM a worker mid-solve.  Deliberately generous: real tables are
#: the semijoin-reduced fraction of the bound.
MAX_TABLE_CELLS = int(os.environ.get("REPRO_MAX_TABLE_CELLS", 1 << 28))

#: Node-kind opcodes of a compiled program (list indexing beats string
#: comparison on the per-node dispatch).
_LEAF, _INTRODUCE, _FORGET, _JOIN = range(4)


class _DecompProgram:
    """A nice decomposition lowered to integer node specs, bottom-up.

    Everything that depends only on the (source, decomposition) pair —
    node kinds, child links, bag digit positions, and the constraint
    checks attached to each introduce node — is precomputed here;
    per-target state (strides in radix ``m``, support bitsets, domains)
    is supplied at solve time.

    ``steps`` holds one ``(kind, children, v, p, checks)`` tuple per node
    in bottom-up order (root last); ``checks`` is only populated for
    introduce nodes: ``(relation name, [(scope position, child digit
    position)...], [scope positions of v])`` per constraint assigned to
    the node.  A constraint is checked at every introduce node where the
    introduced variable occurs in it and the whole scope is inside the
    bag — this covers each constraint at least once (take a deepest bag
    containing the scope: it must be an introduce node of a scope
    variable) and re-checking is harmless.
    """

    __slots__ = ("steps", "order", "kinds", "children", "vs", "ps", "width")

    def __init__(self, csource: CompiledSource, decomposition: TreeDecomposition) -> None:
        nice = make_nice(decomposition)
        var_index = csource.var_index
        count = len(nice.nodes)
        bags: list[tuple[int, ...]] = []
        positions: list[dict[int, int]] = []
        for node in nice.nodes:
            bag = tuple(sorted(var_index[element] for element in node.bag))
            bags.append(bag)
            positions.append({x: p for p, x in enumerate(bag)})
        self.width = max(len(bag) for bag in bags) - 1

        self.kinds: list[int] = [0] * count
        self.children: list[tuple[int, ...]] = [()] * count
        self.vs: list[int] = [-1] * count
        self.ps: list[int] = [-1] * count
        checks_at: list[tuple] = [()] * count
        constraints = csource.constraints
        for index, node in enumerate(nice.nodes):
            self.children[index] = node.children
            if node.kind == "leaf":
                self.kinds[index] = _LEAF
                continue
            if node.kind == "join":
                self.kinds[index] = _JOIN
                continue
            v = var_index[node.element]
            self.vs[index] = v
            if node.kind == "forget":
                self.kinds[index] = _FORGET
                (child,) = node.children
                self.ps[index] = positions[child][v]
                continue
            self.kinds[index] = _INTRODUCE
            self.ps[index] = positions[index][v]
            (child,) = node.children
            bag = set(bags[index])
            child_positions = positions[child]
            checks = []
            relevant: set[int] = set()
            for ci in csource.constraints_of[v]:
                name, scope = constraints[ci]
                if not all(x in bag for x in scope):
                    continue
                others = [
                    (q, child_positions[x])
                    for q, x in enumerate(scope)
                    if x != v
                ]
                relevant.update(pos for _q, pos in others)
                v_positions = [q for q, x in enumerate(scope) if x == v]
                checks.append((name, others, v_positions))
            # The child digit positions any check reads: child codes that
            # agree on them share the allowed-value set, so the solve
            # loop memoizes per digit-key instead of re-checking facts.
            checks_at[index] = (tuple(checks), tuple(sorted(relevant)))

        # Bottom-up evaluation order (every child before its parent).
        order: list[int] = []
        stack = [0]
        while stack:
            index = stack.pop()
            order.append(index)
            stack.extend(self.children[index])
        order.reverse()
        self.order = order
        self.steps = checks_at


def _program(
    source: Structure,
    csource: CompiledSource,
    decomposition: TreeDecomposition,
    *,
    validate: bool,
) -> _DecompProgram:
    """Compile (and memoize) the program for ``(source, decomposition)``.

    The memo lives on the decomposition object, keyed by the source's
    canonical fingerprint; a hit implies the decomposition was already
    validated against an equal source, so repeated solves skip both the
    validation walk and the nice-normalization.
    """
    try:
        memo = decomposition._kernel_programs  # type: ignore[attr-defined]
    except AttributeError:
        memo = decomposition._kernel_programs = {}  # type: ignore[attr-defined]
    key = canonical_fingerprint(source)
    program = memo.get(key)
    if program is None:
        if validate:
            decomposition.validate(source)
        program = _DecompProgram(csource, decomposition)
        if len(memo) >= 8:  # a decomposition serves very few sources
            memo.pop(next(iter(memo)))
        memo[key] = program
    return program


def solve_decomposition(
    source: Structure,
    target: Structure | CompiledTarget,
    decomposition: TreeDecomposition | None = None,
    *,
    max_table_cells: int | None = None,
) -> dict[Element, Element] | None:
    """Find a homomorphism ``source → target`` by the compiled bag-table DP.

    Drop-in kernel equivalent of the legacy
    :func:`repro.treewidth.dp.solve_by_treewidth`: same validation, same
    edge cases, same existence verdict on every instance (witnesses are
    valid homomorphisms but may differ element-wise).  ``decomposition``
    defaults to the memoized min-fill decomposition of the source.

    Raises :class:`ResourceBudgetError` before building any table when
    the Theorem 5.4 worst-case bag-table size ``m^{w+1}`` exceeds
    ``max_table_cells`` (default :data:`MAX_TABLE_CELLS`), and
    :class:`~repro.exceptions.SolveTimeoutError` from inside the DP when
    an ambient cancellation deadline expires.
    """
    ctarget = compile_target(target)
    if source.vocabulary != ctarget.structure.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")
    csource = compile_source(source)
    if decomposition is None:
        decomposition = cached_decomposition(source)
        program = _program(source, csource, decomposition, validate=False)
    else:
        program = _program(source, csource, decomposition, validate=True)
    if not source.universe:
        return {}
    if not ctarget.values:
        return None

    # Nullary facts never enter a bag check (no variable carries them).
    for name, scope in csource.constraints:
        if not scope and () not in ctarget.tuples[name]:
            return None

    domains = initial_domains(csource, ctarget)
    if domains is None:
        return None

    m = len(ctarget.values)
    budget = MAX_TABLE_CELLS if max_table_cells is None else max_table_cells
    worst_table = m ** (program.width + 1)
    if worst_table > budget or faultinject.fires("decomp.budget"):
        _budget_log.warning(
            "treewidth DP refused: bag-table bound exceeds budget",
            extra={
                "event": "budget.trip",
                "engine": "dp",
                "bound": worst_table,
                "budget": budget,
                "width": program.width,
            },
        )
        raise ResourceBudgetError(
            f"bag table bound m^(w+1) = {m}^{program.width + 1} exceeds "
            f"max_table_cells={budget}; route this instance to search"
        )
    with maybe_span("kernel.dp", width=program.width, values=m) as span:
        assignment, cells = _dp_run(program, csource, ctarget, domains, m)
        kcount("dp.bag_cells", cells)
        if span is not None:
            span.set(bag_cells=cells, found=assignment is not None)
    return assignment


def _dp_run(
    program: _DecompProgram,
    csource: CompiledSource,
    ctarget: CompiledTarget,
    domains: list[int],
    m: int,
) -> tuple[dict[Element, Element] | None, int]:
    """Run a compiled program bottom-up; returns (witness, bag cells).

    The second component counts every bag-table cell materialised (the
    per-node ``len(table)`` sum) — the DP's native work measure, flushed
    into the ``dp.bag_cells`` kernel counter and held against the
    planner's ``m^(w+1)``-shaped cost guess by the calibration report.
    """
    token = current_token()
    pow_m = [1]
    for _ in range(program.width + 2):
        pow_m.append(pow_m[-1] * m)
    supports = ctarget.supports
    all_tuples_masks = ctarget.all_tuples_masks
    kinds, children = program.kinds, program.children
    vs, ps, steps = program.vs, program.ps, program.steps

    tables: list[set[int] | None] = [None] * len(kinds)
    # Per forget node, one surviving child extension per projected row.
    forget_witness: list[dict[int, int] | None] = [None] * len(kinds)
    rows_seen = 0  # cancellation granularity across introduce rows
    cells = 0  # bag-table cells materialised, summed over nodes

    for index in program.order:
        if token is not None:
            token.check()
        kind = kinds[index]
        if kind == _LEAF:
            tables[index] = {0}
        elif kind == _INTRODUCE:
            (child,) = children[index]
            child_table = tables[child]
            stride = pow_m[ps[index]]
            v_domain = domains[vs[index]]
            node_checks, relevant = steps[index]
            checks = [
                (
                    supports[name],
                    all_tuples_masks[name],
                    [(q, pow_m[pos]) for q, pos in others],
                    v_positions,
                )
                for name, others, v_positions in node_checks
            ]
            key_strides = [pow_m[pos] for pos in relevant]
            # Child codes agreeing on the checked digits share their
            # allowed images of v; memoize the (stride-scaled) offsets.
            offsets_by_key: dict[int, tuple[int, ...]] = {}
            get_offsets = offsets_by_key.get
            table = set()
            table_add = table.add
            for code in child_table:
                if token is not None:
                    rows_seen += 1
                    if not rows_seen & CHECK_MASK:
                        token.check()
                low = code % stride
                base = low + (code - low) * m
                key = 0
                for key_stride in key_strides:
                    key = key * m + code // key_stride % m
                offsets = get_offsets(key)
                if offsets is None:
                    allowed = v_domain
                    for per_position, live, others, v_positions in checks:
                        for q, digit_stride in others:
                            live &= per_position[q][code // digit_stride % m]
                            if not live:
                                break
                        if not live:
                            allowed = 0
                            break
                        # One surviving tuple must support the value at
                        # every occurrence of v simultaneously.
                        mask = allowed
                        allowed = 0
                        while mask:
                            bit = mask & -mask
                            value = bit.bit_length() - 1
                            rows = live
                            for q in v_positions:
                                rows &= per_position[q][value]
                                if not rows:
                                    break
                            if rows:
                                allowed |= bit
                            mask ^= bit
                        if not allowed:
                            break
                    collected = []
                    mask = allowed
                    while mask:
                        bit = mask & -mask
                        collected.append((bit.bit_length() - 1) * stride)
                        mask ^= bit
                    offsets = tuple(collected)
                    offsets_by_key[key] = offsets
                for offset in offsets:
                    table_add(base + offset)
            tables[index] = table
            tables[child] = None  # free the child table early
        elif kind == _FORGET:
            (child,) = children[index]
            child_table = tables[child]
            stride = pow_m[ps[index]]
            shifted = stride * m
            witness: dict[int, int] = {}
            put = witness.setdefault
            for code in child_table:
                low = code % stride
                put(low + (code // shifted) * stride, code)
            tables[index] = set(witness)
            forget_witness[index] = witness
            tables[child] = None
        else:  # join
            left, right = children[index]
            tables[index] = tables[left] & tables[right]  # type: ignore[operator]
            tables[left] = tables[right] = None
        cells += len(tables[index])  # type: ignore[arg-type]
        if not tables[index]:
            return None, cells

    # Top-down witness reconstruction: thread one surviving code from the
    # root through every node, reading variable images off introduce
    # digits and re-extending through forget witnesses.
    assignment: dict[Element, Element] = {}
    variables = csource.variables
    values = ctarget.values
    root_table = tables[0]
    assert root_table is not None
    stack: list[tuple[int, int]] = [(0, min(root_table))]
    while stack:
        index, code = stack.pop()
        kind = kinds[index]
        if kind == _INTRODUCE:
            (child,) = children[index]
            stride = pow_m[ps[index]]
            low = code % stride
            assignment[variables[vs[index]]] = values[code // stride % m]
            stack.append((child, low + (code // (stride * m)) * stride))
        elif kind == _FORGET:
            (child,) = children[index]
            witness = forget_witness[index]
            assert witness is not None
            stack.append((child, witness[code]))
        elif kind == _JOIN:
            left, right = children[index]
            stack.append((left, code))
            stack.append((right, code))
    return assignment, cells


def decomposition_exists(
    source: Structure,
    target: Structure | CompiledTarget,
    decomposition: TreeDecomposition | None = None,
) -> bool:
    """Decision form of :func:`solve_decomposition`."""
    return solve_decomposition(source, target, decomposition) is not None
