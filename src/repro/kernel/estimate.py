"""A cheap solve-cost model over the kernel's compiled sizes.

The solve service (:mod:`repro.service`) routes each request to one of
two backends: an in-process worker thread (no serialization, shares the
process-wide caches — right for instances the pipeline dispatches to a
polynomial island in microseconds) or a process-pool worker (pays a
pickle round-trip, escapes the GIL — right for backtracking-heavy
instances that would stall every other request on the thread backend).

The router needs a cost signal *before* solving.  Compilation is the
natural place to read one off: it is linear, memoized on the structures
(and fingerprint-cached across structurally-equal rebuilds), and already
on the solve path, so estimating is free for the thread backend and
cache-warming for everyone.  The model is the standard branching
surrogate: ``n`` variables each choosing among ``m`` values, where every
choice pays one support scan over the target tuples of each touching
constraint.  It is deliberately crude — a routing signal, not a
prediction — but it is monotone in everything that makes the search
slow, which is all a two-way split needs.
"""

from __future__ import annotations

from repro.kernel.compile import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
)
from repro.structures.structure import Structure

__all__ = ["estimate_cost"]


def estimate_cost(
    source: Structure | CompiledSource,
    target: Structure | CompiledTarget,
    *,
    ctarget: CompiledTarget | None = None,
) -> float:
    """A unitless surrogate for how expensive solving (A, B) can get.

    ``ctarget`` lets a caller supply an already-cached compilation (the
    service passes its sharded cache's copy) so the estimate never
    compiles a target twice.
    """
    csource = compile_source(source)
    if ctarget is None:
        ctarget = compile_target(target)
    n = len(csource.variables)
    m = len(ctarget.values)
    total_tuples = sum(len(rows) for rows in ctarget.tuples.values())
    constraints = len(csource.constraints)
    if n == 0 or m == 0:
        return 0.0
    # Per search level: up to m value choices, each forward-checking the
    # constraints on the chosen variable against the target's tuples.
    tuples_per_relation = total_tuples / max(1, len(ctarget.tuples))
    per_level = m * (1.0 + tuples_per_relation)
    density = constraints / n
    return n * per_level * (1.0 + density)
