"""The width-aware planner: cost models over the kernel's compiled sizes.

Two consumers read predictions off this module:

* the **solve service** (:mod:`repro.service`) routes each request to an
  in-process worker thread (no serialization, shared caches) or a
  process-pool worker (pays a pickle round-trip, escapes the GIL) by the
  predicted cost of the *chosen* engine;
* the **pipeline's planner strategy**
  (:class:`repro.core.strategies.planner.WidthPlannerStrategy`) picks the
  solving engine itself — backtracking search, the treewidth DP, or the
  existential k-pebble game — per instance, from the same predictions.

All signals are read off compilations and memoized analyses already on
the solve path: compiled sizes (linear, memoized on the structures and
fingerprint-cached), Gaifman degree statistics (one pass over the
compiled constraint scopes), and — gated by the degree statistics so
hopeless instances never pay for it — the greedy tree decomposition
width from :mod:`repro.treewidth.heuristics` (memoized on the source).

The models are deliberately crude routing signals, not predictions:

* **search** — the standard branching surrogate: ``n`` variables each
  choosing among ``m`` values, every choice paying one support scan over
  the touching constraints' target tuples;
* **dp** — the Theorem 5.4 table bound: the sum over bags of
  ``m^{|bag|}`` — the worst-case bag-table sizes, in the spirit of
  worst-case size bounds for conjunctive joins (the DP's real tables
  are the semijoin-reduced fraction of that);
* **pebble** — the number of ≤ k-subassignment states
  ``Σ_s C(n, s)·m^s``, scaled down by :data:`PEBBLE_STATE_FACTOR`
  because the compiled game's per-state step is a couple of big-int
  operations, not a tuple scan.

Each model is monotone in everything that makes its engine slow, which
is all a three-way split needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Callable

from repro.kernel.compile import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
)
from repro.structures.structure import Structure
from repro.treewidth.decomposition import TreeDecomposition

__all__ = [
    "Plan",
    "estimate_cost",
    "gaifman_degree_stats",
    "plan_instance",
]

#: Skip the greedy decomposition (treat the width as unbounded) when the
#: Gaifman degree or the universe says even computing it is a bad deal.
WIDTH_SKIP_DEGREE = 24
WIDTH_SKIP_SIZE = 1024

#: The pebble route is only considered against small targets (the game
#: scales with m^k) and sources whose ≤ k-subassignment count is sane.
PEBBLE_TARGET_BOUND = 8
PEBBLE_SOURCE_BOUND = 128
DEFAULT_PLANNER_PEBBLE_K = 3

#: Per-state work of the compiled pebble fixpoint relative to one search
#: branch: a residual check or window AND versus a support scan.
PEBBLE_STATE_FACTOR = 0.125

#: Absolute budget (in the shared unitless scale) above which the pebble
#: closure is no longer considered worth playing before search.
PEBBLE_COST_CAP = 40_000.0


@dataclass(frozen=True)
class Plan:
    """One instance's routing decision plus the signals behind it.

    ``route`` is ``"search"``, ``"dp"``, ``"pebble"``, or ``"datalog"``;
    ``predicted_cost`` is the chosen route's cost in the shared unitless
    scale (what the service compares against its process threshold).
    ``dp_cost`` / ``pebble_cost`` / ``datalog_cost`` are ``None`` when
    the route was not available for this instance (width above threshold
    or never estimated; target/source outside the pebble bounds; no
    canonical-Datalog ``k`` requested).
    """

    route: str
    predicted_cost: float
    search_cost: float
    dp_cost: float | None
    pebble_cost: float | None
    width: int | None
    num_bags: int | None
    pebble_k: int | None
    max_degree: int
    avg_degree: float
    datalog_cost: float | None = None
    datalog_k: int | None = None

    def as_dict(self) -> dict:
        """A JSON-friendly view for ``Solution.stats`` and snapshots."""
        return {
            "route": self.route,
            "predicted_cost": self.predicted_cost,
            "search_cost": self.search_cost,
            "dp_cost": self.dp_cost,
            "pebble_cost": self.pebble_cost,
            "datalog_cost": self.datalog_cost,
            "width": self.width,
            "num_bags": self.num_bags,
            "pebble_k": self.pebble_k,
            "datalog_k": self.datalog_k,
            "max_degree": self.max_degree,
            "avg_degree": self.avg_degree,
        }


def estimate_cost(
    source: Structure | CompiledSource,
    target: Structure | CompiledTarget,
    *,
    ctarget: CompiledTarget | None = None,
) -> float:
    """A unitless surrogate for how expensive *search* on (A, B) can get.

    ``ctarget`` lets a caller supply an already-cached compilation (the
    service passes its sharded cache's copy) so the estimate never
    compiles a target twice.
    """
    csource = compile_source(source)
    if ctarget is None:
        ctarget = compile_target(target)
    n = len(csource.variables)
    m = len(ctarget.values)
    total_tuples = sum(len(rows) for rows in ctarget.tuples.values())
    constraints = len(csource.constraints)
    if n == 0 or m == 0:
        return 0.0
    # Per search level: up to m value choices, each forward-checking the
    # constraints on the chosen variable against the target's tuples.
    tuples_per_relation = total_tuples / max(1, len(ctarget.tuples))
    per_level = m * (1.0 + tuples_per_relation)
    density = constraints / n
    return n * per_level * (1.0 + density)


def gaifman_degree_stats(
    source: Structure | CompiledSource,
) -> tuple[int, float]:
    """``(max, average)`` Gaifman degree, off the compiled scopes.

    The Gaifman degree of an element is the number of distinct elements
    it co-occurs with in some fact — a one-pass, decomposition-free
    signal for whether a width estimate is worth computing at all.
    Memoized on the compiled source (the service's routing pass and the
    pipeline's planner strategy both ask per solve).
    """
    csource = compile_source(source)
    memoized = csource._gaifman_stats
    if memoized is not None:
        return memoized
    n = len(csource.variables)
    if n == 0:
        return 0, 0.0
    neighbours: list[set[int]] = [set() for _ in range(n)]
    for _name, scope in csource.constraints:
        distinct = set(scope)
        if len(distinct) < 2:
            continue
        for x in distinct:
            neighbours[x].update(distinct)
    degrees = [len(adjacent - {x}) for x, adjacent in enumerate(neighbours)]
    stats = max(degrees), sum(degrees) / n
    csource._gaifman_stats = stats
    return stats


def _dp_cost(decomposition: TreeDecomposition, m: int) -> float:
    """Worst-case total bag-table size: Σ_bags m^{|bag|} (Theorem 5.4)."""
    return float(sum(m ** len(bag) for bag in decomposition.bags))


def _pebble_cost(n: int, m: int, k: int) -> float:
    """≤ k-subassignment states, scaled to the compiled game's step cost."""
    states = sum(comb(n, s) * m**s for s in range(1, min(k, n) + 1))
    return states * PEBBLE_STATE_FACTOR


def _datalog_cost(n: int, m: int, k: int) -> float:
    """Cost of deciding the canonical k-Datalog program ρ_B on (A, B).

    By Theorem 4.2 the kernel decides "ρ_B derives its goal on A" by
    playing the compiled existential k-pebble game — never materializing
    the |B|^k-rule program — so the cost *is* the game's state count on
    the same unitless scale as :func:`_pebble_cost`.
    """
    return _pebble_cost(n, m, k)


def plan_instance(
    source: Structure | CompiledSource,
    target: Structure | CompiledTarget,
    *,
    ctarget: CompiledTarget | None = None,
    width_threshold: int = 3,
    pebble_k: int | None = None,
    allow_pebble: bool = True,
    datalog_k: int | None = None,
    decomposition: TreeDecomposition | None = None,
    decomposition_provider: Callable[[], TreeDecomposition] | None = None,
) -> Plan:
    """Choose the solving engine for one instance (see module docstring).

    The choice mirrors the paper's tractability map rather than a bare
    cost argmin (a worst-case search surrogate is linear in ``n`` while
    any k-pebble closure is Ω(n^k), so pure cost comparison would never
    play the game that *guards against* search going exponential):

    1. **dp** when the width estimate is within the threshold and the
       Theorem 5.4 table bound does not exceed the search estimate —
       the Section 5 island, complete and polynomial;
    2. **pebble** when the width is too large but the target is small
       (``m ≤`` :data:`PEBBLE_TARGET_BOUND`) and the closure fits the
       :data:`PEBBLE_COST_CAP` budget — the Section 4 island: for
       k-Datalog-expressible targets the game decides outright
       (Theorem 4.9), and a surviving closure costs one polynomial pass
       before the search fallback;
    3. **search** otherwise — the NP fallback.

    ``datalog_k`` is the explicit opt-in of the canonical-Datalog route
    (``solve(..., try_canonical_datalog=k)``): the caller asserts the
    Theorem 4.2 decision — does ρ_B derive its goal on A? — is the
    question to ask first.  When the pebble-style bounds and the
    :data:`PEBBLE_COST_CAP` budget admit it, the ``"datalog"`` route is
    chosen ahead of the implicit pebble heuristic (it *is* the same
    compiled game by Theorem 4.2, so it shares the cost model), losing
    only to a within-threshold DP.  A surviving closure still falls back
    to search in the strategy, so the route stays sound.

    ``decomposition`` short-circuits the width estimate with a known
    certificate; otherwise ``decomposition_provider`` (e.g. the
    pipeline's cached ``context.decomposition``) is consulted — but only
    when the Gaifman degree statistics say the greedy decomposition is
    worth computing.  With ``allow_pebble=False`` (the service's default
    posture when planner routing is off) the choice degrades to the
    two-way search/DP split.  The chosen route is always *sound*: DP and
    search decide outright, and the pebble route falls back to search
    when the Spoiler does not win.
    """
    csource = compile_source(source)
    if ctarget is None:
        ctarget = compile_target(target)
    n = len(csource.variables)
    m = len(ctarget.values)
    max_degree, avg_degree = gaifman_degree_stats(csource)
    search_cost = estimate_cost(csource, ctarget, ctarget=ctarget)

    if n == 0 or m == 0:
        return Plan(
            route="search",
            predicted_cost=0.0,
            search_cost=search_cost,
            dp_cost=None,
            pebble_cost=None,
            width=None,
            num_bags=None,
            pebble_k=None,
            max_degree=max_degree,
            avg_degree=avg_degree,
        )

    width: int | None = None
    num_bags: int | None = None
    dp_cost: float | None = None
    if decomposition is None and (
        n <= WIDTH_SKIP_SIZE and max_degree <= WIDTH_SKIP_DEGREE
    ):
        if decomposition_provider is not None:
            decomposition = decomposition_provider()
        else:
            from repro.treewidth.heuristics import cached_decomposition

            decomposition = cached_decomposition(csource.structure)
    if decomposition is not None:
        width = decomposition.width
        num_bags = len(decomposition.bags)
        if width <= width_threshold:
            dp_cost = _dp_cost(decomposition, m)

    k = pebble_k if pebble_k is not None else DEFAULT_PLANNER_PEBBLE_K
    pebble_cost: float | None = None
    if (
        allow_pebble
        and m <= PEBBLE_TARGET_BOUND
        and n <= PEBBLE_SOURCE_BOUND
    ):
        pebble_cost = _pebble_cost(n, m, k)

    datalog_cost: float | None = None
    if (
        datalog_k is not None
        and m <= PEBBLE_TARGET_BOUND
        and n <= PEBBLE_SOURCE_BOUND
    ):
        datalog_cost = _datalog_cost(n, m, datalog_k)

    if dp_cost is not None and dp_cost <= search_cost:
        route, cost = "dp", dp_cost
    elif datalog_cost is not None and datalog_cost <= PEBBLE_COST_CAP:
        route, cost = "datalog", datalog_cost
    elif (
        dp_cost is None
        and pebble_cost is not None
        and pebble_cost <= PEBBLE_COST_CAP
    ):
        route, cost = "pebble", pebble_cost
    else:
        route, cost = "search", search_cost
    return Plan(
        route=route,
        predicted_cost=cost,
        search_cost=search_cost,
        dp_cost=dp_cost,
        pebble_cost=pebble_cost,
        width=width,
        num_bags=num_bags,
        pebble_k=k if route == "pebble" else (pebble_k or None),
        max_degree=max_degree,
        avg_degree=avg_degree,
        datalog_cost=datalog_cost,
        datalog_k=datalog_k,
    )
