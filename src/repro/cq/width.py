"""Width measures of conjunctive queries and width-aware containment.

Section 5 (and the Chekuri–Rajaraman discussion the paper builds on)
connects tractable containment to the *treewidth of the contained-in
query*: deciding ``Q1 ⊆ Q2`` is the homomorphism problem with source
``D_{Q2}``, so when ``Q2`` has bounded treewidth the Theorem 5.4 dynamic
program decides containment in polynomial time — regardless of ``Q1``.

This module provides the width measures (Gaifman treewidth of the
canonical database, exactly and heuristically) and the width-aware
containment entry point used by experiment E10/E11's query-side story.
"""

from __future__ import annotations

from repro.cq.compiled import compile_query
from repro.cq.query import ConjunctiveQuery, check_compatible
from repro.treewidth.dp import solve_by_treewidth
from repro.treewidth.exact import exact_treewidth
from repro.treewidth.heuristics import decompose, treewidth_upper_bound

__all__ = [
    "query_treewidth",
    "query_treewidth_upper_bound",
    "is_acyclic_width",
    "contains_bounded_width",
]


def query_treewidth(query: ConjunctiveQuery) -> int:
    """Exact treewidth of the query's canonical database.

    Exponential in the number of variables (exact treewidth is NP-hard);
    use :func:`query_treewidth_upper_bound` for large queries.  Unary
    distinguished markers never increase the width, so the measure equals
    the Gaifman treewidth of the body.
    """
    return exact_treewidth(compile_query(query).canonical)


def query_treewidth_upper_bound(query: ConjunctiveQuery) -> int:
    """Greedy (min-fill) upper bound on the query treewidth."""
    return treewidth_upper_bound(compile_query(query).canonical)


def is_acyclic_width(query: ConjunctiveQuery) -> bool:
    """Whether the query has treewidth ≤ 1 (tree-shaped joins).

    Width-1 queries correspond to the acyclic queries of Yannakakis that
    the paper's introduction recalls as the earliest tractable case.
    """
    return query_treewidth(query) <= 1


def contains_bounded_width(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, *, engine: str | None = None
) -> bool:
    """Decide ``Q1 ⊆ Q2`` via the treewidth DP on ``D_{Q2}``.

    Polynomial whenever ``Q2`` has bounded treewidth (Theorem 5.4 applied
    to the containment instance); always correct (the DP is exact at any
    width, just exponential in it).  The canonical databases come from the
    compiled query plane, so repeated probes reuse one build; ``engine``
    selects the compiled or legacy DP.
    """
    check_compatible(q1, q2)
    union = q1.vocabulary.union(q2.vocabulary)
    source = compile_query(q2).canonical_for(union)
    target = compile_query(q1).canonical_for(union)
    decomposition = decompose(source)
    return (
        solve_by_treewidth(source, target, decomposition, engine=engine)
        is not None
    )
