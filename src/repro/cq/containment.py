"""Conjunctive-query containment via Chandra–Merlin (Theorem 2.1).

``Q1 ⊆ Q2`` (every database D has Q1(D) ⊆ Q2(D)) holds iff there is a
homomorphism ``D_{Q2} → D_{Q1}`` mapping distinguished variables to the
corresponding distinguished variables — which the unary marker predicates of
the canonical databases enforce automatically.  Theorem 2.1 also gives the
evaluation characterization (``(X1,…,Xn) ∈ Q2(D_{Q1})``), implemented as an
independent second route for cross-checking.

The general problem is NP-complete [CM77]; the paper's polynomial special
cases — Saraiya's two-atom class (Proposition 3.6, via Booleanization) and
bounded-width queries (Section 5) — are first-class *routes* here:
:func:`plan_containment` picks per pair between the bijunctive path, the
treewidth DP on ``D_{Q2}``, and the general kernel search, and the batch
layer (:func:`containment_matrix` / :func:`equivalence_classes`) classifies
whole query sets with fingerprint-deduped compilations over one shared
union vocabulary.

Every entry point runs on the compiled query plane by default — canonical
databases come from :class:`repro.cq.compiled.CompiledQuery` (built once
per query per vocabulary, kernel compilation memoized on the structure) —
with ``engine="legacy"`` reproducing the original rebuild-per-probe path
as the parity oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.cq.canonical import body_structure, canonical_database
from repro.cq.compiled import CompiledQuery, compile_query
from repro.cq.evaluation import evaluate
from repro.cq.query import ConjunctiveQuery, check_compatible
from repro.cq.saraiya import contains_two_atom_structures
from repro.kernel.compile import compile_target
from repro.kernel.engine import LEGACY, resolve_engine
from repro.kernel.estimate import estimate_cost, plan_instance
from repro.structures.homomorphism import find_homomorphism
from repro.structures.structure import Structure

__all__ = [
    "ContainmentPlan",
    "check_compatible",
    "containment_matrix",
    "containment_witness",
    "contains",
    "contains_via_evaluation",
    "equivalence_classes",
    "equivalent",
    "plan_containment",
]

Element = Hashable

#: Width (of a greedy decomposition of ``D_{Q2}``) up to which the
#: treewidth DP route is considered for a containment pair.
DEFAULT_CONTAINMENT_WIDTH = 3

#: Search-cost estimate below which the planner always picks the kernel
#: search: at that size the bitset search finishes in microseconds, and
#: every island pays more in setup (decomposition, Booleanization) than
#: the whole solve — the batch matrix over small queries lives here.
SEARCH_FAST_PATH = 1_500.0

#: Search-cost estimate above which a two-atom ``Q1`` is routed through
#: Saraiya's quadratic bijunctive path instead of the NP search — the
#: polynomial guard, mirroring how the instance planner treats the
#: pebble route (cheap instances never pay the Booleanization setup).
SARAIYA_COST_CAP = 6_000.0


def _union_pair(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> tuple[CompiledQuery, CompiledQuery, Structure, Structure]:
    """Compiled queries plus (source, target) of the containment instance.

    The instance for ``Q1 ⊆ Q2`` is the homomorphism problem
    ``D_{Q2} → D_{Q1}`` over the union of the two body vocabularies.
    """
    cq1 = compile_query(q1)
    cq2 = compile_query(q2)
    union = q1.vocabulary.union(q2.vocabulary)
    return cq1, cq2, cq2.canonical_for(union), cq1.canonical_for(union)


def containment_witness(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, *, engine: str | None = None
) -> dict[Element, Element] | None:
    """The containment homomorphism ``D_{Q2} → D_{Q1}``, or ``None``.

    A witness maps every variable of ``q2`` to a variable of ``q1`` such
    that subgoals of ``q2`` become subgoals of ``q1`` and distinguished
    variables correspond positionally.  Both engines return the same
    witness; the legacy path rebuilds the canonical databases per probe.
    """
    check_compatible(q1, q2)
    if resolve_engine(engine) == LEGACY:
        union = q1.vocabulary.union(q2.vocabulary)
        d1 = canonical_database(q1, union)
        d2 = canonical_database(q2, union)
        return find_homomorphism(d2, d1, engine=LEGACY)
    _cq1, _cq2, source, target = _union_pair(q1, q2)
    return find_homomorphism(source, target)


def contains(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    *,
    engine: str | None = None,
    plan: bool = False,
) -> bool:
    """Decide ``Q1 ⊆ Q2`` (the paper's containment direction).

    Equivalent formulations (Theorem 2.1): there is a homomorphism
    ``D_{Q2} → D_{Q1}``, and the distinguished tuple of ``Q1`` is an answer
    of ``Q2`` on ``D_{Q1}``.  With ``plan=True`` the pair is routed by
    :func:`plan_containment` (Saraiya / treewidth DP / search) instead of
    going straight to the kernel search; every route is exact.
    """
    check_compatible(q1, q2)
    if resolve_engine(engine) == LEGACY:
        return containment_witness(q1, q2, engine=LEGACY) is not None
    _cq1, _cq2, source, target = _union_pair(q1, q2)
    if plan:
        decision = _plan_structures(q1, source, target)
        return _contains_instance(source, target, decision.route)
    return find_homomorphism(source, target) is not None


def contains_via_evaluation(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, *, engine: str | None = None
) -> bool:
    """Decide ``Q1 ⊆ Q2`` by evaluating Q2 on the canonical database of Q1.

    The second bullet of Theorem 2.1: ``(X1, …, Xn) ∈ Q2(D_{Q1})`` where
    ``(X1, …, Xn)`` are Q1's distinguished variables.  This route exists to
    cross-check :func:`contains`; both must always agree.
    """
    check_compatible(q1, q2)
    union = q1.vocabulary.union(q2.vocabulary)
    if resolve_engine(engine) == LEGACY:
        database: Structure = body_structure(q1, union)
    else:
        database = compile_query(q1).body_for(union)
    answers = evaluate(q2, database, engine=engine)
    return tuple(q1.head_variables) in answers


def equivalent(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, *, engine: str | None = None
) -> bool:
    """Query equivalence: containment in both directions."""
    return contains(q1, q2, engine=engine) and contains(q2, q1, engine=engine)


# ---------------------------------------------------------------------------
# The query-level containment planner
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ContainmentPlan:
    """One containment pair's routing decision plus the signals behind it.

    ``route`` is ``"saraiya"`` (Booleanize → bijunctive, Proposition 3.6),
    ``"dp"`` (treewidth DP on ``D_{Q2}``, Theorem 5.4 applied to the
    containment instance), or ``"search"`` (general kernel search).
    ``saraiya_eligible`` records whether ``Q1`` is in the two-atom class
    regardless of which route won; ``width`` is the greedy width estimate
    of ``D_{Q2}`` when one was computed.  Every route decides the pair
    exactly — the plan is about cost, never about correctness.
    """

    route: str
    saraiya_eligible: bool
    search_cost: float
    dp_cost: float | None
    width: int | None

    def as_dict(self) -> dict:
        """A JSON-friendly view for benchmarks and service stats."""
        return {
            "route": self.route,
            "saraiya_eligible": self.saraiya_eligible,
            "search_cost": self.search_cost,
            "dp_cost": self.dp_cost,
            "width": self.width,
        }


def _plan_structures(
    q1: ConjunctiveQuery,
    source: Structure,
    target: Structure,
    width_threshold: int = DEFAULT_CONTAINMENT_WIDTH,
) -> ContainmentPlan:
    """Route one compiled containment instance (see :func:`plan_containment`)."""
    saraiya_eligible = q1.is_two_atom
    ctarget = compile_target(target)
    search_cost = estimate_cost(source, target, ctarget=ctarget)
    if search_cost <= SEARCH_FAST_PATH:
        # Below the fast-path floor the full planner is pure overhead:
        # skip the width estimate entirely and search.
        return ContainmentPlan(
            route="search",
            saraiya_eligible=saraiya_eligible,
            search_cost=search_cost,
            dp_cost=None,
            width=None,
        )
    base = plan_instance(
        source,
        target,
        ctarget=ctarget,
        width_threshold=width_threshold,
        allow_pebble=False,
    )
    if base.route == "dp":
        route = "dp"
    elif saraiya_eligible and base.search_cost > SARAIYA_COST_CAP:
        route = "saraiya"
    else:
        route = "search"
    return ContainmentPlan(
        route=route,
        saraiya_eligible=saraiya_eligible,
        search_cost=base.search_cost,
        dp_cost=base.dp_cost,
        width=base.width,
    )


def plan_containment(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    *,
    width_threshold: int = DEFAULT_CONTAINMENT_WIDTH,
) -> ContainmentPlan:
    """Choose the containment algorithm for ``Q1 ⊆ Q2``.

    The query-level mirror of :func:`repro.kernel.estimate.plan_instance`,
    over the paper's tractable-containment map:

    1. **dp** when ``D_{Q2}`` (the homomorphism *source*) has a greedy
       width within ``width_threshold`` and the Theorem 5.4 table bound
       beats the search estimate — the Section 5 island;
    2. **saraiya** when ``Q1`` is a two-atom query and the search estimate
       exceeds :data:`SARAIYA_COST_CAP` — the Proposition 3.6 island,
       guarding against exponential search with the quadratic
       Booleanization pipeline;
    3. **search** otherwise — the NP baseline on the compiled kernel.
    """
    check_compatible(q1, q2)
    _cq1, _cq2, source, target = _union_pair(q1, q2)
    return _plan_structures(q1, source, target, width_threshold)


def _contains_instance(
    source: Structure, target: Structure, route: str
) -> bool:
    """Decide one compiled containment instance along ``route``."""
    if route == "saraiya":
        return contains_two_atom_structures(source, target)
    if route == "dp":
        from repro.kernel.decomp import solve_decomposition
        from repro.treewidth.heuristics import cached_decomposition

        return (
            solve_decomposition(source, target, cached_decomposition(source))
            is not None
        )
    return find_homomorphism(source, target) is not None


# ---------------------------------------------------------------------------
# The batch layer
# ---------------------------------------------------------------------------

def containment_matrix(
    queries: Sequence[ConjunctiveQuery] | Iterable[ConjunctiveQuery],
    *,
    engine: str | None = None,
    width_threshold: int = DEFAULT_CONTAINMENT_WIDTH,
    plan: bool = True,
) -> list[list[bool]]:
    """The full containment relation: ``matrix[i][j]`` iff ``Qi ⊆ Qj``.

    The batch entry point of the query plane.  On the kernel engine the
    queries are deduplicated by :func:`repro.cq.compiled.query_fingerprint`
    before anything is compiled, every canonical database is built once
    over the *shared* union vocabulary of the whole batch (widening with
    empty relations never changes a containment verdict), and each of the
    ``k·(k-1)`` distinct ordered pairs is routed by the containment
    planner (``plan=False`` forces the plain kernel search).  Diagonal
    entries are ``True`` by reflexivity.

    ``engine="legacy"`` is the parity oracle: the pairwise loop of
    one-shot :func:`contains` calls, rebuilding both canonical databases
    per probe.  Both engines return the identical matrix.

    All queries must share one head arity (:class:`VocabularyError`
    otherwise), and their body vocabularies must agree on arities.
    """
    queries = list(queries)
    if not queries:
        return []
    for query in queries[1:]:
        check_compatible(queries[0], query)
    if resolve_engine(engine) == LEGACY:
        return [
            [contains(qi, qj, engine=LEGACY) for qj in queries]
            for qi in queries
        ]

    compiled = [compile_query(query) for query in queries]
    slots: list[int] = []
    unique: dict[str, int] = {}
    representatives: list[CompiledQuery] = []
    for cq in compiled:
        slot = unique.get(cq.fingerprint)
        if slot is None:
            slot = len(representatives)
            unique[cq.fingerprint] = slot
            representatives.append(cq)
        slots.append(slot)

    union = representatives[0].query.vocabulary
    for cq in representatives[1:]:
        union = union.union(cq.query.vocabulary)
    canonicals = [cq.canonical_for(union) for cq in representatives]

    k = len(representatives)
    cells = [[True] * k for _ in range(k)]
    for i in range(k):
        target = canonicals[i]
        for j in range(k):
            if i == j:
                continue
            # Qi ⊆ Qj is the homomorphism instance D_{Qj} → D_{Qi}.
            source = canonicals[j]
            if plan:
                decision = _plan_structures(
                    representatives[i].query, source, target, width_threshold
                )
                cells[i][j] = _contains_instance(
                    source, target, decision.route
                )
            else:
                cells[i][j] = find_homomorphism(source, target) is not None
    return [
        [cells[slots[i]][slots[j]] for j in range(len(queries))]
        for i in range(len(queries))
    ]


def equivalence_classes(
    queries: Sequence[ConjunctiveQuery] | Iterable[ConjunctiveQuery],
    *,
    engine: str | None = None,
    width_threshold: int = DEFAULT_CONTAINMENT_WIDTH,
) -> list[list[int]]:
    """Group query indices by equivalence (mutual containment).

    Containment is a preorder, so mutual containment is an equivalence
    relation; the classes come back as index lists in first-seen order,
    each class ordered by input position.  Built on
    :func:`containment_matrix`, so the batch dedup/compile sharing (and
    the ``engine`` parity oracle) apply unchanged.
    """
    queries = list(queries)
    matrix = containment_matrix(
        queries, engine=engine, width_threshold=width_threshold
    )
    classes: list[list[int]] = []
    leaders: list[int] = []
    for index in range(len(queries)):
        for leader, members in zip(leaders, classes):
            if matrix[index][leader] and matrix[leader][index]:
                members.append(index)
                break
        else:
            leaders.append(index)
            classes.append([index])
    return classes
