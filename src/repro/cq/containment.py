"""Conjunctive-query containment via Chandra–Merlin (Theorem 2.1).

``Q1 ⊆ Q2`` (every database D has Q1(D) ⊆ Q2(D)) holds iff there is a
homomorphism ``D_{Q2} → D_{Q1}`` mapping distinguished variables to the
corresponding distinguished variables — which the unary marker predicates of
the canonical databases enforce automatically.  Theorem 2.1 also gives the
evaluation characterization (``(X1,…,Xn) ∈ Q2(D_{Q1})``), implemented as an
independent second route for cross-checking.

The general problem is NP-complete [CM77]; the polynomial special cases of
the paper live in :mod:`repro.cq.saraiya` (two-atom queries, via
Booleanization) and :mod:`repro.treewidth` (bounded-treewidth queries).
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.canonical import (
    body_structure,
    canonical_database,
)
from repro.cq.evaluation import evaluate
from repro.cq.query import ConjunctiveQuery
from repro.exceptions import VocabularyError
from repro.structures.homomorphism import find_homomorphism
from repro.structures.structure import Structure

__all__ = [
    "containment_witness",
    "contains",
    "contains_via_evaluation",
    "equivalent",
]

Element = Hashable


def _check_compatible(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> None:
    if q1.arity != q2.arity:
        raise VocabularyError(
            f"containment needs equal arities; got {q1.arity} and {q2.arity}"
        )


def containment_witness(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> dict[Element, Element] | None:
    """The containment homomorphism ``D_{Q2} → D_{Q1}``, or ``None``.

    A witness maps every variable of ``q2`` to a variable of ``q1`` such
    that subgoals of ``q2`` become subgoals of ``q1`` and distinguished
    variables correspond positionally.
    """
    _check_compatible(q1, q2)
    union = q1.vocabulary.union(q2.vocabulary)
    d1 = canonical_database(q1, union)
    d2 = canonical_database(q2, union)
    return find_homomorphism(d2, d1)


def contains(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ⊆ Q2`` (the paper's containment direction).

    Equivalent formulations (Theorem 2.1): there is a homomorphism
    ``D_{Q2} → D_{Q1}``, and the distinguished tuple of ``Q1`` is an answer
    of ``Q2`` on ``D_{Q1}``.
    """
    return containment_witness(q1, q2) is not None


def contains_via_evaluation(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> bool:
    """Decide ``Q1 ⊆ Q2`` by evaluating Q2 on the canonical database of Q1.

    The second bullet of Theorem 2.1: ``(X1, …, Xn) ∈ Q2(D_{Q1})`` where
    ``(X1, …, Xn)`` are Q1's distinguished variables.  This route exists to
    cross-check :func:`contains`; both must always agree.
    """
    _check_compatible(q1, q2)
    union = q1.vocabulary.union(q2.vocabulary)
    database: Structure = body_structure(q1, union)
    answers = evaluate(q2, database)
    return tuple(q1.head_variables) in answers


def equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Query equivalence: containment in both directions."""
    return contains(q1, q2) and contains(q2, q1)
