"""Conjunctive queries (Section 2 of the paper).

A conjunctive query is a positive existential first-order formula whose only
connective is conjunction, written in rule form::

    Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)

The head variables are the *distinguished* variables; all body variables not
in the head are existentially quantified.  This module defines the query AST;
parsing lives in :mod:`repro.cq.parser`, canonical databases in
:mod:`repro.cq.canonical`, and the Chandra–Merlin containment test in
:mod:`repro.cq.containment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import ParseError, VocabularyError
from repro.structures.vocabulary import Vocabulary

__all__ = ["Atom", "ConjunctiveQuery", "check_compatible"]

Variable = str


@dataclass(frozen=True, order=True)
class Atom:
    """One subgoal ``R(t₁, …, t_r)`` of a query body.

    Terms are variables (strings); the paper's queries are constant-free.
    """

    relation: str
    terms: tuple[Variable, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise ParseError("atom needs a relation name")
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.terms)})"


class ConjunctiveQuery:
    """An n-ary conjunctive query in rule form.

    Parameters
    ----------
    head_variables:
        The tuple of distinguished variables, in order.  Repetitions are
        allowed (``Q(X, X) :- …``).
    atoms:
        The body subgoals.  A relation name must be used with a single
        arity across the body.
    name:
        The head predicate name (cosmetic; containment ignores it).
    """

    __slots__ = ("_name", "_head", "_atoms", "_vocabulary", "_compiled")

    def __init__(
        self,
        head_variables: Iterable[Variable],
        atoms: Iterable[Atom | tuple[str, tuple[Variable, ...]]],
        name: str = "Q",
    ) -> None:
        head = tuple(head_variables)
        normalized: list[Atom] = []
        for atom in atoms:
            if not isinstance(atom, Atom):
                relation, terms = atom
                atom = Atom(relation, tuple(terms))
            normalized.append(atom)
        arities: dict[str, int] = {}
        for atom in normalized:
            existing = arities.get(atom.relation)
            if existing is not None and existing != atom.arity:
                raise VocabularyError(
                    f"relation {atom.relation!r} used with arities "
                    f"{existing} and {atom.arity}"
                )
            arities[atom.relation] = atom.arity
        self._name = name
        self._head = head
        # Duplicate subgoals are semantically irrelevant; dropping them also
        # makes equality insensitive to body order and repetition.
        self._atoms = tuple(sorted(set(normalized)))
        self._vocabulary = Vocabulary.from_arities(arities)
        #: Memo for repro.cq.compiled.compile_query.
        self._compiled: object | None = None

    # -- accessors -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        return self._head

    @property
    def arity(self) -> int:
        """The arity of the query (number of head positions)."""
        return len(self._head)

    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self._atoms

    @property
    def vocabulary(self) -> Vocabulary:
        """The body vocabulary (extensional database predicates)."""
        return self._vocabulary

    @property
    def variables(self) -> frozenset[Variable]:
        """All variables: head variables plus body variables."""
        names = set(self._head)
        for atom in self._atoms:
            names.update(atom.terms)
        return frozenset(names)

    @property
    def existential_variables(self) -> frozenset[Variable]:
        """Body variables that are not distinguished."""
        return self.variables - set(self._head)

    @property
    def is_boolean(self) -> bool:
        """True for 0-ary queries (sentence queries ``Q :- body``)."""
        return not self._head

    # -- derived metrics ---------------------------------------------------------

    def occurrence_counts(self) -> dict[str, int]:
        """How many body atoms use each relation name.

        Saraiya's tractable class (Proposition 3.6) is the queries where
        every count is at most 2 — see :meth:`is_two_atom`.
        """
        counts: dict[str, int] = {}
        for atom in self._atoms:
            counts[atom.relation] = counts.get(atom.relation, 0) + 1
        return counts

    @property
    def is_two_atom(self) -> bool:
        """Every database predicate occurs at most twice in the body."""
        return all(count <= 2 for count in self.occurrence_counts().values())

    @property
    def size(self) -> int:
        """Encoding size: head width plus total body cells."""
        return len(self._head) + sum(atom.arity + 1 for atom in self._atoms)

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the query's content, not the compiled-artifact memo.

        Mirrors ``Structure.__getstate__``: the ``_compiled`` memo holds
        the full :class:`repro.cq.compiled.CompiledQuery` (canonical
        databases included), which receivers rebuild — or re-attach, when
        the artifact itself is what is being unpickled — through their
        own caches.
        """
        return {
            "_name": self._name,
            "_head": self._head,
            "_atoms": self._atoms,
            "_vocabulary": self._vocabulary,
        }

    def __setstate__(self, state: dict) -> None:
        self._name = state["_name"]
        self._head = state["_head"]
        self._atoms = state["_atoms"]
        self._vocabulary = state["_vocabulary"]
        self._compiled = None

    # -- protocol ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._head == other._head and self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash((self._head, self._atoms))

    def __str__(self) -> str:
        head = f"{self._name}({', '.join(self._head)})"
        if not self._atoms:
            return f"{head} :- ."
        body = ", ".join(str(atom) for atom in self._atoms)
        return f"{head} :- {body}."

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({str(self)!r})"

    # -- renaming ----------------------------------------------------------------

    def rename_variables(self, mapping: dict[Variable, Variable]) -> "ConjunctiveQuery":
        """Apply an injective variable renaming."""
        image = [mapping.get(v, v) for v in self.variables]
        if len(set(image)) != len(image):
            raise VocabularyError("variable renaming must be injective")
        return ConjunctiveQuery(
            (mapping.get(v, v) for v in self._head),
            (
                Atom(a.relation, tuple(mapping.get(t, t) for t in a.terms))
                for a in self._atoms
            ),
            self._name,
        )


def check_compatible(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> None:
    """Raise :class:`VocabularyError` unless the two queries are comparable.

    Containment (and equivalence) only makes sense between queries of the
    same arity — the distinguished tuples must correspond positionally.
    Shared by the general containment test, Saraiya's two-atom algorithm,
    and the bounded-width route.
    """
    if q1.arity != q2.arity:
        raise VocabularyError(
            f"containment needs equal arities; got {q1.arity} and {q2.arity}"
        )
