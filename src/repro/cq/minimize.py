"""Conjunctive-query minimization via cores.

Chandra–Merlin: every conjunctive query has a unique (up to variable
renaming) minimal equivalent query, obtained as the *core* of its canonical
database.  Minimization is the classical application of the containment
machinery — it is how query optimizers remove redundant joins.

Two implementations are provided and cross-checked:

* :func:`minimize` — computes the core of the canonical database (markers
  included, so distinguished variables are pinned) and reads the query back;
* :func:`minimize_by_atom_removal` — greedily drops body atoms while the
  result stays equivalent to the original.
"""

from __future__ import annotations

from repro.cq.canonical import (
    DISTINGUISHED_PREFIX,
    canonical_database,
)
from repro.cq.containment import equivalent
from repro.cq.query import Atom, ConjunctiveQuery
from repro.structures.product import core

__all__ = ["minimize", "minimize_by_atom_removal", "is_minimal"]


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The minimal equivalent query, via the core of ``D_Q``.

    The unary distinguished markers make the head variables rigid: every
    retraction fixes them, so the core's marker facts still identify the
    head.  Body atoms are read back from the core's non-marker facts.
    """
    database = canonical_database(query)
    minimal = core(database)
    head = list(query.head_variables)
    atoms = [
        Atom(name, fact)
        for name, fact in minimal.facts()
        if not name.startswith(DISTINGUISHED_PREFIX)
    ]
    return ConjunctiveQuery(head, atoms, query.name)


def minimize_by_atom_removal(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Greedy minimization: drop atoms while equivalence is preserved.

    Independent of :func:`minimize`; by the uniqueness of minimal
    conjunctive queries both return queries with the same number of atoms.
    """
    atoms = list(query.atoms)
    changed = True
    while changed:
        changed = False
        for index in range(len(atoms)):
            candidate_atoms = atoms[:index] + atoms[index + 1 :]
            candidate = ConjunctiveQuery(
                query.head_variables, candidate_atoms, query.name
            )
            if equivalent(candidate, query):
                atoms = candidate_atoms
                changed = True
                break
    return ConjunctiveQuery(query.head_variables, atoms, query.name)


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True when no single body atom can be dropped."""
    for index in range(len(query.atoms)):
        candidate = ConjunctiveQuery(
            query.head_variables,
            query.atoms[:index] + query.atoms[index + 1 :],
            query.name,
        )
        if equivalent(candidate, query):
            return False
    return True
