"""Conjunctive-query minimization via cores.

Chandra–Merlin: every conjunctive query has a unique (up to variable
renaming) minimal equivalent query, obtained as the *core* of its canonical
database.  Minimization is the classical application of the containment
machinery — it is how query optimizers remove redundant joins.

Two implementations are provided and cross-checked:

* :func:`minimize` — computes the core of the canonical database (markers
  included, so distinguished variables are pinned) and reads the query back;
* :func:`minimize_by_atom_removal` — greedily drops body atoms while the
  result stays equivalent to the original.

Both run on the compiled query plane by default: the canonical database
comes from the memoized :class:`repro.cq.compiled.CompiledQuery`, the core
from the kernel's masked endomorphism search
(:mod:`repro.kernel.corek`), and the minimized query is memoized on the
compiled artifact — repeated minimization of a hot query is free.
``engine="legacy"`` reproduces the original rebuild-per-call path as the
parity oracle; both engines return the identical minimized query.
"""

from __future__ import annotations

from repro.cq.canonical import (
    DISTINGUISHED_PREFIX,
    canonical_database,
)
from repro.cq.compiled import compile_query
from repro.cq.containment import equivalent
from repro.cq.query import Atom, ConjunctiveQuery
from repro.kernel.engine import LEGACY, resolve_engine
from repro.structures.product import core

__all__ = ["minimize", "minimize_by_atom_removal", "is_minimal"]


def minimize(
    query: ConjunctiveQuery, *, engine: str | None = None
) -> ConjunctiveQuery:
    """The minimal equivalent query, via the core of ``D_Q``.

    The unary distinguished markers make the head variables rigid: every
    retraction fixes them, so the core's marker facts still identify the
    head.  Body atoms are read back from the core's non-marker facts.
    """
    engine = resolve_engine(engine)
    if engine == LEGACY:
        database = canonical_database(query)
    else:
        compiled = compile_query(query)
        if compiled._minimized is not None:
            return compiled._minimized
        database = compiled.canonical
    minimal = core(database, engine=engine)
    head = list(query.head_variables)
    atoms = [
        Atom(name, fact)
        for name, fact in minimal.facts()
        if not name.startswith(DISTINGUISHED_PREFIX)
    ]
    result = ConjunctiveQuery(head, atoms, query.name)
    if engine != LEGACY:
        compiled._minimized = result
    return result


def minimize_by_atom_removal(
    query: ConjunctiveQuery, *, engine: str | None = None
) -> ConjunctiveQuery:
    """Greedy minimization: drop atoms while equivalence is preserved.

    Independent of :func:`minimize`; by the uniqueness of minimal
    conjunctive queries both return queries with the same number of atoms.
    """
    atoms = list(query.atoms)
    changed = True
    while changed:
        changed = False
        for index in range(len(atoms)):
            candidate_atoms = atoms[:index] + atoms[index + 1 :]
            candidate = ConjunctiveQuery(
                query.head_variables, candidate_atoms, query.name
            )
            if equivalent(candidate, query, engine=engine):
                atoms = candidate_atoms
                changed = True
                break
    return ConjunctiveQuery(query.head_variables, atoms, query.name)


def is_minimal(
    query: ConjunctiveQuery, *, engine: str | None = None
) -> bool:
    """True when no single body atom can be dropped."""
    for index in range(len(query.atoms)):
        candidate = ConjunctiveQuery(
            query.head_variables,
            query.atoms[:index] + query.atoms[index + 1 :],
            query.name,
        )
        if equivalent(candidate, query, engine=engine):
            return False
    return True
