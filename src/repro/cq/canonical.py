"""Canonical databases and the query↔structure correspondence (Section 2).

The *canonical database* ``D_Q`` of a query ``Q`` treats each variable as a
distinct element, each subgoal as a fact, and adds one fresh unary predicate
``P_i`` per distinguished variable ``X_i`` holding exactly ``{X_i}``.  In the
other direction, every structure ``A`` yields the Boolean query ``Q_A`` whose
body conjoins all facts of ``A`` with every element read as an existential
variable.  Theorem 2.1 (Chandra–Merlin) then identifies containment,
evaluation, and homomorphism through these translations.

Distinguished-variable markers use relation names ``@dist0``, ``@dist1``, …
— the ``@`` prefix keeps them out of the way of user relation names.
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import VocabularyError
from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary

__all__ = [
    "DISTINGUISHED_PREFIX",
    "distinguished_marker",
    "canonical_database",
    "body_structure",
    "canonical_query",
    "query_of_structure",
]

Element = Hashable

DISTINGUISHED_PREFIX = "@dist"


def distinguished_marker(index: int) -> RelationSymbol:
    """The unary marker predicate ``P_i`` for head position ``index``."""
    return RelationSymbol(f"{DISTINGUISHED_PREFIX}{index}", 1)


def _marker_vocabulary(arity: int) -> Vocabulary:
    return Vocabulary(distinguished_marker(i) for i in range(arity))


def body_structure(
    query: ConjunctiveQuery, vocabulary: Vocabulary | None = None
) -> Structure:
    """The structure of the query body alone (no distinguished markers).

    Used for query evaluation: the answers to ``Q`` over ``D`` are the
    projections onto the head variables of the homomorphisms from this
    structure into ``D``.  ``vocabulary`` may widen the signature so two
    structures can be compared.
    """
    vocabulary = (
        query.vocabulary if vocabulary is None
        else query.vocabulary.union(vocabulary)
    )
    relations: dict[str, set[tuple[Element, ...]]] = {}
    for atom in query.atoms:
        relations.setdefault(atom.relation, set()).add(atom.terms)
    return Structure(vocabulary, query.variables, relations)


def canonical_database(
    query: ConjunctiveQuery, vocabulary: Vocabulary | None = None
) -> Structure:
    """The canonical database ``D_Q`` including distinguished markers.

    ``vocabulary`` may widen the body signature (markers are always added
    on top).  Containment of two queries compares their canonical
    databases over the *union* of their body vocabularies.
    """
    body = body_structure(query, vocabulary)
    full_vocabulary = body.vocabulary.union(
        _marker_vocabulary(query.arity)
    )
    relations = {
        symbol.name: set(rel) for symbol, rel in body.relations()
    }
    for index, variable in enumerate(query.head_variables):
        marker = distinguished_marker(index)
        relations.setdefault(marker.name, set()).add((variable,))
    return Structure(full_vocabulary, body.universe, relations)


def canonical_query(
    structure: Structure, head_variables: tuple[Element, ...] = ()
) -> ConjunctiveQuery:
    """A conjunctive query whose body conjoins all facts of ``structure``.

    Elements become variables named ``v«i»`` in sorted-universe order;
    ``head_variables`` (a tuple of *elements*) become the distinguished
    variables.  With an empty head this is the Boolean query ``Q_A`` of
    Section 2 — the bridge showing that the homomorphism problem reduces
    to conjunctive-query containment (``A → B`` iff ``Q_B ⊆ Q_A``).
    """
    order = structure.sorted_universe
    names = {element: f"v{i}" for i, element in enumerate(order)}
    for element in head_variables:
        if element not in names:
            raise VocabularyError(
                f"head element {element!r} not in the structure"
            )
    atoms = [
        Atom(name, tuple(names[e] for e in fact))
        for name, fact in structure.facts()
    ]
    return ConjunctiveQuery(
        (names[e] for e in head_variables), atoms
    )


def query_of_structure(structure: Structure) -> ConjunctiveQuery:
    """Alias for the Boolean canonical query ``Q_A`` (no head variables)."""
    return canonical_query(structure, ())
