"""Conjunctive queries: containment, evaluation, minimization (Section 2).

The Chandra–Merlin triangle — containment ⇔ evaluation ⇔ homomorphism —
plus Saraiya's polynomial two-atom case via Booleanization (Section 3.2).
"""

from repro.cq.canonical import (
    DISTINGUISHED_PREFIX,
    body_structure,
    canonical_database,
    canonical_query,
    distinguished_marker,
    query_of_structure,
)
from repro.cq.compiled import CompiledQuery, compile_query, query_fingerprint
from repro.cq.containment import (
    ContainmentPlan,
    containment_matrix,
    containment_witness,
    contains,
    contains_via_evaluation,
    equivalence_classes,
    equivalent,
    plan_containment,
)
from repro.cq.evaluation import evaluate, evaluate_join, holds
from repro.cq.minimize import is_minimal, minimize, minimize_by_atom_removal
from repro.cq.parser import parse_atom_list, parse_query
from repro.cq.query import Atom, ConjunctiveQuery, check_compatible
from repro.cq.acyclic import (
    gyo_join_tree,
    is_alpha_acyclic,
    yannakakis_holds,
)
from repro.cq.saraiya import (
    contains_two_atom_structures,
    is_two_atom_instance,
    two_atom_contains,
)
from repro.cq.width import (
    contains_bounded_width,
    is_acyclic_width,
    query_treewidth,
    query_treewidth_upper_bound,
)

__all__ = [
    "Atom",
    "CompiledQuery",
    "ConjunctiveQuery",
    "ContainmentPlan",
    "check_compatible",
    "compile_query",
    "query_fingerprint",
    "parse_query",
    "parse_atom_list",
    "canonical_database",
    "canonical_query",
    "body_structure",
    "query_of_structure",
    "distinguished_marker",
    "DISTINGUISHED_PREFIX",
    "contains",
    "contains_via_evaluation",
    "containment_matrix",
    "containment_witness",
    "equivalence_classes",
    "equivalent",
    "plan_containment",
    "evaluate",
    "evaluate_join",
    "holds",
    "minimize",
    "minimize_by_atom_removal",
    "is_minimal",
    "contains_two_atom_structures",
    "is_two_atom_instance",
    "two_atom_contains",
    "query_treewidth",
    "query_treewidth_upper_bound",
    "is_acyclic_width",
    "contains_bounded_width",
    "gyo_join_tree",
    "is_alpha_acyclic",
    "yannakakis_holds",
]
