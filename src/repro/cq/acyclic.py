"""Acyclic conjunctive queries: GYO reduction and Yannakakis evaluation.

The paper's introduction traces the tractable-containment lineage back to
Yannakakis' evaluation of *acyclic* queries — the width-1 end of the
querywidth story.  This module implements the classical toolkit:

* :func:`gyo_join_tree` — the Graham/Yu–Özsoyoğlu ear-removal procedure:
  a query's hypergraph is α-acyclic iff ears can be removed until one
  hyperedge remains; the removal order yields a *join tree*;
* :func:`is_alpha_acyclic` — the acyclicity test;
* :func:`yannakakis_holds` — Boolean-query evaluation by one bottom-up
  semi-join sweep over the join tree, linear in data size for acyclic
  queries; cross-checked in the tests against the general evaluator.

Note α-acyclicity and treewidth 1 are incomparable in general (a triangle
of binary atoms is cyclic both ways, but a single wide atom is α-acyclic
with high treewidth), which is why this module complements
:mod:`repro.cq.width` rather than replacing it.
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import VocabularyError
from repro.structures.structure import Structure

__all__ = ["gyo_join_tree", "is_alpha_acyclic", "yannakakis_holds"]

Element = Hashable


def gyo_join_tree(
    query: ConjunctiveQuery,
) -> list[tuple[int, int | None]] | None:
    """The GYO ear-removal join tree, or ``None`` when the query is cyclic.

    Returns pairs ``(atom index, parent atom index)`` in removal order;
    the last surviving atom is the root with parent ``None``.  An *ear*
    is an atom whose variables shared with any other atom all lie inside
    one single other atom (its witness, which becomes its parent).
    """
    atoms = list(query.atoms)
    if not atoms:
        return []
    alive = set(range(len(atoms)))
    variable_sets = [set(atom.terms) for atom in atoms]
    tree: list[tuple[int, int | None]] = []

    while len(alive) > 1:
        ear = None
        witness = None
        for candidate in sorted(alive):
            others = [i for i in alive if i != candidate]
            shared = variable_sets[candidate] & set().union(
                *(variable_sets[i] for i in others)
            )
            for other in others:
                if shared <= variable_sets[other]:
                    ear, witness = candidate, other
                    break
            if ear is not None:
                break
        if ear is None:
            return None  # no ear: the hypergraph is cyclic
        alive.discard(ear)
        tree.append((ear, witness))
    root = alive.pop()
    tree.append((root, None))
    return tree


def is_alpha_acyclic(query: ConjunctiveQuery) -> bool:
    """α-acyclicity of the query's hypergraph (GYO criterion)."""
    return gyo_join_tree(query) is not None


def _atom_bindings(
    atom: Atom, database: Structure
) -> tuple[tuple[str, ...], set[tuple[Element, ...]]]:
    """Distinct-variable columns and matching rows of one atom."""
    columns: list[str] = []
    for term in atom.terms:
        if term not in columns:
            columns.append(term)
    rows: set[tuple[Element, ...]] = set()
    for fact in database.relation(atom.relation):
        values: dict[str, Element] = {}
        consistent = True
        for term, value in zip(atom.terms, fact):
            if values.setdefault(term, value) != value:
                consistent = False
                break
        if consistent:
            rows.add(tuple(values[c] for c in columns))
    return tuple(columns), rows


def yannakakis_holds(
    query: ConjunctiveQuery, database: Structure
) -> bool:
    """Truth of a Boolean acyclic query by semi-join reduction.

    One bottom-up sweep over the GYO join tree: each ear semi-joins its
    witness (parent keeps only tuples with a matching child tuple; with
    no shared variables the child acts as an emptiness filter).  The
    query holds iff the root relation is non-empty at the end.

    Raises :class:`VocabularyError` for non-Boolean or cyclic queries.
    """
    if not query.is_boolean:
        raise VocabularyError(
            "yannakakis_holds evaluates Boolean queries; project first"
        )
    tree = gyo_join_tree(query)
    if tree is None:
        raise VocabularyError("query is not α-acyclic; use evaluate()")
    if not tree:
        return True  # the empty conjunction
    if not query.vocabulary.issubset(database.vocabulary):
        database = database.with_vocabulary(
            database.vocabulary.union(query.vocabulary)
        )

    atoms = list(query.atoms)
    states = {
        index: _atom_bindings(atom, database)
        for index, atom in enumerate(atoms)
    }

    for child, parent in tree:
        child_columns, child_rows = states[child]
        if parent is None:
            return bool(child_rows)
        parent_columns, parent_rows = states[parent]
        shared = [c for c in parent_columns if c in child_columns]
        child_positions = [child_columns.index(c) for c in shared]
        parent_positions = [parent_columns.index(c) for c in shared]
        child_keys = {
            tuple(row[i] for i in child_positions) for row in child_rows
        }
        reduced = {
            row
            for row in parent_rows
            if tuple(row[i] for i in parent_positions) in child_keys
        }
        states[parent] = (parent_columns, reduced)
    raise AssertionError("join tree must end in a root")  # pragma: no cover
