"""The compiled query artifact: one compilation per query, reused everywhere.

Theorem 2.1 identifies containment, evaluation, and the homomorphism
problem through the canonical database ``D_Q`` — which means every
containment probe, every evaluation, and every minimization step of the
legacy one-shot paths rebuilt the *same* ``D_Q`` (and recompiled it in
the kernel) from scratch.  :class:`CompiledQuery` is the query-plane
analogue of the kernel's structure memos:

* the **body structure** and **canonical database** of the query, built
  once and cached per vocabulary (containment compares two queries over
  the *union* of their vocabularies, so the same query probed against
  many partners reuses one structure per distinct union — and since the
  kernel memoizes its compilation on the structure object, the bitset
  index rides along for free);
* the **query fingerprint** — a stable digest of head and body in the
  style of :func:`repro.structures.fingerprint.canonical_fingerprint`,
  used by the batch layer to dedupe structurally equal queries before
  compiling anything;
* memo slots for derived artifacts (the minimized query), so repeated
  minimization is free.

The artifact is memoized on the (immutable) :class:`ConjunctiveQuery`
itself via :func:`compile_query`, mirroring ``compile_source`` /
``compile_target`` on structures.
"""

from __future__ import annotations

import hashlib

from repro.cq.canonical import body_structure, canonical_database
from repro.cq.query import ConjunctiveQuery
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

__all__ = ["CompiledQuery", "compile_query", "query_fingerprint"]


def _token(text: str) -> bytes:
    return f"{len(text)}:{text}".encode()


def query_fingerprint(query: ConjunctiveQuery) -> str:
    """A stable hex digest identifying ``query`` up to equality.

    Covers the head tuple and the (already deduplicated, sorted) body
    atoms with length-prefixed tokens, so two queries get the same
    fingerprint iff they are equal as queries — same head, same atom
    set — independent of construction order or process.  The head name
    is cosmetic (containment ignores it) and is excluded.
    """
    digest = hashlib.sha256()
    digest.update(b"|head|")
    for variable in query.head_variables:
        digest.update(_token(variable))
    digest.update(b"|body|")
    for atom in query.atoms:
        digest.update(_token(atom.relation))
        for term in atom.terms:
            digest.update(_token(term))
        digest.update(b";")
    return digest.hexdigest()


class CompiledQuery:
    """A query plus every derived structure the query plane needs.

    Attributes
    ----------
    query:
        The query this was compiled from.
    fingerprint:
        :func:`query_fingerprint` of the query, for batch dedup.
    """

    __slots__ = ("query", "fingerprint", "_bodies", "_canonicals", "_minimized")

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        self.fingerprint = query_fingerprint(query)
        #: Per-vocabulary structure caches.  Keys are the (hashable)
        #: vocabularies the query has been compared over; in the common
        #: serving shapes — one query probed against a stable fleet, or a
        #: batch over one shared union — this holds one or two entries.
        self._bodies: dict[Vocabulary, Structure] = {}
        self._canonicals: dict[Vocabulary, Structure] = {}
        #: Memo for repro.cq.minimize.minimize (kernel engine only).
        self._minimized: ConjunctiveQuery | None = None

    def body_for(self, vocabulary: Vocabulary | None = None) -> Structure:
        """The body structure over ``vocabulary`` (default: the query's own).

        The returned structure is cached, so its kernel compilation and
        decomposition memos survive across probes.
        """
        if vocabulary is None:
            vocabulary = self.query.vocabulary
        cached = self._bodies.get(vocabulary)
        if cached is None:
            cached = body_structure(self.query, vocabulary)
            self._bodies[vocabulary] = cached
        return cached

    def canonical_for(self, vocabulary: Vocabulary | None = None) -> Structure:
        """The canonical database ``D_Q`` over ``vocabulary`` (cached).

        Distinguished markers are always included on top of the body
        vocabulary, exactly as :func:`repro.cq.canonical.canonical_database`
        builds them.
        """
        if vocabulary is None:
            vocabulary = self.query.vocabulary
        cached = self._canonicals.get(vocabulary)
        if cached is None:
            cached = canonical_database(self.query, vocabulary)
            self._canonicals[vocabulary] = cached
        return cached

    @property
    def body(self) -> Structure:
        """The body structure over the query's own vocabulary."""
        return self.body_for(None)

    @property
    def canonical(self) -> Structure:
        """The canonical database over the query's own vocabulary."""
        return self.canonical_for(None)

    def __getstate__(self) -> dict:
        """Pickle the artifact whole: query, fingerprint, derived memos.

        The carried query pickles *without* its ``_compiled`` memo (see
        ``ConjunctiveQuery.__getstate__``), breaking the cycle; the
        bodies/canonicals dictionaries carry their structures through
        ``Structure.__getstate__`` — mathematical content plus
        fingerprint, so a restored canonical database still keys into
        the fingerprint-routed caches (and the artifact store) for its
        kernel compilation.  One serializer — plain pickle — covers both
        the pool-payload and store-record paths.
        """
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot in self.__slots__:
            object.__setattr__(self, slot, state[slot])
        # Re-attach as the query's memo: compile_query() on the restored
        # query returns this artifact instead of recompiling, exactly as
        # it would have on the writing process.
        if self.query._compiled is None:
            self.query._compiled = self

    def __repr__(self) -> str:
        return (
            f"CompiledQuery(|head|={self.query.arity}, "
            f"atoms={len(self.query.atoms)}, "
            f"fingerprint={self.fingerprint[:12]}…)"
        )


def compile_query(query: ConjunctiveQuery | CompiledQuery) -> CompiledQuery:
    """Compile ``query`` (idempotent; memoized on the query itself)."""
    if isinstance(query, CompiledQuery):
        return query
    compiled = query._compiled
    if compiled is None:
        compiled = CompiledQuery(query)
        query._compiled = compiled
    return compiled  # type: ignore[return-value]
