"""A small parser for rule-form conjunctive queries.

Grammar (whitespace-insensitive)::

    query  :=  head ":-" body? "."?
    head   :=  NAME "(" vars? ")"  |  NAME        # bare name = Boolean query
    body   :=  atom ("," atom)*
    atom   :=  NAME "(" vars? ")"
    vars   :=  NAME ("," NAME)*

Examples::

    Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).
    Q :- E(X, Y), E(Y, X).

The same tokenizer also serves the Datalog parser in
:mod:`repro.datalog.program`.
"""

from __future__ import annotations

import re

from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import ParseError

__all__ = ["parse_query", "parse_atom_list"]

_NAME = r"[A-Za-z_][A-Za-z0-9_.\[\]|@']*"
_ATOM_RE = re.compile(rf"\s*({_NAME})\s*(?:\(([^()]*)\))?\s*")


def _parse_terms(inner: str, context: str) -> tuple[str, ...]:
    inner = inner.strip()
    if not inner:
        return ()
    terms = []
    for piece in inner.split(","):
        piece = piece.strip()
        if not re.fullmatch(_NAME, piece):
            raise ParseError(f"bad term {piece!r} in {context}")
        terms.append(piece)
    return tuple(terms)


def parse_atom_list(text: str) -> list[Atom]:
    """Parse a comma-separated list of atoms (the body of a rule)."""
    atoms: list[Atom] = []
    position = 0
    text = text.strip()
    if not text:
        return atoms
    while position < len(text):
        match = _ATOM_RE.match(text, position)
        if not match or match.group(2) is None:
            raise ParseError(f"cannot parse atom at: {text[position:]!r}")
        atoms.append(Atom(match.group(1), _parse_terms(match.group(2), text)))
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise ParseError(
                    f"expected ',' between atoms at: {text[position:]!r}"
                )
            position += 1
    return atoms


def parse_query(text: str, name: str | None = None) -> ConjunctiveQuery:
    """Parse a rule-form conjunctive query.

    ``name`` overrides the head predicate name from the text.
    """
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    if ":-" not in text:
        raise ParseError("query must contain ':-'")
    head_text, body_text = text.split(":-", 1)
    match = _ATOM_RE.fullmatch(head_text)
    if not match:
        raise ParseError(f"cannot parse head {head_text!r}")
    head_name = match.group(1)
    head_vars = (
        _parse_terms(match.group(2), head_text)
        if match.group(2) is not None
        else ()
    )
    atoms = parse_atom_list(body_text)
    return ConjunctiveQuery(head_vars, atoms, name or head_name)
