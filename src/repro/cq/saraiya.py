"""Saraiya's tractable case: two-atom query containment (Proposition 3.6).

If every database predicate occurs at most twice in the body of ``Q1``,
then deciding ``Q1 ⊆ Q2`` is polynomial.  The paper derives this through
Booleanization: the containment test is the homomorphism problem
``D_{Q2} → D_{Q1}``, whose *target* has at most two tuples per relation
(markers have exactly one); Booleanizing yields Boolean relations with at
most two tuples — and every Boolean relation with at most two tuples is
bijunctive — so the direct bijunctive algorithm of Theorem 3.4 finishes in
polynomial time.

This module implements exactly that pipeline, plus the recognizer for the
class.  The canonical databases come from the compiled query plane
(:mod:`repro.cq.compiled`), so repeated probes of the same queries reuse
one build; :func:`contains_two_atom_structures` exposes the structure-level
step for the containment planner, which hands it pre-built instances.
"""

from __future__ import annotations

from repro.boolean.booleanize import booleanize
from repro.boolean.direct import solve_bijunctive_csp
from repro.cq.compiled import compile_query
from repro.cq.query import ConjunctiveQuery, check_compatible
from repro.exceptions import NotSchaeferError
from repro.structures.structure import Structure

__all__ = [
    "contains_two_atom_structures",
    "is_two_atom_instance",
    "two_atom_contains",
]


def is_two_atom_instance(q1: ConjunctiveQuery) -> bool:
    """Whether ``q1`` qualifies for Saraiya's algorithm.

    The restriction is on ``Q1`` (the *contained* query) because its
    canonical database is the homomorphism *target*.
    """
    return q1.is_two_atom


def contains_two_atom_structures(source: Structure, target: Structure) -> bool:
    """Decide a containment instance by Booleanization → bijunctive.

    ``source``/``target`` are the canonical databases ``D_{Q2}`` /
    ``D_{Q1}`` of a containment pair whose ``target`` has at most two
    tuples per relation (the two-atom guarantee); the Booleanized target
    relations are then bijunctive (Lemma 3.5) and the Theorem 3.4 direct
    solver decides the instance in polynomial time.
    """
    boolean = booleanize(source, target)
    return solve_bijunctive_csp(boolean.source, boolean.target) is not None


def two_atom_contains(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ⊆ Q2`` for a two-atom ``Q1`` in polynomial time.

    Pipeline: canonical databases → Booleanization (Lemma 3.5) → direct
    bijunctive solver (Theorem 3.4).  Raises :class:`NotSchaeferError`
    when ``q1`` is not a two-atom query (use the general
    :func:`repro.cq.containment.contains` instead).
    """
    if not is_two_atom_instance(q1):
        raise NotSchaeferError(
            "Saraiya's algorithm needs every predicate to occur at most "
            "twice in the body of Q1"
        )
    check_compatible(q1, q2)
    union = q1.vocabulary.union(q2.vocabulary)
    target = compile_query(q1).canonical_for(union)  # ≤ 2 tuples/relation
    source = compile_query(q2).canonical_for(union)
    return contains_two_atom_structures(source, target)
