"""Conjunctive-query evaluation.

Two independent evaluators are provided and cross-checked in the tests:

* :func:`evaluate` — the homomorphism route of Theorem 2.1: answers are the
  projections onto the head variables of the homomorphisms from the query's
  body structure into the database;
* :func:`evaluate_join` — the classical database route: a left-deep plan of
  hash joins over the subgoals followed by a projection (select–project–join
  evaluation, the equivalence the paper's introduction recalls from
  [Ull89/GJC94]).

Both use active-domain semantics for head variables that do not occur in
the body.
"""

from __future__ import annotations

from typing import Hashable

from repro.cq.compiled import compile_query
from repro.cq.query import ConjunctiveQuery
from repro.exceptions import VocabularyError
from repro.structures.homomorphism import all_homomorphisms
from repro.structures.structure import Structure, _sort_key

__all__ = ["evaluate", "evaluate_join", "holds"]

Element = Hashable
Row = tuple[Element, ...]


def _aligned(query: ConjunctiveQuery, database: Structure) -> Structure:
    """The database re-typed over the union vocabulary of query and data."""
    if not query.vocabulary.issubset(database.vocabulary):
        try:
            union = database.vocabulary.union(query.vocabulary)
        except VocabularyError as error:
            raise VocabularyError(
                f"query and database vocabularies clash: {error}"
            ) from error
        return database.with_vocabulary(union)
    return database


def evaluate(
    query: ConjunctiveQuery,
    database: Structure,
    *,
    engine: str | None = None,
) -> set[Row]:
    """All answers of ``query`` on ``database`` via homomorphisms.

    For a Boolean query the result is ``{()}`` (true) or ``set()`` (false).
    The body structure comes from the compiled query artifact
    (:mod:`repro.cq.compiled`), so evaluating the same query repeatedly —
    against one database, or a fleet sharing a vocabulary — reuses one
    build and its kernel compilation; ``engine`` selects the solver for
    the homomorphism enumeration.
    """
    database = _aligned(query, database)
    body = compile_query(query).body_for(database.vocabulary)
    answers: set[Row] = set()
    for hom in all_homomorphisms(body, database, engine=engine):
        answers.add(tuple(hom[v] for v in query.head_variables))
    return answers


def holds(
    query: ConjunctiveQuery,
    database: Structure,
    *,
    engine: str | None = None,
) -> bool:
    """Truth of a Boolean query (or non-emptiness of an n-ary one)."""
    database = _aligned(query, database)
    body = compile_query(query).body_for(database.vocabulary)
    for _hom in all_homomorphisms(body, database, engine=engine):
        return True
    return False


def evaluate_join(query: ConjunctiveQuery, database: Structure) -> set[Row]:
    """All answers of ``query`` on ``database`` via hash joins.

    Processes subgoals in a connectivity-aware order (each step prefers an
    atom sharing variables with those already joined), joining intermediate
    relations on their shared variables, then projects onto the head.
    """
    database = _aligned(query, database)
    atoms = list(query.atoms)

    # Choose a join order greedily by shared variables to keep
    # intermediates small on chain/star/tree queries.
    ordered = []
    seen_vars: set[str] = set()
    remaining = list(atoms)
    while remaining:
        best_index = 0
        if seen_vars:
            scored = [
                (len(set(atom.terms) & seen_vars), -index)
                for index, atom in enumerate(remaining)
            ]
            best = max(range(len(remaining)), key=lambda i: scored[i])
            best_index = best
        atom = remaining.pop(best_index)
        ordered.append(atom)
        seen_vars.update(atom.terms)

    # Intermediate relation: (variable order, set of rows).
    columns: list[str] = []
    rows: set[Row] = {()}
    for atom in ordered:
        facts = database.relation(atom.relation)
        # Bindings a single fact induces, or None when inconsistent with
        # repeated variables inside the atom.
        atom_columns = []
        for term in atom.terms:
            if term not in atom_columns:
                atom_columns.append(term)

        def bind(fact: Row) -> Row | None:
            values: dict[str, Element] = {}
            for term, value in zip(atom.terms, fact):
                if values.setdefault(term, value) != value:
                    return None
            return tuple(values[c] for c in atom_columns)

        atom_rows = {
            bound for bound in (bind(fact) for fact in facts)
            if bound is not None
        }
        shared = [c for c in atom_columns if c in columns]
        new_columns = [c for c in atom_columns if c not in columns]
        shared_left = [columns.index(c) for c in shared]
        shared_right = [atom_columns.index(c) for c in shared]
        new_right = [atom_columns.index(c) for c in new_columns]
        # Hash join on the shared variables.
        index: dict[Row, list[Row]] = {}
        for row in atom_rows:
            key = tuple(row[i] for i in shared_right)
            index.setdefault(key, []).append(
                tuple(row[i] for i in new_right)
            )
        joined: set[Row] = set()
        for row in rows:
            key = tuple(row[i] for i in shared_left)
            for extension in index.get(key, ()):
                joined.add(row + extension)
        columns = columns + new_columns
        rows = joined
        if not rows:
            break

    # Head variables not in the body range over the active domain.
    missing = [v for v in query.head_variables if v not in columns]
    domain = sorted(database.universe, key=_sort_key)
    if missing and not domain:
        return set()
    distinct_missing = []
    for v in missing:
        if v not in distinct_missing:
            distinct_missing.append(v)
    expanded: set[Row] = set()
    for row in rows:
        assignments = [dict(zip(columns, row))]
        for v in distinct_missing:
            assignments = [
                {**assignment, v: value}
                for assignment in assignments
                for value in domain
            ]
        for assignment in assignments:
            expanded.add(
                tuple(assignment[v] for v in query.head_variables)
            )
    return expanded
