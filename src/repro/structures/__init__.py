"""Finite relational structures and the homomorphism problem (Section 2).

This subpackage is the substrate everything else builds on: vocabularies,
structures, homomorphism search, algebraic operations (products, cores),
graph encodings, Gaifman/incidence graphs, and the dual-graph binary
encoding of Lemma 5.5.
"""

from repro.structures.binary_encoding import (
    binary_encoding,
    binary_vocabulary,
    coincidence_symbol,
)
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.gaifman import (
    gaifman_graph,
    incidence_graph,
    primal_edges,
)
from repro.structures.graphs import (
    EDGE,
    GRAPH_VOCABULARY,
    clique,
    cycle,
    digraph_structure,
    directed_cycle,
    graph_structure,
    is_two_colorable,
    path,
    random_digraph,
    random_graph,
    to_networkx,
)
from repro.structures.io import (
    structure_from_dict,
    structure_from_json,
    structure_to_dict,
    structure_to_json,
)
from repro.structures.homomorphism import (
    SearchStats,
    all_homomorphisms,
    count_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
    image,
    is_homomorphism,
)
from repro.structures.product import (
    core,
    direct_product,
    disjoint_union,
    is_core,
    power,
    retract_onto,
)
from repro.structures.structure import Structure, StructureBuilder
from repro.structures.vocabulary import RelationSymbol, Vocabulary

__all__ = [
    "RelationSymbol",
    "Vocabulary",
    "Structure",
    "StructureBuilder",
    "SearchStats",
    "canonical_fingerprint",
    "is_homomorphism",
    "find_homomorphism",
    "homomorphism_exists",
    "all_homomorphisms",
    "count_homomorphisms",
    "image",
    "disjoint_union",
    "direct_product",
    "power",
    "core",
    "is_core",
    "retract_onto",
    "binary_encoding",
    "binary_vocabulary",
    "coincidence_symbol",
    "gaifman_graph",
    "incidence_graph",
    "primal_edges",
    "EDGE",
    "GRAPH_VOCABULARY",
    "graph_structure",
    "digraph_structure",
    "to_networkx",
    "clique",
    "path",
    "cycle",
    "directed_cycle",
    "random_graph",
    "random_digraph",
    "is_two_colorable",
    "structure_to_dict",
    "structure_from_dict",
    "structure_to_json",
    "structure_from_json",
]
