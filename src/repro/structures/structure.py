"""Finite relational structures.

A finite relational structure ``A`` over a vocabulary σ consists of a finite
universe and, for every relation symbol ``R ∈ σ`` of arity ``r``, a finite
set of ``r``-tuples over the universe.  Structures are the common currency of
the whole paper: conjunctive queries become canonical databases, CSP
instances become structure pairs, and the homomorphism problem is stated
directly on structures (Section 2).

Structures here are immutable after construction; use :class:`StructureBuilder`
for incremental assembly.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.exceptions import VocabularyError
from repro.structures.vocabulary import RelationSymbol, Vocabulary

__all__ = ["Structure", "StructureBuilder"]

Element = Hashable
Fact = tuple[Element, ...]


def _sort_key(value: Any) -> tuple[str, str]:
    """A total order over heterogeneous hashable universes.

    Python cannot compare e.g. ints with strs, yet deterministic iteration
    order matters for reproducible solver behaviour, so we order first by
    type name then by repr.
    """
    return (type(value).__name__, repr(value))


class Structure:
    """An immutable finite relational structure.

    Parameters
    ----------
    vocabulary:
        The signature.  Every relation name used in ``relations`` must be
        declared here (extra symbols are fine and denote empty relations).
    universe:
        The elements of the structure.  Elements mentioned in facts are
        added automatically, so an explicit universe is only needed for
        isolated elements.
    relations:
        ``{name: iterable of tuples}``.  Tuple widths must match arities.
    """

    __slots__ = (
        "_vocabulary",
        "_universe",
        "_relations",
        "_hash",
        "_fingerprint",
        "_compiled_source",
        "_compiled_target",
        "_decomposition",
    )

    def __init__(
        self,
        vocabulary: Vocabulary,
        universe: Iterable[Element] = (),
        relations: Mapping[str, Iterable[Fact]] | None = None,
    ) -> None:
        relations = relations or {}
        elements: set[Element] = set(universe)
        cleaned: dict[str, frozenset[Fact]] = {}
        for name, facts in relations.items():
            symbol = vocabulary.get(name)
            if symbol is None:
                raise VocabularyError(
                    f"relation {name!r} not declared in the vocabulary"
                )
            fact_set = set()
            for fact in facts:
                fact = tuple(fact)
                if len(fact) != symbol.arity:
                    raise VocabularyError(
                        f"fact {fact!r} has width {len(fact)}, but "
                        f"{symbol} has arity {symbol.arity}"
                    )
                fact_set.add(fact)
                elements.update(fact)
            cleaned[name] = frozenset(fact_set)
        for symbol in vocabulary:
            cleaned.setdefault(symbol.name, frozenset())
        self._vocabulary = vocabulary
        self._universe = frozenset(elements)
        self._relations = cleaned
        self._hash: int | None = None
        #: Memo for repro.structures.fingerprint.canonical_fingerprint.
        self._fingerprint: str | None = None
        #: Memos for repro.kernel.compile_source / compile_target.
        self._compiled_source: object | None = None
        self._compiled_target: object | None = None
        #: Memo for repro.treewidth.heuristics.cached_decomposition.
        self._decomposition: object | None = None

    # -- basic accessors -----------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def universe(self) -> frozenset[Element]:
        return self._universe

    @property
    def sorted_universe(self) -> tuple[Element, ...]:
        """The universe in a deterministic order (stable across runs)."""
        return tuple(sorted(self._universe, key=_sort_key))

    def relation(self, name: str) -> frozenset[Fact]:
        """The set of facts of relation ``name`` (empty if undeclared facts)."""
        if name not in self._relations:
            raise KeyError(name)
        return self._relations[name]

    def relations(self) -> Iterator[tuple[RelationSymbol, frozenset[Fact]]]:
        """Iterate ``(symbol, facts)`` pairs in deterministic symbol order."""
        for symbol in self._vocabulary:
            yield symbol, self._relations[symbol.name]

    def facts(self) -> Iterator[tuple[str, Fact]]:
        """Iterate all facts as ``(relation name, tuple)`` pairs."""
        for symbol, rel in self.relations():
            for fact in sorted(rel, key=lambda t: tuple(map(_sort_key, t))):
                yield symbol.name, fact

    # -- sizes ----------------------------------------------------------------

    def __len__(self) -> int:
        """Number of elements in the universe (``|A|`` in the paper)."""
        return len(self._universe)

    @property
    def num_facts(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    @property
    def size(self) -> int:
        """Encoding size ``‖A‖``: elements plus total tuple cells.

        This matches the paper's cost measure for uniform algorithms
        (e.g. the O(‖A‖·‖B‖) bound of Theorem 3.4).
        """
        cells = sum(
            len(rel) * symbol.arity for symbol, rel in self.relations()
        )
        return len(self._universe) + cells

    # -- predicates -----------------------------------------------------------

    def holds(self, name: str, fact: Fact) -> bool:
        """True when ``fact`` belongs to relation ``name``."""
        return tuple(fact) in self._relations[name]

    @property
    def is_boolean(self) -> bool:
        """True when the universe is a subset of ``{0, 1}`` (Section 3)."""
        return self._universe <= {0, 1}

    def occurrences(self) -> dict[Element, list[tuple[str, Fact, int]]]:
        """Index every occurrence of every element.

        Returns ``{element: [(relation name, fact, position), ...]}``.  This
        is the linked-list preprocessing step that Theorem 3.4 relies on to
        reach O(‖A‖·‖B‖): when an element changes state, all tuples it
        appears in can be revisited without scanning the whole structure.
        """
        index: dict[Element, list[tuple[str, Fact, int]]] = {
            element: [] for element in self._universe
        }
        for name, fact in self.facts():
            for position, element in enumerate(fact):
                index[element].append((name, fact, position))
        return index

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        """Pickle only the mathematical content, not the memo slots.

        The compiled-kernel memos (``_compiled_source`` /
        ``_compiled_target``) hold the full bitset index of the structure —
        shipping them to a process-pool worker would multiply the payload
        for data the worker can rebuild in linear time; they also must not
        alias across processes.  The greedy tree decomposition memo
        (``_decomposition``) is dropped for the same reason: workers
        re-derive it through their own fingerprint-keyed cache.  The
        fingerprint is a small stable string, so it *is* kept: the
        worker's cache lookups reuse it directly.
        """
        return {
            "_vocabulary": self._vocabulary,
            "_universe": self._universe,
            "_relations": self._relations,
            "_fingerprint": self._fingerprint,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._vocabulary = state["_vocabulary"]
        self._universe = state["_universe"]
        self._relations = state["_relations"]
        self._fingerprint = state.get("_fingerprint")
        self._hash = None
        self._compiled_source = None
        self._compiled_target = None
        self._decomposition = None

    # -- equality / hashing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._vocabulary == other._vocabulary
            and self._universe == other._universe
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._vocabulary,
                    self._universe,
                    tuple(sorted(
                        (name, rel) for name, rel in self._relations.items()
                    )),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{symbol.name}:{len(rel)}" for symbol, rel in self.relations()
        )
        return f"Structure(|A|={len(self)}, {rels})"

    # -- derived structures -------------------------------------------------

    def restrict(self, elements: Iterable[Element]) -> "Structure":
        """The induced substructure on ``elements``."""
        keep = set(elements)
        if not keep <= self._universe:
            raise VocabularyError("restriction elements outside the universe")
        relations = {
            symbol.name: {
                fact for fact in rel if all(e in keep for e in fact)
            }
            for symbol, rel in self.relations()
        }
        return Structure(self._vocabulary, keep, relations)

    def rename_elements(
        self, mapping: Mapping[Element, Element]
    ) -> "Structure":
        """Apply an *injective* renaming of elements.

        For the (possibly non-injective) image of a structure under an
        arbitrary map, see :func:`repro.structures.homomorphism.image`.
        """
        image = [mapping.get(e, e) for e in self._universe]
        if len(set(image)) != len(image):
            raise VocabularyError("element renaming must be injective")
        relations = {
            symbol.name: {
                tuple(mapping.get(e, e) for e in fact) for fact in rel
            }
            for symbol, rel in self.relations()
        }
        return Structure(self._vocabulary, image, relations)

    def with_vocabulary(self, vocabulary: Vocabulary) -> "Structure":
        """Re-type the structure over a larger vocabulary (new symbols get
        empty relations)."""
        if not self._vocabulary.issubset(vocabulary):
            raise VocabularyError(
                "target vocabulary must contain the current one"
            )
        return Structure(
            vocabulary,
            self._universe,
            {name: rel for name, rel in self._relations.items()},
        )


class StructureBuilder:
    """Mutable helper for assembling a :class:`Structure` incrementally.

    The builder infers the vocabulary from the facts added, so callers do
    not need to declare arities up front::

        builder = StructureBuilder()
        builder.add_fact("E", (1, 2))
        builder.add_fact("E", (2, 3))
        graph = builder.build()
    """

    def __init__(self) -> None:
        self._arities: dict[str, int] = {}
        self._relations: dict[str, set[Fact]] = {}
        self._universe: set[Element] = set()

    def add_element(self, element: Element) -> "StructureBuilder":
        self._universe.add(element)
        return self

    def add_elements(self, elements: Iterable[Element]) -> "StructureBuilder":
        self._universe.update(elements)
        return self

    def declare(self, name: str, arity: int) -> "StructureBuilder":
        """Declare a relation (useful for relations that stay empty)."""
        existing = self._arities.get(name)
        if existing is not None and existing != arity:
            raise VocabularyError(
                f"relation {name!r} declared with arities {existing} and {arity}"
            )
        self._arities[name] = arity
        self._relations.setdefault(name, set())
        return self

    def add_fact(self, name: str, fact: Iterable[Element]) -> "StructureBuilder":
        fact = tuple(fact)
        self.declare(name, len(fact))
        self._relations[name].add(fact)
        self._universe.update(fact)
        return self

    def build(self) -> Structure:
        vocabulary = Vocabulary.from_arities(self._arities)
        return Structure(vocabulary, self._universe, self._relations)
