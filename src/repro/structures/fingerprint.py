"""Canonical structure fingerprints for cross-call caching.

The pipeline in :mod:`repro.core.pipeline` memoizes expensive per-structure
analyses (Schaefer classification of targets, greedy tree decompositions of
sources) across solve calls.  Python's ``hash()`` is unsuitable as a cache
key: it is salted per process for strings and collides freely.  This module
derives a stable hex digest from a canonical serialization of a structure —
two structures get the same fingerprint iff they are equal as structures
(same vocabulary, universe, and relations), independent of construction
order or process.

Elements of a universe are arbitrary hashables, so they are serialized as
``(qualified type name, repr)`` tokens — the fully qualified type (module
plus qualname, stricter than the bare type name the deterministic sort
order uses) so that same-named classes from different modules cannot make
unequal structures collide.  Distinct elements of the very same type with
identical reprs would still collide, but a repr that hides a value's
identity breaks Python's own conventions first.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.structures.structure import Structure

__all__ = ["canonical_fingerprint", "instance_fingerprint"]


def _token(value: Any) -> bytes:
    kind = f"{type(value).__module__}.{type(value).__qualname__}"
    text = repr(value)
    return f"{len(kind)}:{kind}{len(text)}:{text}".encode()


def canonical_fingerprint(structure: Structure) -> str:
    """A stable hex digest identifying ``structure`` up to equality.

    The digest covers the vocabulary (names and arities), the universe,
    and every fact of every relation, all in deterministic order, with
    length-prefixed tokens so concatenation is unambiguous.  The result
    is memoized on the (immutable) structure, so repeated cache lookups
    against the same object hash its serialization only once.
    """
    cached = structure._fingerprint
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for symbol in structure.vocabulary:
        digest.update(_token(symbol.name))
        digest.update(_token(symbol.arity))
    digest.update(b"|universe|")
    for element in structure.sorted_universe:
        digest.update(_token(element))
    digest.update(b"|facts|")
    for name, fact in structure.facts():
        digest.update(_token(name))
        for element in fact:
            digest.update(_token(element))
        digest.update(b";")
    result = digest.hexdigest()
    structure._fingerprint = result
    return result


def instance_fingerprint(source: Structure, target: Structure) -> str:
    """A stable digest identifying the *instance* (A, B) up to equality.

    The solve service coalesces duplicate in-flight requests under this
    key (combined with the solve options): two structurally equal
    instances — typically the same query text parsed twice from two
    connections — share one computation.  Hashing the two per-structure
    digests (each memoized on its structure) keeps the combination
    length-safe and order-sensitive: (A, B) and (B, A) never collide.
    """
    digest = hashlib.sha256()
    digest.update(canonical_fingerprint(source).encode())
    digest.update(b"->")
    digest.update(canonical_fingerprint(target).encode())
    return digest.hexdigest()
