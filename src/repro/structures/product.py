"""Algebraic operations on structures: disjoint union, direct product, cores.

These are the standard category-theoretic companions of the homomorphism
problem.  They are used throughout the tests as oracles (e.g. ``A → B×C``
iff ``A → B`` and ``A → C``) and by the conjunctive-query minimization code:
the *core* of the canonical database of a query is exactly the canonical
database of the minimal equivalent query (Chandra–Merlin).
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import VocabularyError
from repro.kernel.engine import LEGACY, resolve_engine
from repro.structures.homomorphism import find_homomorphism
from repro.structures.structure import Structure, _sort_key

__all__ = [
    "disjoint_union",
    "direct_product",
    "power",
    "core",
    "is_core",
    "retract_onto",
]

Element = Hashable


def disjoint_union(a: Structure, b: Structure) -> Structure:
    """The disjoint union ``A ⊎ B`` with elements tagged ``(0, a)``/``(1, b)``.

    ``A ⊎ B → C`` iff ``A → C`` and ``B → C`` — the coproduct property.
    """
    if a.vocabulary != b.vocabulary:
        raise VocabularyError("disjoint union requires a common vocabulary")
    universe = [(0, e) for e in a.universe] + [(1, e) for e in b.universe]
    relations: dict[str, set[tuple[Element, ...]]] = {}
    for symbol, rel in a.relations():
        relations[symbol.name] = {
            tuple((0, e) for e in fact) for fact in rel
        }
    for symbol, rel in b.relations():
        relations.setdefault(symbol.name, set()).update(
            tuple((1, e) for e in fact) for fact in rel
        )
    return Structure(a.vocabulary, universe, relations)


def direct_product(a: Structure, b: Structure) -> Structure:
    """The direct (categorical) product ``A × B``.

    Universe: pairs ``(x, y)``; a tuple of pairs is a fact iff its left
    projection is a fact of ``A`` and its right projection a fact of ``B``.
    ``C → A×B`` iff ``C → A`` and ``C → B``.
    """
    if a.vocabulary != b.vocabulary:
        raise VocabularyError("direct product requires a common vocabulary")
    universe = [(x, y) for x in a.universe for y in b.universe]
    relations: dict[str, set[tuple[Element, ...]]] = {}
    for symbol, rel_a in a.relations():
        rel_b = b.relation(symbol.name)
        relations[symbol.name] = {
            tuple(zip(fact_a, fact_b))
            for fact_a in rel_a
            for fact_b in rel_b
        }
    return Structure(a.vocabulary, universe, relations)


def power(a: Structure, exponent: int) -> Structure:
    """The ``exponent``-fold direct product ``A × ⋯ × A`` (exponent ≥ 1)."""
    if exponent < 1:
        raise ValueError("exponent must be at least 1")
    result = a
    for _ in range(exponent - 1):
        result = direct_product(result, a)
    return result


def retract_onto(
    a: Structure,
    elements: frozenset[Element] | set[Element],
    *,
    engine: str | None = None,
) -> dict[Element, Element] | None:
    """A retraction of ``A`` onto the substructure induced by ``elements``.

    A retraction is a homomorphism ``A → A`` that fixes ``elements``
    pointwise and whose image lies inside ``elements``.  Returns the map or
    ``None`` when no retraction exists.  The kernel engine (default)
    searches with masked domains instead of materializing the induced
    substructure; both engines return the same map.
    """
    if resolve_engine(engine) != LEGACY:
        from repro.kernel.corek import retraction

        return retraction(a, elements)
    target = a.restrict(elements)
    return find_homomorphism(
        a, target, fixed={e: e for e in elements}, engine=LEGACY
    )


def core(a: Structure, *, engine: str | None = None) -> Structure:
    """The core of ``A``: a minimum homomorphically-equivalent substructure.

    Repeatedly look for an endomorphism missing some element — i.e. a
    homomorphism ``A → A∖{v}`` for some ``v`` — and shrink ``A`` to that
    homomorphism's image.  (Greedy *retractions* dropping one element do
    not suffice: C₆ retracts onto an edge but onto no 5-element
    substructure.)  The result is a core, unique up to isomorphism; cores
    of canonical databases give minimal conjunctive queries (Section 2 of
    the paper, via Chandra–Merlin).

    Worst-case exponential (deciding core-ness is NP-hard), fine for the
    query-minimization workloads in this library.  ``engine`` selects the
    compiled bitset engine (:mod:`repro.kernel.corek`, the default) or
    this module's reference loop; they return the *identical* core, since
    the kernel's masked search visits the same tree as the reference
    search against the materialized substructures.
    """
    if resolve_engine(engine) != LEGACY:
        from repro.kernel.corek import core_structure

        return core_structure(a)
    current = a
    changed = True
    while changed:
        changed = False
        for dropped in sorted(current.universe, key=_sort_key):
            smaller = current.restrict(current.universe - {dropped})
            h = find_homomorphism(current, smaller, engine=LEGACY)
            if h is not None:
                current = current.restrict(set(h.values()))
                changed = True
                break
    return current


def is_core(a: Structure, *, engine: str | None = None) -> bool:
    """True when ``A`` admits no homomorphism into a proper substructure.

    Equivalently (for finite structures), every endomorphism of ``A`` is
    an automorphism.  ``engine`` selects the kernel or the reference
    loop, as in :func:`core`.
    """
    if resolve_engine(engine) != LEGACY:
        from repro.kernel.corek import is_core_structure

        return is_core_structure(a)
    for dropped in sorted(a.universe, key=_sort_key):
        smaller = a.restrict(a.universe - {dropped})
        if find_homomorphism(a, smaller, engine=LEGACY) is not None:
            return False
    return True
