"""Serialization of structures, queries, and Datalog programs.

Plain-dict (JSON-compatible) representations plus text round-trips, so
experiment inputs can be stored, diffed, and replayed.  Elements are
serialized as-is when they are JSON scalars; tuples inside facts become
lists in JSON and are converted back on load.

Only scalar (str/int/bool/float/None) elements survive a JSON round-trip;
structures with richer element types (tuples, frozensets — e.g. binary
encodings) can still be round-tripped through :func:`structure_to_dict` /
:func:`structure_from_dict` in memory.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Hashable

from repro.exceptions import ParseError
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

if TYPE_CHECKING:  # imported lazily at runtime to avoid package cycles
    from repro.cq.query import ConjunctiveQuery
    from repro.datalog.program import DatalogProgram

__all__ = [
    "structure_to_dict",
    "structure_from_dict",
    "structure_to_json",
    "structure_from_json",
    "query_to_text",
    "query_from_text",
    "program_to_text",
    "program_from_text",
]

Element = Hashable


def structure_to_dict(structure: Structure) -> dict[str, Any]:
    """A plain-dict form: vocabulary arities, universe, relations."""
    return {
        "vocabulary": {
            symbol.name: symbol.arity for symbol in structure.vocabulary
        },
        "universe": list(structure.sorted_universe),
        "relations": {
            symbol.name: sorted((list(fact) for fact in rel), key=repr)
            for symbol, rel in structure.relations()
        },
    }


def structure_from_dict(data: dict[str, Any]) -> Structure:
    """Inverse of :func:`structure_to_dict`."""
    try:
        vocabulary = Vocabulary.from_arities(data["vocabulary"])
        relations = {
            name: {tuple(fact) for fact in facts}
            for name, facts in data.get("relations", {}).items()
        }
        return Structure(vocabulary, data.get("universe", ()), relations)
    except (KeyError, TypeError) as error:
        raise ParseError(f"malformed structure dict: {error}") from error


def structure_to_json(structure: Structure, *, indent: int | None = None) -> str:
    """JSON text form (requires JSON-scalar elements)."""
    return json.dumps(structure_to_dict(structure), indent=indent)


def structure_from_json(text: str) -> Structure:
    """Inverse of :func:`structure_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ParseError(f"invalid JSON: {error}") from error
    return structure_from_dict(data)


def query_to_text(query: "ConjunctiveQuery") -> str:
    """The rule-form text of a query (parsable back)."""
    return str(query)


def query_from_text(text: str) -> "ConjunctiveQuery":
    """Parse a rule-form query (alias of :func:`repro.cq.parse_query`)."""
    from repro.cq.parser import parse_query

    return parse_query(text)


def program_to_text(program: "DatalogProgram") -> str:
    """One rule per line, followed by a goal comment."""
    return f"{program}\n# goal: {program.goal}\n"


def program_from_text(
    text: str, goal: str | None = None
) -> "DatalogProgram":
    """Parse a program; the goal may come from a ``# goal:`` comment."""
    from repro.datalog.program import parse_program

    if goal is None:
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("# goal:"):
                goal = stripped.split(":", 1)[1].strip()
                break
    if goal is None:
        raise ParseError("no goal given and no '# goal:' comment found")
    return parse_program(text, goal)
