"""Relational vocabularies (signatures).

A *vocabulary* is a finite set of relation symbols, each with a fixed arity.
Both sides of the homomorphism problem — and therefore conjunctive queries,
canonical databases, and CSP instances — are finite structures over a common
vocabulary, so the library makes vocabularies explicit, hashable values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import VocabularyError

__all__ = ["RelationSymbol", "Vocabulary"]


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol: a name together with an arity.

    Instances are immutable and hashable so they can key dictionaries and
    live in sets.  Two symbols are equal exactly when both name and arity
    agree; using the same name with two different arities in one vocabulary
    is rejected by :class:`Vocabulary`.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise VocabularyError("relation symbol name must be non-empty")
        if self.arity < 0:
            raise VocabularyError(
                f"relation symbol {self.name!r} has negative arity {self.arity}"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Vocabulary:
    """An immutable finite set of relation symbols with distinct names.

    Supports set-like operations needed throughout the library: membership,
    lookup by name, iteration in a deterministic (name-sorted) order, union,
    and containment comparisons.
    """

    __slots__ = ("_symbols",)

    def __init__(self, symbols: Iterable[RelationSymbol] = ()) -> None:
        by_name: dict[str, RelationSymbol] = {}
        for symbol in symbols:
            existing = by_name.get(symbol.name)
            if existing is not None and existing != symbol:
                raise VocabularyError(
                    f"symbol {symbol.name!r} declared with arities "
                    f"{existing.arity} and {symbol.arity}"
                )
            by_name[symbol.name] = symbol
        # Name-sorted order keeps every downstream iteration deterministic.
        self._symbols: tuple[RelationSymbol, ...] = tuple(
            by_name[name] for name in sorted(by_name)
        )

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Vocabulary":
        """Build a vocabulary from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    # -- set-like protocol -------------------------------------------------

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, RelationSymbol):
            return self.get(item.name) == item
        if isinstance(item, str):
            return self.get(item) is not None
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        inner = ", ".join(str(s) for s in self._symbols)
        return f"Vocabulary({{{inner}}})"

    # -- lookups ------------------------------------------------------------

    def get(self, name: str) -> RelationSymbol | None:
        """Return the symbol with ``name``, or ``None`` if absent."""
        for symbol in self._symbols:
            if symbol.name == name:
                return symbol
        return None

    def __getitem__(self, name: str) -> RelationSymbol:
        symbol = self.get(name)
        if symbol is None:
            raise KeyError(name)
        return symbol

    def arity(self, name: str) -> int:
        """Return the arity of the symbol named ``name``."""
        return self[name].arity

    @property
    def names(self) -> tuple[str, ...]:
        """All symbol names, sorted."""
        return tuple(symbol.name for symbol in self._symbols)

    @property
    def max_arity(self) -> int:
        """The largest arity in the vocabulary (0 for the empty vocabulary)."""
        return max((symbol.arity for symbol in self._symbols), default=0)

    # -- combinations --------------------------------------------------------

    def union(self, other: "Vocabulary") -> "Vocabulary":
        """The union vocabulary; clashing arities raise VocabularyError."""
        return Vocabulary(tuple(self._symbols) + tuple(other._symbols))

    def issubset(self, other: "Vocabulary") -> bool:
        """True when every symbol of ``self`` occurs (same arity) in ``other``."""
        return all(symbol in other for symbol in self._symbols)

    def renamed(self, mapping: Mapping[str, str]) -> "Vocabulary":
        """A copy with symbol names replaced per ``mapping`` (missing names
        are kept)."""
        return Vocabulary(
            RelationSymbol(mapping.get(s.name, s.name), s.arity)
            for s in self._symbols
        )
