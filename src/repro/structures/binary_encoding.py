"""The dual-graph binary encoding ``binary(A)`` of Lemma 5.5.

Section 5 observes that the treewidth of a structure is at least the number
of distinct elements in its widest tuple minus one, so to benefit from
bounded-treewidth algorithms it pays to lower arities first.  The paper uses
the *dual-graph representation* of Dechter–Pearl [DP89]:

* the domain of ``binary(A)`` is the set of tuple occurrences of ``A``;
* for every pair of relation symbols ``P, Q`` and argument positions
  ``i, j`` there is a binary relation ``E_{P,Q,i,j}`` holding ``(s, t)``
  whenever the ``i``-th component of the ``P``-tuple ``s`` equals the
  ``j``-th component of the ``Q``-tuple ``t``.

Lemma 5.5: ``A → B``  iff  ``binary(A) → binary(B)``.

The paper also remarks that on the *left-hand* side it suffices to store
enough coincidence pairs for their reflexive–symmetric–transitive closure to
recover all of them — storing fewer tuples can only lower the treewidth of
``binary(A)``.  The ``scheme="chain"`` option implements that optimization
(occurrences of one element are linked in a chain); targets (right-hand
sides) must always use the full ``scheme="full"`` encoding.
"""

from __future__ import annotations

from typing import Hashable, Literal

from repro.exceptions import VocabularyError
from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary

__all__ = ["binary_vocabulary", "binary_encoding", "coincidence_symbol"]

Element = Hashable
TupleNode = tuple[str, tuple[Element, ...]]


def coincidence_symbol(p: str, i: int, q: str, j: int) -> RelationSymbol:
    """The binary symbol ``E_{P,Q,i,j}`` (positions are 0-based here)."""
    return RelationSymbol(f"E[{p}.{i}|{q}.{j}]", 2)


def binary_vocabulary(vocabulary: Vocabulary) -> Vocabulary:
    """The vocabulary of ``binary(·)`` for structures over ``vocabulary``.

    One binary symbol per ordered pair of (symbol, position) pairs.  It
    depends only on the *source* vocabulary, so ``binary(A)`` and
    ``binary(B)`` are automatically over the same signature.
    """
    symbols = []
    for p in vocabulary:
        for q in vocabulary:
            for i in range(p.arity):
                for j in range(q.arity):
                    symbols.append(coincidence_symbol(p.name, i, q.name, j))
    return Vocabulary(symbols)


def binary_encoding(
    structure: Structure,
    scheme: Literal["full", "chain"] = "full",
) -> Structure:
    """Compute ``binary(structure)`` (Lemma 5.5).

    ``scheme="full"`` stores every coincidence pair — required for
    right-hand sides of the homomorphism problem.  ``scheme="chain"``
    stores, per element, only consecutive occurrences plus the reflexive
    pairs; its reflexive–symmetric–transitive closure equals the full
    encoding, and it can have much smaller treewidth (the paper's
    optimization remark after Lemma 5.5).

    Note the encoding forgets isolated elements (elements in no tuple); the
    lemma concerns structures whose elements all occur in tuples, which is
    the case for canonical databases of queries.
    """
    if scheme not in ("full", "chain"):
        raise VocabularyError(f"unknown binary-encoding scheme {scheme!r}")
    for name, fact in structure.facts():
        if not fact:
            raise VocabularyError(
                "binary encoding is undefined for nullary facts "
                f"(relation {name!r}); lift them to unary first"
            )
    target_vocabulary = binary_vocabulary(structure.vocabulary)
    nodes: list[TupleNode] = [
        (name, fact) for name, fact in structure.facts()
    ]
    relations: dict[str, set[tuple[TupleNode, TupleNode]]] = {}

    def add(p: str, i: int, q: str, j: int, s: TupleNode, t: TupleNode) -> None:
        name = coincidence_symbol(p, i, q, j).name
        relations.setdefault(name, set()).add((s, t))

    if scheme == "full":
        for p_name, p_fact in nodes:
            for q_name, q_fact in nodes:
                for i, left in enumerate(p_fact):
                    for j, right in enumerate(q_fact):
                        if left == right:
                            add(
                                p_name, i, q_name, j,
                                (p_name, p_fact), (q_name, q_fact),
                            )
    else:
        # Reflexive pairs: E_{P,P,i,i}(t, t) for every occurrence — these are
        # the "(a) the relation E_{P,P,i,i} contains all tuples in P" pairs.
        for p_name, p_fact in nodes:
            node = (p_name, p_fact)
            for i in range(len(p_fact)):
                add(p_name, i, p_name, i, node, node)
        # Chain pairs: per element, link consecutive occurrences both ways so
        # the RST closure recovers every coincidence.
        occurrences: dict[Element, list[tuple[str, TupleNode, int]]] = {}
        for p_name, p_fact in nodes:
            node = (p_name, p_fact)
            for i, element in enumerate(p_fact):
                occurrences.setdefault(element, []).append((p_name, node, i))
        for chain in occurrences.values():
            for (p, s, i), (q, t, j) in zip(chain, chain[1:]):
                add(p, i, q, j, s, t)
                add(q, j, p, i, t, s)
    return Structure(target_vocabulary, nodes, relations)
