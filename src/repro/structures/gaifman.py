"""Gaifman graphs and incidence graphs of relational structures.

Section 5 of the paper defines the treewidth of a structure via its *Gaifman
graph* (elements are nodes; two elements are adjacent iff they co-occur in a
tuple) and proves (Lemma 5.1) that tree decompositions of a structure and of
its Gaifman graph coincide.  The closing discussion of Section 5 compares
this with the *incidence graph* (bipartite: tuples vs. elements), whose
treewidth can be much smaller — e.g. a single ``n``-ary tuple has Gaifman
treewidth ``n − 1`` but incidence treewidth 1.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.structures.structure import Structure

__all__ = ["gaifman_graph", "incidence_graph", "primal_edges"]

Element = Hashable


def primal_edges(structure: Structure) -> set[frozenset[Element]]:
    """The edge set of the Gaifman graph, as 2-element frozensets."""
    edges: set[frozenset[Element]] = set()
    for _name, fact in structure.facts():
        distinct = set(fact)
        for u in distinct:
            for v in distinct:
                if u != v:
                    edges.add(frozenset((u, v)))
    return edges


def gaifman_graph(structure: Structure) -> nx.Graph:
    """The Gaifman (primal) graph of a structure as a networkx graph."""
    graph = nx.Graph()
    graph.add_nodes_from(structure.universe)
    for edge in primal_edges(structure):
        u, v = tuple(edge)
        graph.add_edge(u, v)
    return graph


def incidence_graph(structure: Structure) -> nx.Graph:
    """The bipartite incidence graph of a structure.

    Tuple nodes are tagged ``("tuple", relation name, fact)`` and element
    nodes ``("element", element)`` so the two parts cannot collide.
    """
    graph = nx.Graph()
    for element in structure.universe:
        graph.add_node(("element", element), bipartite=0)
    for name, fact in structure.facts():
        tuple_node = ("tuple", name, fact)
        graph.add_node(tuple_node, bipartite=1)
        for element in set(fact):
            graph.add_edge(tuple_node, ("element", element))
    return graph
