"""The homomorphism problem for finite relational structures.

Given structures ``A`` and ``B`` over the same vocabulary, a *homomorphism*
``h: A → B`` is a map on universes such that every fact of ``A`` is sent to a
fact of ``B``:  ``(c₁, …, c_r) ∈ Rᴬ`` implies ``(h(c₁), …, h(c_r)) ∈ Rᴮ``.

The paper's central observation (Section 2) is that conjunctive-query
containment, conjunctive-query evaluation, and constraint satisfaction are all
this one problem.  This module provides:

* :func:`is_homomorphism` — check a candidate map;
* :func:`find_homomorphism` — the generic NP backtracking search used as the
  baseline everywhere (MRV variable ordering + forward checking);
* :func:`all_homomorphisms` / :func:`count_homomorphisms` — enumeration;
* :func:`image` — the homomorphic image of a structure under a map.

The backtracking search is deliberately the *uniform* general-case algorithm:
Sections 3–5 of the paper are about inputs where it can be replaced by a
polynomial algorithm, and the benchmark suite compares those algorithms
against this one.

Two engines implement it.  The default is the compiled bitset kernel
(:mod:`repro.kernel`), which visits the identical search tree on
integer-indexed masks; the original pure-dict search below remains the
reference semantics — same answers, in the same deterministic order —
selectable per call with ``engine="legacy"`` or process-wide via
:func:`repro.kernel.set_default_engine` / the ``REPRO_ENGINE``
environment variable, and held to exact agreement by the randomized
parity suite.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from repro.exceptions import VocabularyError
from repro.kernel.engine import LEGACY, resolve_engine
from repro.kernel.search import count_solutions, search_homomorphisms
from repro.structures.structure import Structure, _sort_key

__all__ = [
    "is_homomorphism",
    "find_homomorphism",
    "all_homomorphisms",
    "count_homomorphisms",
    "homomorphism_exists",
    "image",
    "SearchStats",
]

Element = Hashable
Assignment = dict[Element, Element]


def _check_same_vocabulary(a: Structure, b: Structure) -> None:
    if a.vocabulary != b.vocabulary:
        raise VocabularyError(
            "homomorphism requires both structures over the same vocabulary; "
            f"got {a.vocabulary!r} and {b.vocabulary!r}"
        )


def is_homomorphism(
    mapping: Mapping[Element, Element], source: Structure, target: Structure
) -> bool:
    """True when ``mapping`` is a homomorphism from ``source`` to ``target``.

    ``mapping`` must be defined on the whole universe of ``source`` and land
    inside the universe of ``target``.
    """
    _check_same_vocabulary(source, target)
    universe = source.universe
    if not all(e in mapping for e in universe):
        return False
    if not all(mapping[e] in target.universe for e in universe):
        return False
    for name, fact in source.facts():
        if tuple(mapping[e] for e in fact) not in target.relation(name):
            return False
    return True


class SearchStats:
    """Mutable counters exposed by the backtracking search.

    The benchmark harness reads these to report work done (nodes visited,
    backtracks) alongside wall-clock time.
    """

    __slots__ = ("nodes", "backtracks")

    def __init__(self) -> None:
        self.nodes = 0
        self.backtracks = 0

    def __repr__(self) -> str:
        return f"SearchStats(nodes={self.nodes}, backtracks={self.backtracks})"


def _initial_domains(
    source: Structure, target: Structure
) -> dict[Element, set[Element]] | None:
    """Node-consistent initial domains, or ``None`` if trivially unsat.

    Each element of ``source`` starts with the full universe of ``target``,
    then is narrowed per fact: an element occurring at position ``i`` of a
    fact of relation ``R`` can only map to values occurring at position ``i``
    of some tuple of ``Rᴮ``.
    """
    full = set(target.universe)
    domains: dict[Element, set[Element]] = {
        e: set(full) for e in source.universe
    }
    position_values: dict[tuple[str, int], set[Element]] = {}
    for symbol, rel in target.relations():
        for i in range(symbol.arity):
            position_values[(symbol.name, i)] = {t[i] for t in rel}
    for name, fact in source.facts():
        for i, element in enumerate(fact):
            domains[element] &= position_values[(name, i)]
            if not domains[element]:
                return None
    return domains


def _facts_by_element(
    source: Structure,
) -> dict[Element, list[tuple[str, tuple[Element, ...]]]]:
    index: dict[Element, list[tuple[str, tuple[Element, ...]]]] = {
        e: [] for e in source.universe
    }
    for name, fact in source.facts():
        seen: set[Element] = set()
        for element in fact:
            if element not in seen:
                index[element].append((name, fact))
                seen.add(element)
    return index


def _search(
    source: Structure,
    target: Structure,
    *,
    stats: SearchStats,
    order: Sequence[Element] | None,
    fixed: Mapping[Element, Element] | None = None,
) -> Iterator[Assignment]:
    """Backtracking generator over all homomorphisms source → target.

    Uses minimum-remaining-values (MRV) dynamic variable ordering unless a
    static ``order`` is supplied, and forward checking: assigning ``h(a)``
    filters, for every fact containing ``a``, the values still possible for
    the fact's other elements.
    """
    domains = _initial_domains(source, target)
    if domains is None:
        return
    for element, value in (fixed or {}).items():
        if element not in domains or value not in domains[element]:
            return
        domains[element] = {value}
    if not source.universe:
        yield {}
        return
    facts_of = _facts_by_element(source)
    assignment: Assignment = {}
    static_order = list(order) if order is not None else None

    def pick_unassigned() -> Element:
        if static_order is not None:
            for element in static_order:
                if element not in assignment:
                    return element
        return min(
            (e for e in domains if e not in assignment),
            key=lambda e: (len(domains[e]), _sort_key(e)),
        )

    def prune_after(element: Element) -> list[tuple[Element, Element]] | None:
        """Forward-check facts touching ``element``.

        Returns the list of (element, removed value) prunings for undo, or
        ``None`` on a wipe-out.
        """
        removed: list[tuple[Element, Element]] = []
        for name, fact in facts_of[element]:
            rel = target.relation(name)
            compatible = [
                t
                for t in rel
                if all(
                    assignment.get(fact[i], t[i]) == t[i]
                    for i in range(len(fact))
                )
            ]
            if not compatible:
                _undo(removed)
                return None
            for i, other in enumerate(fact):
                if other in assignment:
                    continue
                allowed = {t[i] for t in compatible}
                for value in list(domains[other]):
                    if value not in allowed:
                        domains[other].discard(value)
                        removed.append((other, value))
                if not domains[other]:
                    _undo(removed)
                    return None
        return removed

    def _undo(removed: list[tuple[Element, Element]]) -> None:
        for other, value in removed:
            domains[other].add(value)

    def extend() -> Iterator[Assignment]:
        if len(assignment) == len(domains):
            yield dict(assignment)
            return
        element = pick_unassigned()
        for value in sorted(domains[element], key=_sort_key):
            stats.nodes += 1
            assignment[element] = value
            removed = prune_after(element)
            if removed is not None:
                yield from extend()
                _undo(removed)
            else:
                stats.backtracks += 1
            del assignment[element]

    yield from extend()


def find_homomorphism(
    source: Structure,
    target: Structure,
    *,
    order: Sequence[Element] | None = None,
    stats: SearchStats | None = None,
    fixed: Mapping[Element, Element] | None = None,
    engine: str | None = None,
) -> Assignment | None:
    """Find one homomorphism ``source → target`` or return ``None``.

    This is the generic (worst-case exponential) baseline solver.  ``order``
    fixes a static variable order; by default MRV dynamic ordering is used.
    ``fixed`` pre-pins the images of some elements (used e.g. to search for
    retractions).  Pass a :class:`SearchStats` to collect search counters.
    ``engine`` selects the compiled kernel (default) or the legacy
    reference search; both return the same assignment.
    """
    _check_same_vocabulary(source, target)
    if source.universe and not target.universe:
        return None
    stats = stats if stats is not None else SearchStats()
    if resolve_engine(engine) == LEGACY:
        results = _search(source, target, stats=stats, order=order, fixed=fixed)
    else:
        results = search_homomorphisms(
            source, target, stats=stats, order=order, fixed=fixed
        )
    for assignment in results:
        return assignment
    return None


def homomorphism_exists(
    source: Structure,
    target: Structure,
    *,
    order: Sequence[Element] | None = None,
    stats: SearchStats | None = None,
    engine: str | None = None,
) -> bool:
    """Decision-problem convenience wrapper around :func:`find_homomorphism`.

    Accepts and propagates the same ``order=`` / ``stats=`` / ``engine=``
    keywords as :func:`find_homomorphism`.
    """
    return (
        find_homomorphism(
            source, target, order=order, stats=stats, engine=engine
        )
        is not None
    )


def all_homomorphisms(
    source: Structure,
    target: Structure,
    *,
    order: Sequence[Element] | None = None,
    stats: SearchStats | None = None,
    engine: str | None = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism ``source → target`` (deterministic order).

    Both engines enumerate in the same order; ``order=`` / ``stats=`` work
    as in :func:`find_homomorphism`.
    """
    _check_same_vocabulary(source, target)
    if source.universe and not target.universe:
        return
    stats = stats if stats is not None else SearchStats()
    if resolve_engine(engine) == LEGACY:
        yield from _search(source, target, stats=stats, order=order)
    else:
        yield from search_homomorphisms(
            source, target, stats=stats, order=order
        )


def count_homomorphisms(
    source: Structure,
    target: Structure,
    *,
    order: Sequence[Element] | None = None,
    stats: SearchStats | None = None,
    engine: str | None = None,
) -> int:
    """The number of homomorphisms ``source → target``.

    Accepts and propagates the same ``order=`` / ``stats=`` / ``engine=``
    keywords as :func:`find_homomorphism`.  On the kernel engine the
    count comes from :func:`repro.kernel.search.count_solutions`, which
    walks the identical search tree but only tallies the leaves instead
    of materializing one assignment dict per homomorphism; the legacy
    engine counts by exhausting the reference enumerator.
    """
    _check_same_vocabulary(source, target)
    if source.universe and not target.universe:
        return 0
    stats = stats if stats is not None else SearchStats()
    if resolve_engine(engine) == LEGACY:
        return sum(
            1 for _ in _search(source, target, stats=stats, order=order)
        )
    return count_solutions(source, target, stats=stats, order=order)


def image(
    source: Structure,
    mapping: Mapping[Element, Element],
    universe: Sequence[Element] | None = None,
) -> Structure:
    """The homomorphic image of ``source`` under ``mapping``.

    The image has universe ``mapping[source.universe]`` (extended by the
    optional explicit ``universe``) and relations the pointwise images of the
    relations of ``source``.  There is always a surjective homomorphism from
    ``source`` onto its image, a fact exploited by the core/minimization code.
    """
    elements = {mapping[e] for e in source.universe}
    if universe is not None:
        elements.update(universe)
    relations = {
        symbol.name: {tuple(mapping[e] for e in fact) for fact in rel}
        for symbol, rel in source.relations()
    }
    return Structure(source.vocabulary, elements, relations)
