"""Graphs as relational structures, and the paper's stock examples.

Graphs are structures over the vocabulary ``{E/2}``.  Undirected graphs are
encoded symmetrically (both ``(u, v)`` and ``(v, u)``), matching the paper's
usage: CSP(K₂) is 2-colorability, CSP(Kₖ) is k-colorability, CSP(C₄) for the
*directed* 4-cycle is Example 3.8, cliques vs. graphs give the
non-uniformizable clique problem of Section 2, and paths give Hamiltonian
path.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable

import networkx as nx

from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary

__all__ = [
    "GRAPH_VOCABULARY",
    "EDGE",
    "graph_structure",
    "digraph_structure",
    "to_networkx",
    "clique",
    "path",
    "cycle",
    "directed_cycle",
    "random_graph",
    "random_digraph",
    "is_two_colorable",
]

Element = Hashable

EDGE = RelationSymbol("E", 2)
GRAPH_VOCABULARY = Vocabulary([EDGE])


def graph_structure(
    vertices: Iterable[Element], edges: Iterable[tuple[Element, Element]]
) -> Structure:
    """An *undirected* graph as a structure (edges stored symmetrically)."""
    facts: set[tuple[Element, Element]] = set()
    for u, v in edges:
        facts.add((u, v))
        facts.add((v, u))
    return Structure(GRAPH_VOCABULARY, vertices, {"E": facts})


def digraph_structure(
    vertices: Iterable[Element], edges: Iterable[tuple[Element, Element]]
) -> Structure:
    """A *directed* graph as a structure (edges stored as given)."""
    return Structure(GRAPH_VOCABULARY, vertices, {"E": set(map(tuple, edges))})


def to_networkx(structure: Structure, *, directed: bool = False):
    """Convert an ``{E/2}`` structure to a networkx (Di)Graph."""
    graph = nx.DiGraph() if directed else nx.Graph()
    graph.add_nodes_from(structure.universe)
    graph.add_edges_from(structure.relation("E"))
    return graph


def clique(k: int) -> Structure:
    """The complete graph K_k; CSP(K_k) is k-colorability (k ≥ 1)."""
    if k < 1:
        raise ValueError("clique size must be at least 1")
    vertices = range(k)
    edges = [(i, j) for i in vertices for j in vertices if i != j]
    return digraph_structure(vertices, edges)


def path(n: int) -> Structure:
    """The undirected path with ``n`` vertices ``0 — 1 — ⋯ — n-1``."""
    if n < 1:
        raise ValueError("path length must be at least 1")
    return graph_structure(range(n), [(i, i + 1) for i in range(n - 1)])


def cycle(n: int) -> Structure:
    """The undirected cycle Cₙ (n ≥ 3)."""
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    return graph_structure(range(n), [(i, (i + 1) % n) for i in range(n)])


def directed_cycle(n: int) -> Structure:
    """The directed cycle on ``n`` vertices; ``directed_cycle(4)`` is the C₄
    of Example 3.8."""
    if n < 1:
        raise ValueError("directed cycle needs at least 1 vertex")
    return digraph_structure(range(n), [(i, (i + 1) % n) for i in range(n)])


def random_graph(
    n: int, edge_probability: float, *, seed: int | None = None
) -> Structure:
    """An Erdős–Rényi G(n, p) undirected graph as a structure."""
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return graph_structure(range(n), edges)


def random_digraph(
    n: int, edge_probability: float, *, seed: int | None = None
) -> Structure:
    """A random directed graph (no self-loops) as a structure."""
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if i != j and rng.random() < edge_probability
    ]
    return digraph_structure(range(n), edges)


def is_two_colorable(structure: Structure) -> bool:
    """Bipartiteness of the underlying undirected graph.

    Used as an oracle in tests of Examples 3.7/3.8: a directed graph maps
    homomorphically to C₄ iff it is 2-colorable.
    """
    graph = nx.Graph()
    graph.add_nodes_from(structure.universe)
    graph.add_edges_from(structure.relation("E"))
    graph.remove_edges_from(nx.selfloop_edges(graph))
    if any(u == v for u, v in structure.relation("E")):
        return False
    return nx.is_bipartite(graph)
