"""Datalog programs (Section 4.1 of the paper).

A Datalog program is a finite set of rules ``t₀ :- t₁, …, t_m`` of atomic
formulas.  Head predicates are the intensional database predicates (IDBs);
the rest are extensional (EDBs).  One IDB is the *goal*.  Semantics are
least fixed-points of the immediate-consequence operator, computed
bottom-up in polynomial time (see :mod:`repro.datalog.evaluation`).

``k-Datalog`` (the class the paper's Theorem 4.9 is about) restricts every
rule to at most ``k`` distinct variables in the body and at most ``k`` in
the head.

The paper's rules may be *unsafe* — head variables that do not occur in the
body (this happens in the canonical program ρ_B of Theorem 4.7.2, whose
first rule kind has an empty body).  Our engine interprets such variables
as ranging over the active domain of the input structure, the standard
reading of the paper's construction where "universal quantifiers … can be
replaced by finitary conjunctions over the elements".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.cq.parser import parse_atom_list, _ATOM_RE, _parse_terms
from repro.cq.query import Atom
from repro.exceptions import DatalogError
from repro.structures.vocabulary import Vocabulary

__all__ = ["Rule", "DatalogProgram", "parse_program", "parse_rule"]


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head :- body``; an empty body is allowed."""

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    @property
    def head_variables(self) -> frozenset[str]:
        return frozenset(self.head.terms)

    @property
    def body_variables(self) -> frozenset[str]:
        names: set[str] = set()
        for atom in self.body:
            names.update(atom.terms)
        return frozenset(names)

    @property
    def unsafe_variables(self) -> frozenset[str]:
        """Head variables not bound by the body (domain-expanded)."""
        return self.head_variables - self.body_variables

    def num_distinct_variables(self) -> tuple[int, int]:
        """(body variable count, head variable count) for k-Datalog checks."""
        return len(self.body_variables), len(self.head_variables)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head} :- ."
        return f"{self.head} :- {', '.join(map(str, self.body))}."


class DatalogProgram:
    """A Datalog program with a designated goal predicate."""

    def __init__(self, rules: Iterable[Rule], goal: str) -> None:
        self.rules = tuple(rules)
        self.goal = goal
        self._validate()

    def _validate(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                existing = arities.get(atom.relation)
                if existing is not None and existing != atom.arity:
                    raise DatalogError(
                        f"predicate {atom.relation!r} used with arities "
                        f"{existing} and {atom.arity}"
                    )
                arities[atom.relation] = atom.arity
        if self.goal not in self.idb_predicates:
            raise DatalogError(
                f"goal {self.goal!r} is not the head of any rule"
            )
        self._arities = arities

    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(rule.head.relation for rule in self.rules)

    @property
    def edb_predicates(self) -> frozenset[str]:
        used: set[str] = set()
        for rule in self.rules:
            used.update(atom.relation for atom in rule.body)
        return frozenset(used) - self.idb_predicates

    def edb_vocabulary(self) -> Vocabulary:
        """The vocabulary of the extensional predicates."""
        return Vocabulary.from_arities(
            {name: self._arities[name] for name in self.edb_predicates}
        )

    def arity(self, predicate: str) -> int:
        return self._arities[predicate]

    def max_distinct_variables(self) -> int:
        """The smallest k such that the program is in k-Datalog."""
        best = 0
        for rule in self.rules:
            body_count, head_count = rule.num_distinct_variables()
            best = max(best, body_count, head_count)
        return best

    def is_k_datalog(self, k: int) -> bool:
        """Membership in k-Datalog (≤ k distinct variables per rule body
        and per rule head)."""
        return self.max_distinct_variables() <= k

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


def parse_rule(text: str) -> Rule:
    """Parse one rule, e.g. ``P(X, Y) :- P(X, Z), E(Z, Y)`` (or a bare
    body-less head ``T(X)``)."""
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
    else:
        head_text, body_text = text, ""
    match = _ATOM_RE.fullmatch(head_text)
    if not match:
        raise DatalogError(f"cannot parse rule head {head_text!r}")
    terms = (
        _parse_terms(match.group(2), head_text)
        if match.group(2) is not None
        else ()
    )
    head = Atom(match.group(1), terms)
    body = tuple(parse_atom_list(body_text))
    return Rule(head, body)


def parse_program(text: str, goal: str) -> DatalogProgram:
    """Parse a multi-line program; ``#`` and ``%`` start comments."""
    rules = []
    for line in text.splitlines():
        line = re.sub(r"[#%].*$", "", line).strip()
        if not line:
            continue
        rules.append(parse_rule(line))
    return DatalogProgram(rules, goal)
