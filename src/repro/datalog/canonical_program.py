"""The canonical k-Datalog program ρ_B of Theorem 4.7.2.

For every finite structure B and every k, there is a k-Datalog program ρ_B
expressing "the Spoiler wins the existential k-pebble game on (A, B)" —
and by Theorem 4.8 this single program expresses cCSP(B) whenever cCSP(B)
is expressible in k-Datalog at all (Remark 4.10.1: ρ_B is the Feder–Vardi
canonical program).

Construction (verbatim from the paper, 0-based positions):

* one k-ary IDB ``T_b`` per k-tuple ``b ∈ Bᵏ``;
* for ``b`` with ``b_i ≠ b_j``: the body-less rule
  ``T_b(x₁,…,x_i,…,x_i,…,x_k)`` (positions i and j share a variable);
* for every m-ary EDB symbol R and index tuple ``(i₁,…,i_m) ∈ [k]^m`` with
  ``(b_{i₁},…,b_{i_m}) ∉ R^B``: the rule ``T_b(x₁,…,x_k) :- R(x_{i₁},…,x_{i_m})``;
* for every pebble j: ``T_b(x₁,…,x_k) :- ⋀_{c∈B} T_{b[j↦c]}(x₁,…,y,…,x_k)``
  (fresh y at position j);
* goal: ``S :- ⋀_{b∈Bᵏ} T_b(x₁,…,x_k)``.

Tuple names are mangled into predicate names ``T[b1,b2,…]``.  The program
has |B|^k IDBs and O(|B|^k · (k² + Σ_R k^{arity})) rules — polynomial for
fixed B and k, which is the point of nonuniform expressibility.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product
from typing import Hashable

from repro import faultinject
from repro.cq.query import Atom
from repro.datalog.program import DatalogProgram, Rule
from repro.exceptions import ResourceBudgetError
from repro.kernel.compile import CompiledTarget, compile_target
from repro.kernel.engine import KERNEL, resolve_engine
from repro.structures.structure import Structure

__all__ = ["canonical_program", "canonical_refutes", "GOAL_NAME"]

Element = Hashable

GOAL_NAME = "S"


def _predicate_name(b: tuple[Element, ...]) -> str:
    inner = ",".join(str(component) for component in b)
    return f"T[{inner}]"


def canonical_program(target: Structure, k: int) -> DatalogProgram:
    """Build ρ_B for the structure ``target`` and pebble count ``k``.

    Evaluating the returned program on a structure A derives the goal
    ``S`` iff the Spoiler wins the existential k-pebble game on (A, B);
    the test suite cross-checks this against
    :func:`repro.pebble.game.spoiler_wins`.

    The construction is memoized (structures hash and compare by value),
    so the template workload — one ρ_B against many sources — builds the
    |B|^k-rule program once; the compiled evaluator's per-program caches
    then also persist across calls.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not target.universe:
        raise ValueError("canonical program needs a non-empty target")
    return _cached_canonical_program(target, k)


@lru_cache(maxsize=128)
def _cached_canonical_program(target: Structure, k: int) -> DatalogProgram:
    # Read through the process's persistent store first: ρ_B is a pure
    # function of (B, k), so a record written by any earlier process
    # generation is the program — |B|^k rule construction skipped.  The
    # lru_cache above makes the store consultation a once-per-process
    # event per (B, k); a store-less process pays nothing but the
    # ``None`` check.  Imported lazily: persist's codec knows every
    # artifact type, so importing it at module scope would be a cycle.
    from repro.persist import codec as _codec
    from repro.persist import runtime as _runtime

    store = _runtime.default_store()
    key = None
    if store is not None:
        from repro.structures.fingerprint import canonical_fingerprint

        key = _codec.datalog_key(canonical_fingerprint(target), k)
        stored = store.get("datalog", key)
        if stored is not None:
            return stored  # type: ignore[return-value]
    program = _build_canonical_program(target, k)
    if store is not None and key is not None:
        store.put("datalog", key, program)
    return program


def _build_canonical_program(target: Structure, k: int) -> DatalogProgram:
    elements = target.sorted_universe
    variables = tuple(f"x{i}" for i in range(k))
    rules: list[Rule] = []

    tuples_b = list(product(elements, repeat=k))
    for b in tuples_b:
        head_name = _predicate_name(b)

        # Kind 1: the correspondence is not a mapping.
        for i in range(k):
            for j in range(i + 1, k):
                if b[i] != b[j]:
                    terms = list(variables)
                    terms[j] = variables[i]
                    rules.append(Rule(Atom(head_name, tuple(terms)), ()))

        # Kind 2: the mapping is not a partial homomorphism.
        for symbol, rel in target.relations():
            m = symbol.arity
            for indices in product(range(k), repeat=m):
                image = tuple(b[i] for i in indices)
                if image not in rel:
                    body = (
                        Atom(
                            symbol.name,
                            tuple(variables[i] for i in indices),
                        ),
                    )
                    rules.append(
                        Rule(Atom(head_name, variables), body)
                    )

        # Kind 3: the Spoiler lifts pebble j and wins everywhere it lands.
        for j in range(k):
            body = tuple(
                Atom(
                    _predicate_name(b[:j] + (c,) + b[j + 1 :]),
                    variables[:j] + ("y",) + variables[j + 1 :],
                )
                for c in elements
            )
            rules.append(Rule(Atom(head_name, variables), body))

    # Goal: some placement of the first k pebbles beats every reply.
    goal_body = tuple(
        Atom(_predicate_name(b), variables) for b in tuples_b
    )
    rules.append(Rule(Atom(GOAL_NAME, ()), goal_body))
    return DatalogProgram(rules, GOAL_NAME)


def canonical_refutes(
    source: Structure,
    target: Structure | CompiledTarget,
    k: int,
    *,
    engine: str | None = None,
) -> bool:
    """Does the canonical program ρ_B derive its goal on ``source``?

    ``True`` means ρ_B certifies ``source ↛ target`` (Theorem 4.8's easy
    direction); ``False`` means the Duplicator survives and the answer
    needs a complete engine.

    This is the Theorem 4.2 identity made executable in both directions:
    ρ_B derives ``S`` on A **iff** the Spoiler wins the existential
    k-pebble game on (A, B).  The kernel engine therefore never
    materializes the |B|^k-rule program at all — it plays the compiled
    game (:func:`repro.kernel.pebblek.spoiler_wins_k`) on the original
    target, which is the whole point of routing the decision through the
    theorem.  The legacy engine builds ρ_B and evaluates it bottom-up,
    serving as the parity oracle for the identity itself.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if faultinject.fires("datalogk.budget"):
        # The chaos harness models a binding-space budget breach in the
        # canonical-Datalog decision (the real guard lives in
        # repro.kernel.datalogk, which a materialized ρ_B would hit).
        raise ResourceBudgetError(
            "injected binding-space budget breach (datalogk.budget)"
        )
    ctarget = compile_target(target)
    if not ctarget.values:
        raise ValueError("canonical program needs a non-empty target")
    if resolve_engine(engine) == KERNEL:
        from repro.kernel.pebblek import spoiler_wins_k

        return spoiler_wins_k(source, ctarget, k)
    from repro.datalog.evaluation import goal_holds

    return goal_holds(
        canonical_program(ctarget.structure, k), source, engine="legacy"
    )
