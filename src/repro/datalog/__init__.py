"""Datalog and constraint satisfaction (Section 4).

A bottom-up Datalog engine (semi-naive evaluation), k-Datalog membership
checks, and the canonical program ρ_B of Theorem 4.7.2 that expresses
"the Spoiler wins the existential k-pebble game on (A, B)".
"""

from repro.datalog.canonical_program import GOAL_NAME, canonical_program
from repro.datalog.evaluation import Database, evaluate_program, goal_holds
from repro.datalog.program import (
    DatalogProgram,
    Rule,
    parse_program,
    parse_rule,
)

__all__ = [
    "Rule",
    "DatalogProgram",
    "parse_rule",
    "parse_program",
    "evaluate_program",
    "goal_holds",
    "Database",
    "canonical_program",
    "GOAL_NAME",
]
