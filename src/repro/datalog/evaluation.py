"""Bottom-up Datalog evaluation (least fixed-point semantics).

Semi-naive evaluation: each round re-fires only rules with an IDB body atom
whose relation gained facts in the previous round, terminating at the least
fixed point in polynomially many steps (Section 4.1: "the bottom-up
evaluation of the least fixed-point of the program terminates within a
polynomial number of steps").

Unsafe head variables — head variables not occurring in the body — range
over the *active domain* of the input structure, the finitary-conjunction
reading the paper uses when deriving the canonical program ρ_B from the
LFP formula of Theorem 4.7.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cq.query import Atom
from repro.datalog.program import DatalogProgram, Rule
from repro.exceptions import DatalogError
from repro.kernel.engine import KERNEL, resolve_engine
from repro.structures.structure import Structure, _sort_key

__all__ = [
    "evaluate_program",
    "goal_holds",
    "immediate_consequences",
    "Database",
]

Element = Hashable
Row = tuple[Element, ...]
Database = dict[str, set[Row]]


def _match_atom(
    atom: Atom,
    relation: Iterable[Row],
    bindings: list[dict[str, Element]],
) -> list[dict[str, Element]]:
    """Extend each binding with matches of ``atom`` against ``relation``."""
    extended: list[dict[str, Element]] = []
    rows = list(relation)
    for binding in bindings:
        for row in rows:
            candidate = dict(binding)
            ok = True
            for term, value in zip(atom.terms, row):
                existing = candidate.get(term)
                if existing is None:
                    candidate[term] = value
                elif existing != value:
                    ok = False
                    break
            if ok:
                extended.append(candidate)
    return extended


def _fire_rule(
    rule: Rule,
    relations: Mapping[str, set[Row]],
    domain: list[Element],
    delta_focus: tuple[int, set[Row]] | None,
) -> set[Row]:
    """All head tuples derivable by one rule.

    ``delta_focus = (body index, delta rows)`` restricts that one body atom
    to the newly derived rows (the semi-naive trick); ``None`` evaluates
    the rule in full.
    """
    bindings: list[dict[str, Element]] = [{}]
    for index, atom in enumerate(rule.body):
        if delta_focus is not None and index == delta_focus[0]:
            rows: Iterable[Row] = delta_focus[1]
        else:
            rows = relations.get(atom.relation, set())
        bindings = _match_atom(atom, rows, bindings)
        if not bindings:
            return set()

    unsafe = sorted(rule.unsafe_variables)
    derived: set[Row] = set()
    for binding in bindings:
        assignments = [binding]
        for variable in unsafe:
            assignments = [
                {**assignment, variable: value}
                for assignment in assignments
                for value in domain
            ]
        for assignment in assignments:
            derived.add(
                tuple(assignment[t] for t in rule.head.terms)
            )
    return derived


def evaluate_program(
    program: DatalogProgram,
    structure: Structure,
    *,
    method: str = "semi_naive",
    engine: str | None = None,
) -> Database:
    """Compute the least fixed point of the program on ``structure``.

    The structure provides the EDB relations (missing EDB predicates are
    empty); the result maps every predicate — EDB and IDB — to its final
    set of facts.  ``method`` selects ``"semi_naive"`` (default) or
    ``"naive"`` (every rule re-fired in full each round; kept as the
    ablation baseline for experiment A4 — both must compute the same
    fixpoint).  ``engine`` follows the library-wide flag: the compiled
    bitset evaluator (:mod:`repro.kernel.datalogk`) by default, this
    module's reference loops with ``engine="legacy"`` — both return the
    identical database (the parity suites assert fact-for-fact equality).
    """
    if resolve_engine(engine) == KERNEL:
        from repro.kernel.datalogk import evaluate_datalog

        return evaluate_datalog(program, structure, method=method)
    if method not in ("semi_naive", "naive"):
        raise DatalogError(f"unknown evaluation method {method!r}")
    relations: Database = {}
    for symbol, rel in structure.relations():
        expected = program._arities.get(symbol.name)
        if expected is not None and expected != symbol.arity:
            raise DatalogError(
                f"EDB predicate {symbol.name!r} has arity {symbol.arity} "
                f"in the structure but {expected} in the program"
            )
        relations[symbol.name] = set(rel)
    for predicate in program.idb_predicates:
        if predicate in relations and relations[predicate]:
            raise DatalogError(
                f"IDB predicate {predicate!r} already populated by the "
                "input structure"
            )
        relations.setdefault(predicate, set())
    for predicate in program.edb_predicates:
        relations.setdefault(predicate, set())

    domain = sorted(structure.universe, key=_sort_key)

    if method == "naive":
        changed = True
        while changed:
            changed = False
            for rule in program.rules:
                new = _fire_rule(rule, relations, domain, None)
                fresh = new - relations[rule.head.relation]
                if fresh:
                    relations[rule.head.relation] |= fresh
                    changed = True
        return relations

    # Round 0: fire every rule in full.
    delta: Database = {p: set() for p in program.idb_predicates}
    for rule in program.rules:
        new = _fire_rule(rule, relations, domain, None)
        fresh = new - relations[rule.head.relation]
        relations[rule.head.relation] |= fresh
        delta[rule.head.relation] |= fresh

    # Semi-naive rounds: a rule re-fires once per body atom whose predicate
    # changed, with that atom restricted to the delta.
    while any(delta.values()):
        next_delta: Database = {p: set() for p in program.idb_predicates}
        for rule in program.rules:
            for index, atom in enumerate(rule.body):
                changed = delta.get(atom.relation)
                if not changed:
                    continue
                new = _fire_rule(
                    rule, relations, domain, (index, changed)
                )
                fresh = new - relations[rule.head.relation]
                relations[rule.head.relation] |= fresh
                next_delta[rule.head.relation] |= fresh
        delta = next_delta
    return relations


def goal_holds(
    program: DatalogProgram,
    structure: Structure,
    *,
    engine: str | None = None,
) -> bool:
    """Truth of the (0-ary or n-ary) goal: non-emptiness of its relation.

    The kernel engine stops its fixpoint run the moment the goal derives
    (sound: evaluation is monotone); the legacy engine computes the full
    fixpoint first.  The verdicts are identical either way.
    """
    if resolve_engine(engine) == KERNEL:
        from repro.kernel.datalogk import datalog_goal_holds

        return datalog_goal_holds(program, structure)
    relations = evaluate_program(program, structure, engine="legacy")
    return bool(relations[program.goal])


def immediate_consequences(
    program: DatalogProgram,
    database: Mapping[str, set[Row]],
    domain: Iterable[Element],
) -> Database:
    """One application of the immediate-consequence operator T_P.

    Fires every rule once against ``database`` (unsafe head variables
    ranging over ``domain``) and returns the derived facts per IDB
    predicate.  The least fixed point is exactly the T_P-closed superset
    of the EDB — the property suite uses this to check idempotence:
    applying T_P to :func:`evaluate_program`'s output derives nothing
    outside it.
    """
    derived: Database = {p: set() for p in program.idb_predicates}
    ordered = sorted(domain, key=_sort_key)
    for rule in program.rules:
        derived[rule.head.relation] |= _fire_rule(
            rule, database, ordered, None
        )
    return derived
