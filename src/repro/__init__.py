"""repro — Conjunctive-Query Containment and Constraint Satisfaction.

A complete, from-scratch reproduction of Kolaitis & Vardi, *Conjunctive-
Query Containment and Constraint Satisfaction* (PODS 1998 / JCSS 2000):

* the homomorphism problem over finite relational structures (Section 2),
* conjunctive queries, canonical databases, Chandra–Merlin containment,
  evaluation, minimization (Section 2),
* Schaefer classification, defining formulas, uniform Boolean CSP
  algorithms, Booleanization, Saraiya's two-atom containment (Section 3),
* Datalog, existential k-pebble games, the canonical program rho_B, strong
  k-consistency (Section 4),
* tree decompositions, the treewidth homomorphism DP, EFO^{k+1}
  translation and evaluation, the dual-graph binary encoding (Section 5).

Quickstart::

    from repro import parse_query, contains, solve
    q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
    q2 = parse_query("Q(X) :- E(X, Y).")
    assert contains(q1, q2)

See README.md for the architecture overview and EXPERIMENTS.md for the
theorem-by-theorem experiment suite.
"""

from repro.core.pipeline import (
    Solution,
    SolveStats,
    SolverPipeline,
    default_pipeline,
    solve,
    solve_many,
)
from repro.kernel.engine import set_default_engine, use_engine
from repro.core.problem import HomomorphismProblem
from repro.service import Priority, ServiceConfig, SolveService
from repro.cq.containment import (
    containment_witness,
    contains,
    contains_via_evaluation,
    equivalent,
)
from repro.cq.evaluation import evaluate, evaluate_join
from repro.cq.minimize import minimize
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.structures.homomorphism import (
    all_homomorphisms,
    count_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure, StructureBuilder
from repro.structures.vocabulary import RelationSymbol, Vocabulary

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # structures & homomorphisms
    "RelationSymbol",
    "Vocabulary",
    "Structure",
    "StructureBuilder",
    "is_homomorphism",
    "find_homomorphism",
    "homomorphism_exists",
    "all_homomorphisms",
    "count_homomorphisms",
    # conjunctive queries
    "Atom",
    "ConjunctiveQuery",
    "parse_query",
    "contains",
    "contains_via_evaluation",
    "containment_witness",
    "equivalent",
    "evaluate",
    "evaluate_join",
    "minimize",
    # the unified problem and the uniform solver pipeline
    "HomomorphismProblem",
    "Solution",
    "SolveStats",
    "SolverPipeline",
    "default_pipeline",
    "solve",
    "solve_many",
    # the compiled kernel's engine flag (kernel vs legacy oracle)
    "set_default_engine",
    "use_engine",
    # the concurrent solve service
    "Priority",
    "ServiceConfig",
    "SolveService",
]
