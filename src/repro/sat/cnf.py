"""CNF formulas in DIMACS-style integer encoding.

Variables are positive integers ``1..n``; a literal is ``v`` (positive) or
``-v`` (negated); a clause is a tuple of literals.  This is the substrate
for the satisfiability algorithms that Section 3 of the paper plugs into:
Horn-SAT and 2-SAT are linear [BB79, DG84, LP97], affine satisfiability is
cubic via Gaussian elimination [Sch78], and DPLL is the general baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = ["Clause", "CNF", "clause_is_horn", "clause_is_dual_horn"]

Literal = int
Clause = tuple[Literal, ...]


def clause_is_horn(clause: Clause) -> bool:
    """At most one positive literal (a Horn clause)."""
    return sum(1 for lit in clause if lit > 0) <= 1


def clause_is_dual_horn(clause: Clause) -> bool:
    """At most one negative literal (a dual-Horn clause)."""
    return sum(1 for lit in clause if lit < 0) <= 1


@dataclass
class CNF:
    """A CNF formula: a number of variables and a list of clauses.

    The empty clause ``()`` is allowed and makes the formula unsatisfiable.
    Clauses keep their literal multiset as given (duplicates are harmless).
    """

    num_vars: int = 0
    clauses: list[Clause] = field(default_factory=list)

    def __post_init__(self) -> None:
        for clause in self.clauses:
            self._validate(clause)

    def _validate(self, clause: Iterable[Literal]) -> None:
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if abs(lit) > self.num_vars:
                raise ValueError(
                    f"literal {lit} exceeds num_vars={self.num_vars}"
                )

    def add_clause(self, clause: Iterable[Literal]) -> None:
        clause = tuple(clause)
        self._validate(clause)
        self.clauses.append(clause)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    @property
    def size(self) -> int:
        """Total number of literal occurrences (the length ‖φ‖)."""
        return sum(len(clause) for clause in self.clauses)

    # -- syntactic classes (Schaefer's four nontrivial cases) ----------------

    @property
    def is_horn(self) -> bool:
        return all(clause_is_horn(c) for c in self.clauses)

    @property
    def is_dual_horn(self) -> bool:
        return all(clause_is_dual_horn(c) for c in self.clauses)

    @property
    def is_2cnf(self) -> bool:
        return all(len(c) <= 2 for c in self.clauses)

    # -- semantics -------------------------------------------------------------

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Truth value under a total assignment ``{var: bool}``."""
        for clause in self.clauses:
            if not any(
                assignment[abs(lit)] == (lit > 0) for lit in clause
            ):
                return False
        return True

    def all_models(self) -> Iterator[dict[int, bool]]:
        """Brute-force enumeration of all models (test oracle only)."""
        n = self.num_vars
        for bits in range(1 << n):
            assignment = {
                v: bool((bits >> (v - 1)) & 1) for v in range(1, n + 1)
            }
            if self.evaluate(assignment):
                yield assignment

    def is_satisfiable_bruteforce(self) -> bool:
        """Exponential satisfiability check (test oracle only)."""
        for _model in self.all_models():
            return True
        return False
