"""Linear-time 2-SAT.

Two independent algorithms are provided, each linear in the formula length:

* :func:`solve_2sat` — the implication-graph / strongly-connected-components
  algorithm (Aspvall–Plass–Tarjan): a 2-CNF is satisfiable iff no variable
  shares an SCC with its negation; a model is read off the reverse
  topological order.
* :func:`solve_2sat_phases` — the phase-propagation algorithm of [LP97] that
  Theorem 3.4 emulates for bijunctive structures: pick an unassigned
  variable, guess a value, propagate through binary clauses; on conflict
  retry the opposite value; if both fail the formula is unsatisfiable.

Having both lets the test suite cross-check them, and lets the benchmark
suite compare the emulated structural algorithm of Theorem 3.4 against its
formula-level ancestor.

Clauses of length 1 are treated as units; the empty clause is UNSAT.
"""

from __future__ import annotations

from repro.sat.cnf import CNF

__all__ = ["solve_2sat", "solve_2sat_phases"]


def _implication_graph(formula: CNF) -> dict[int, list[int]]:
    """Edges of the implication graph over literals (ints, ±v).

    A clause (a ∨ b) yields ¬a → b and ¬b → a; a unit clause (a) yields
    ¬a → a, which forces a.
    """
    graph: dict[int, list[int]] = {}
    for v in range(1, formula.num_vars + 1):
        graph[v] = []
        graph[-v] = []
    for clause in formula.clauses:
        if len(clause) == 1:
            (a,) = clause
            graph[-a].append(a)
        elif len(clause) == 2:
            a, b = clause
            graph[-a].append(b)
            graph[-b].append(a)
        else:
            raise ValueError(f"clause {clause!r} is not binary")
    return graph


def _tarjan_scc(graph: dict[int, list[int]]) -> dict[int, int]:
    """Iterative Tarjan SCC; returns component ids in reverse topological
    order of the condensation (higher id = earlier in topological order)."""
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    component: dict[int, int] = {}
    counter = 0
    comp_counter = 0

    for root in graph:
        if root in index_of:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbours = graph[node]
            while child_index < len(neighbours):
                successor = neighbours[child_index]
                child_index += 1
                if successor not in index_of:
                    work[-1] = (node, child_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_counter
                    if member == node:
                        break
                comp_counter += 1
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


def solve_2sat(formula: CNF) -> dict[int, bool] | None:
    """Satisfying assignment for a 2-CNF via implication-graph SCCs."""
    if any(len(c) == 0 for c in formula.clauses):
        return None
    if not formula.is_2cnf:
        raise ValueError("formula is not 2-CNF")
    graph = _implication_graph(formula)
    component = _tarjan_scc(graph)
    assignment: dict[int, bool] = {}
    for v in range(1, formula.num_vars + 1):
        if component[v] == component[-v]:
            return None
        # Tarjan emits components in reverse topological order, so a literal
        # is implied-by (downstream of) its negation iff its component id is
        # smaller; we set v true iff comp(v) < comp(-v).
        assignment[v] = component[v] < component[-v]
    return assignment


def solve_2sat_phases(formula: CNF) -> dict[int, bool] | None:
    """Satisfying assignment for a 2-CNF via [LP97] phase propagation.

    Each phase guesses a value for one unassigned variable and propagates
    through the binary clauses; if both guesses conflict, the formula is
    unsatisfiable.  Every variable is assigned at most twice, so the
    algorithm is linear.
    """
    if any(len(c) == 0 for c in formula.clauses):
        return None
    if not formula.is_2cnf:
        raise ValueError("formula is not 2-CNF")

    # occurrences[lit] = the other literal of every binary clause with lit.
    occurrences: dict[int, list[int]] = {}
    units: list[int] = []
    for clause in formula.clauses:
        if len(clause) == 1:
            units.append(clause[0])
        else:
            a, b = clause
            occurrences.setdefault(a, []).append(b)
            occurrences.setdefault(b, []).append(a)

    assignment: dict[int, bool] = {}

    def propagate(literal: int, trail: list[int]) -> bool:
        """Assign ``literal`` true and cascade; record assignments on trail."""
        pending = [literal]
        while pending:
            lit = pending.pop()
            var, value = abs(lit), lit > 0
            if var in assignment:
                if assignment[var] != value:
                    return False
                continue
            assignment[var] = value
            trail.append(var)
            # Clauses containing ¬lit now need their other literal true.
            pending.extend(occurrences.get(-lit, ()))
        return True

    # Unit clauses are a mandatory first phase: no alternative guess exists.
    trail: list[int] = []
    for unit in units:
        if not propagate(unit, trail):
            return None

    for v in range(1, formula.num_vars + 1):
        if v in assignment:
            continue
        trail = []
        if propagate(v, trail):
            continue
        for var in trail:
            del assignment[var]
        trail = []
        if not propagate(-v, trail):
            return None
    return {
        v: assignment.get(v, False) for v in range(1, formula.num_vars + 1)
    }
