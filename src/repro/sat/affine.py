"""Linear algebra over GF(2): systems, solving, and nullspace bases.

Affine Boolean relations (Schaefer's sixth class) are solution sets of
linear-equation systems over the two-element field.  Theorem 3.2 constructs
a defining formula for an affine relation by computing a basis of the
nullspace of the augmented tuple matrix; Theorem 3.3 then decides
satisfiability of the instantiated system by Gaussian elimination (the
"cubic" case).

Rows are stored as Python integers used as bitmasks — bit ``i`` is the
coefficient of variable ``i`` — which keeps elimination fast without
depending on fixed-width arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["LinearSystemGF2", "nullspace_basis", "solve_gf2"]


@dataclass
class LinearSystemGF2:
    """A system of linear equations over GF(2).

    Each equation is ``(mask, rhs)``: the XOR of the variables whose bits are
    set in ``mask`` must equal ``rhs`` (0 or 1).  ``num_vars`` bounds the bit
    positions used.
    """

    num_vars: int
    equations: list[tuple[int, int]] = field(default_factory=list)

    def add_equation(self, variables: Iterable[int], rhs: int) -> None:
        """Add ``x_{i1} ⊕ … ⊕ x_{il} = rhs`` (variables are 0-based)."""
        mask = 0
        for v in variables:
            if not 0 <= v < self.num_vars:
                raise ValueError(f"variable {v} out of range")
            mask ^= 1 << v  # repeated variables cancel over GF(2)
        self.equations.append((mask, int(rhs) & 1))

    def evaluate(self, assignment: Sequence[int]) -> bool:
        """Truth of the system under a 0/1 vector indexed by variable."""
        word = 0
        for v, bit in enumerate(assignment):
            if bit:
                word |= 1 << v
        return all(
            bin(mask & word).count("1") % 2 == rhs
            for mask, rhs in self.equations
        )


def solve_gf2(system: LinearSystemGF2) -> list[int] | None:
    """One solution of the system as a 0/1 list, or ``None`` if inconsistent.

    Standard Gaussian elimination with partial pivoting on bitmask rows;
    free variables are set to 0.
    """
    rows = [(mask, rhs) for mask, rhs in system.equations if mask or rhs]
    pivots: dict[int, tuple[int, int]] = {}  # pivot bit -> reduced row
    for mask, rhs in rows:
        for bit, (pmask, prhs) in pivots.items():
            if mask & (1 << bit):
                mask ^= pmask
                rhs ^= prhs
        if mask == 0:
            if rhs:
                return None
            continue
        pivot = mask.bit_length() - 1
        pivots[pivot] = (mask, rhs)
    # Back-substitute with free variables at 0.  Every pivot is the highest
    # bit of its row, so processing pivots in increasing order means the
    # non-pivot bits of each row are already known (free vars or lower
    # pivots) when the row is solved.
    solution = [0] * system.num_vars
    for pivot in sorted(pivots):
        mask, rhs = pivots[pivot]
        value = rhs
        rest = mask & ~(1 << pivot)
        while rest:
            bit = rest & -rest
            value ^= solution[bit.bit_length() - 1]
            rest ^= bit
        solution[pivot] = value
    return solution


def nullspace_basis(rows: Sequence[int], num_vars: int) -> list[int]:
    """A basis (as bitmasks) of ``{x : row · x = 0 for every row}`` over GF(2).

    ``rows`` are the matrix rows as bitmasks over ``num_vars`` columns.  This
    is the computation at the heart of Theorem 3.2's affine case: the rows
    are the (augmented) tuples of the relation, and each basis vector of the
    nullspace is one linear equation satisfied by every tuple.
    """
    # Reduce the row space to echelon form to find the pivot columns.
    pivot_rows: dict[int, int] = {}  # pivot bit -> row
    for row in rows:
        for bit, prow in pivot_rows.items():
            if row & (1 << bit):
                row ^= prow
        if row:
            pivot_rows[row.bit_length() - 1] = row
    pivot_bits = set(pivot_rows)
    free_bits = [b for b in range(num_vars) if b not in pivot_bits]
    # For each free column, the canonical nullspace vector sets that free
    # variable to 1, the other free variables to 0, and solves the pivots.
    basis: list[int] = []
    # Every pivot is the highest bit of its row, so solving pivots in
    # increasing order only ever consults already-known bits (free columns
    # or lower pivots).
    ordered_pivots = sorted(pivot_rows)
    for free in free_bits:
        vector = 1 << free
        for pivot in ordered_pivots:
            row = pivot_rows[pivot]
            rest = row & ~(1 << pivot)
            parity = bin(rest & vector).count("1") % 2
            if parity:
                vector |= 1 << pivot
        # One verification pass guards against ordering subtleties.
        if all(bin(r & vector).count("1") % 2 == 0 for r in rows):
            basis.append(vector)
            continue
        # Fall back to full reduction if the quick pass failed (should not
        # happen; kept as a safety net with an explicit resolve).
        vector = _solve_exact(rows, num_vars, free, free_bits)
        basis.append(vector)
    return basis


def _solve_exact(
    rows: Sequence[int], num_vars: int, free: int, free_bits: list[int]
) -> int:
    """Exact nullspace vector with the given free column set to 1."""
    system = LinearSystemGF2(num_vars)
    for row in rows:
        variables = [b for b in range(num_vars) if row & (1 << b)]
        system.add_equation(variables, 0)
    for b in free_bits:
        system.add_equation([b], 1 if b == free else 0)
    solution = solve_gf2(system)
    if solution is None:
        raise AssertionError("nullspace vector must exist")
    vector = 0
    for b, bit in enumerate(solution):
        if bit:
            vector |= 1 << b
    return vector
