"""A DPLL SAT solver — the general-purpose baseline.

Schaefer's dichotomy (Section 3 of the paper) says Boolean CSPs outside the
six tractable classes are NP-complete; DPLL is the honest exponential
algorithm the specialized linear/quadratic/cubic solvers are benchmarked
against.  The implementation is classic: unit propagation, pure-literal
elimination, and branching on the most frequent unassigned variable.
"""

from __future__ import annotations

from repro.sat.cnf import CNF

__all__ = ["solve_dpll"]


def solve_dpll(formula: CNF) -> dict[int, bool] | None:
    """A satisfying assignment, or ``None`` when the formula is unsatisfiable."""
    assignment: dict[int, bool] = {}

    def simplify(clauses: list[tuple[int, ...]]) -> list[tuple[int, ...]] | None:
        """Apply the current assignment; ``None`` signals a falsified clause."""
        result = []
        for clause in clauses:
            satisfied = False
            literals = []
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    literals.append(lit)
            if satisfied:
                continue
            if not literals:
                return None
            result.append(tuple(literals))
        return result

    def search(clauses: list[tuple[int, ...]]) -> bool:
        clauses = simplify(clauses)
        if clauses is None:
            return False
        # Unit propagation.
        while True:
            units = [c[0] for c in clauses if len(c) == 1]
            if not units:
                break
            for lit in units:
                var, value = abs(lit), lit > 0
                if var in assignment and assignment[var] != value:
                    return False
                assignment[var] = value
            clauses = simplify(clauses)
            if clauses is None:
                return False
        # Pure-literal elimination.
        polarity: dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                polarity[abs(lit)] = polarity.get(abs(lit), 0) | (
                    1 if lit > 0 else 2
                )
        pures = [v for v, p in polarity.items() if p != 3]
        if pures:
            for v in pures:
                assignment[v] = polarity[v] == 1
            clauses = simplify(clauses)
            if clauses is None:
                return False
        if not clauses:
            return True
        # Branch on the most frequent variable.
        counts: dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        variable = max(sorted(counts), key=lambda v: counts[v])
        checkpoint = dict(assignment)
        for value in (True, False):
            assignment[variable] = value
            if search(clauses):
                return True
            assignment.clear()
            assignment.update(checkpoint)
        return False

    if search(list(formula.clauses)):
        return {
            v: assignment.get(v, False)
            for v in range(1, formula.num_vars + 1)
        }
    return None
