"""Satisfiability substrate for Section 3 of the paper.

Linear-time Horn-SAT and 2-SAT, GF(2) linear algebra for affine relations,
and a DPLL baseline for everything outside Schaefer's tractable classes.
"""

from repro.sat.affine import LinearSystemGF2, nullspace_basis, solve_gf2
from repro.sat.cnf import CNF, Clause, clause_is_dual_horn, clause_is_horn
from repro.sat.dpll import solve_dpll
from repro.sat.horn import horn_minimal_model, solve_dual_horn, solve_horn
from repro.sat.two_sat import solve_2sat, solve_2sat_phases

__all__ = [
    "CNF",
    "Clause",
    "clause_is_horn",
    "clause_is_dual_horn",
    "solve_horn",
    "solve_dual_horn",
    "horn_minimal_model",
    "solve_2sat",
    "solve_2sat_phases",
    "LinearSystemGF2",
    "nullspace_basis",
    "solve_gf2",
    "solve_dpll",
]
