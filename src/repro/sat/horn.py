"""Linear-time Horn satisfiability (Dowling–Gallier / Beeri–Bernstein).

A Horn clause has at most one positive literal.  Satisfiability is decided
by computing the *minimal model*: start with nothing true; a clause whose
negative literals are all true forces its positive literal (or yields a
contradiction when it has none).  With per-variable watch lists each literal
occurrence is processed once, giving time linear in the formula length —
the [BB79, DG84] algorithms cited by Theorems 3.3 and 3.4.

Dual-Horn formulas (at most one *negative* literal per clause) are handled
by flipping every literal's sign, solving the Horn image, and flipping the
model back.
"""

from __future__ import annotations

from collections import deque

from repro.sat.cnf import CNF

__all__ = ["solve_horn", "solve_dual_horn", "horn_minimal_model"]


def horn_minimal_model(formula: CNF) -> set[int] | None:
    """The set of variables true in the minimal model, or ``None`` if UNSAT.

    Raises ``ValueError`` when the formula is not Horn.
    """
    if not formula.is_horn:
        raise ValueError("formula is not Horn")
    # Per clause: how many negative literals are not yet satisfied, and the
    # clause's positive literal (or None).  Watch lists map a variable to the
    # clauses where it occurs negatively.
    remaining: list[int] = []
    head: list[int | None] = []
    watches: dict[int, list[int]] = {}
    queue: deque[int] = deque()
    true_vars: set[int] = set()

    for index, clause in enumerate(formula.clauses):
        negatives = [lit for lit in clause if lit < 0]
        positives = [lit for lit in clause if lit > 0]
        remaining.append(len(negatives))
        head.append(positives[0] if positives else None)
        for lit in negatives:
            watches.setdefault(-lit, []).append(index)
        if not negatives:
            if head[index] is None:
                return None  # the empty clause
            queue.append(index)

    def fire(index: int) -> bool:
        """Force the head of a clause whose body is fully true."""
        positive = head[index]
        if positive is None:
            return False
        var = positive
        if var in true_vars:
            return True
        true_vars.add(var)
        for watched in watches.get(var, ()):
            remaining[watched] -= 1
            if remaining[watched] == 0:
                queue.append(watched)
        return True

    while queue:
        if not fire(queue.popleft()):
            return None
    return true_vars


def solve_horn(formula: CNF) -> dict[int, bool] | None:
    """A satisfying assignment for a Horn formula, or ``None`` (UNSAT)."""
    model = horn_minimal_model(formula)
    if model is None:
        return None
    return {
        v: v in model for v in range(1, formula.num_vars + 1)
    }


def solve_dual_horn(formula: CNF) -> dict[int, bool] | None:
    """A satisfying assignment for a dual-Horn formula, or ``None``.

    Works by the sign-flip duality with Horn formulas; the returned model is
    the *maximal* model of the dual-Horn formula.
    """
    if not formula.is_dual_horn:
        raise ValueError("formula is not dual-Horn")
    flipped = CNF(
        formula.num_vars,
        [tuple(-lit for lit in clause) for clause in formula.clauses],
    )
    model = solve_horn(flipped)
    if model is None:
        return None
    return {v: not value for v, value in model.items()}
