"""Existential k-pebble games and strong k-consistency (Section 4).

Two independent O(n^{2k}) implementations of the game fixpoint — the
pair-set form in :mod:`repro.pebble.game` and the per-domain-table form in
:mod:`repro.pebble.kconsistency` — realizing the uniform algorithm of
Theorem 4.9.
"""

from repro.pebble.game import (
    PebbleGameResult,
    duplicator_wins,
    kconsistency_closure,
    solve_pebble_game,
    spoiler_wins,
)
from repro.pebble.kconsistency import consistency_tables, strong_k_consistent

__all__ = [
    "PebbleGameResult",
    "solve_pebble_game",
    "duplicator_wins",
    "spoiler_wins",
    "kconsistency_closure",
    "consistency_tables",
    "strong_k_consistent",
]
