"""Strong k-consistency, table-based (an independent route to Theorem 4.9).

This module re-implements the pebble-game fixpoint of
:mod:`repro.pebble.game` with a different data layout — one table of
surviving assignments per domain subset of size ≤ k, filtered by iterated
restriction/extension propagation — primarily so the test suite can
cross-check two independently written O(n^{2k}) implementations against
each other (and both against the ρ_B Datalog program of Theorem 4.7.2).

``strong_k_consistent(A, B, k)`` is the decision form: it returns False
exactly when the closure is empty, i.e. when the Spoiler wins the
existential k-pebble game.

The default engine is the generalized compiled k-pebble fixpoint
(:mod:`repro.kernel.pebblek`), which returns the identical tables; the
table-filtering loop below remains as the parity oracle behind
``engine="legacy"`` / ``REPRO_ENGINE=legacy``.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Hashable

from repro.exceptions import VocabularyError
from repro.kernel.engine import LEGACY, resolve_engine
from repro.structures.structure import Structure

__all__ = ["consistency_tables", "strong_k_consistent"]

Element = Hashable
Domain = tuple[Element, ...]
Table = dict[Domain, set[tuple[Element, ...]]]


def _allowed(
    domain: Domain,
    image: tuple[Element, ...],
    source: Structure,
    target: Structure,
    covered_facts: dict[Domain, list[tuple[str, tuple[Element, ...]]]],
) -> bool:
    mapping = dict(zip(domain, image))
    for name, fact in covered_facts[domain]:
        if tuple(mapping[e] for e in fact) not in target.relation(name):
            return False
    return True


def consistency_tables(
    source: Structure, target: Structure, k: int, *, engine: str | None = None
) -> Table | None:
    """Compute, per sorted domain tuple of size ≤ k, the surviving images.

    Returns ``None`` when some table empties — i.e. strong k-consistency
    cannot be established and no homomorphism exists.  Both engines
    return the same tables, image for image.
    """
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("consistency requires a common vocabulary")
    if k < 1:
        raise ValueError("k must be at least 1")
    if resolve_engine(engine) != LEGACY:
        from repro.kernel.pebblek import kernel_consistency_tables

        return kernel_consistency_tables(source, target, k)

    elements = source.sorted_universe
    values = target.sorted_universe
    if not elements:
        return {(): {()}}

    domains: list[Domain] = []
    for size in range(1, min(k, len(elements)) + 1):
        domains.extend(combinations(elements, size))

    # Pre-index the facts fully covered by each domain.
    covered: dict[Domain, list[tuple[str, tuple[Element, ...]]]] = {
        d: [] for d in domains
    }
    facts = list(source.facts())
    for d in domains:
        members = set(d)
        covered[d] = [
            (name, fact)
            for name, fact in facts
            if all(e in members for e in fact)
        ]

    tables: Table = {}
    for d in domains:
        tables[d] = {
            image
            for image in product(values, repeat=len(d))
            if _allowed(d, image, source, target, covered)
        }

    changed = True
    while changed:
        changed = False
        for d in domains:
            survivors = set()
            for image in tables[d]:
                mapping = dict(zip(d, image))
                # Downward: every one-element restriction must survive.
                ok = True
                if len(d) > 1:
                    for drop in range(len(d)):
                        sub_domain = d[:drop] + d[drop + 1 :]
                        sub_image = image[:drop] + image[drop + 1 :]
                        if sub_image not in tables[sub_domain]:
                            ok = False
                            break
                # Upward (forth): if |d| < k, every further element must
                # admit a surviving extension.
                if ok and len(d) < k:
                    for a in elements:
                        if a in mapping:
                            continue
                        extended_domain = tuple(
                            sorted(
                                d + (a,),
                                key=lambda e: elements.index(e),
                            )
                        )
                        position = extended_domain.index(a)
                        found = False
                        for b in values:
                            candidate = (
                                image[:position] + (b,) + image[position:]
                            )
                            if candidate in tables[extended_domain]:
                                found = True
                                break
                        if not found:
                            ok = False
                            break
                if ok:
                    survivors.add(image)
            if len(survivors) != len(tables[d]):
                tables[d] = survivors
                changed = True
            if not survivors:
                return None
    return tables


def strong_k_consistent(
    source: Structure, target: Structure, k: int, *, engine: str | None = None
) -> bool:
    """Decision form: can strong k-consistency be established non-trivially?

    Equivalent to "the Duplicator wins the existential k-pebble game";
    by Theorem 4.8 it decides CSP(A, B) exactly when cCSP(B) is
    expressible in k-Datalog.
    """
    if resolve_engine(engine) != LEGACY:
        if source.vocabulary != target.vocabulary:
            raise VocabularyError("consistency requires a common vocabulary")
        if k < 1:
            raise ValueError("k must be at least 1")
        from repro.kernel.pebblek import spoiler_wins_k

        # Decision only: skip the table decode.
        return not spoiler_wins_k(source, target, k)
    return consistency_tables(source, target, k, engine=engine) is not None
