"""The existential k-pebble game (Section 4.2 of the paper).

The Spoiler places up to ``k`` pebbles on elements of ``A``; the Duplicator
answers on ``B``.  The Duplicator wins when she can play forever keeping the
pebbled correspondence a partial homomorphism.  Formally (after [KV95]) the
Duplicator wins iff there is a non-empty family ``H`` of partial
homomorphisms from ``A`` to ``B``, each with domain of size at most ``k``,
that is closed under restrictions and has the *forth property up to k*:
every ``f ∈ H`` with ``|dom(f)| < k`` extends, for every ``a ∈ A``, to some
``f′ ∈ H`` defined on ``a``.

Theorem 4.7.1: whether the Spoiler wins is decidable in polynomial time for
fixed ``k`` — compute the *greatest* such family by starting from all
partial homomorphisms with domain ≤ k and deleting functions that violate
restriction-closure or the forth property until a fixpoint; the Duplicator
wins iff the empty function survives.  The running time is the O(n^{2k}) of
Theorem 4.9.

Key consequences implemented here and cross-checked in the tests:

* if ``A → B`` then the Duplicator wins for every ``k``;
* (Theorem 4.8) when the complement of CSP(B) is expressible in k-Datalog,
  the Spoiler wins iff there is no homomorphism — the game *solves* the
  CSP, which is how the uniform algorithm of Theorem 4.9 works.

Two engines compute the fixpoint.  The default is the generalized
compiled k-pebble engine (:mod:`repro.kernel.pebblek` — bitset tables
over ≤ k-subassignments, worklist propagation with residuals), which
produces the *identical* greatest family; the deletion loop below stays
as the parity oracle, selectable per call with ``engine="legacy"`` or
process-wide via :func:`repro.kernel.set_default_engine` / the
``REPRO_ENGINE`` environment variable.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Hashable

from repro.exceptions import VocabularyError
from repro.kernel.engine import LEGACY, resolve_engine
from repro.structures.structure import Structure

__all__ = [
    "PebbleGameResult",
    "solve_pebble_game",
    "duplicator_wins",
    "spoiler_wins",
    "kconsistency_closure",
]

Element = Hashable
PartialMap = frozenset[tuple[Element, Element]]


def _is_partial_homomorphism(
    mapping: dict[Element, Element], source: Structure, target: Structure
) -> bool:
    """Homomorphism condition on the substructure induced by the domain."""
    domain = mapping.keys()
    for name, fact in source.facts():
        if all(e in domain for e in fact):
            if tuple(mapping[e] for e in fact) not in target.relation(name):
                return False
    return True


class PebbleGameResult:
    """The fixpoint family of the existential k-pebble game.

    ``family`` holds the surviving partial homomorphisms (as frozensets of
    pairs); ``duplicator_wins`` is True iff the empty map survived.
    """

    __slots__ = ("k", "family", "duplicator_wins")

    def __init__(self, k: int, family: set[PartialMap]) -> None:
        self.k = k
        self.family = family
        self.duplicator_wins = frozenset() in family

    def winning_from(
        self, pairs: tuple[tuple[Element, Element], ...]
    ) -> bool:
        """Whether the given pebbled configuration is winning for the
        Duplicator (used by the Theorem 4.5 characterization)."""
        return frozenset(pairs) in self.family


def solve_pebble_game(
    source: Structure, target: Structure, k: int, *, engine: str | None = None
) -> PebbleGameResult:
    """Compute the greatest forth-closed family (Theorem 4.7.1).

    Worst-case O(n^{2k}) states; intended for the small fixed ``k`` regime
    the paper studies.  Both engines return the same family, map for map.
    """
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("pebble game requires a common vocabulary")
    if k < 1:
        raise ValueError("need at least one pebble")
    if resolve_engine(engine) != LEGACY:
        from repro.kernel.pebblek import pebble_game_family

        return PebbleGameResult(k, pebble_game_family(source, target, k))

    elements = source.sorted_universe
    values = target.sorted_universe

    # All partial homomorphisms with |dom| <= k.
    family: set[PartialMap] = set()
    for size in range(0, min(k, len(elements)) + 1):
        for domain in combinations(elements, size):
            for image in product(values, repeat=size):
                mapping = dict(zip(domain, image))
                if _is_partial_homomorphism(mapping, source, target):
                    family.add(frozenset(mapping.items()))

    if not values and elements:
        return PebbleGameResult(k, set())

    # Delete until fixpoint.  A function dies when (a) one of its one-step
    # restrictions is dead, or (b) it is small and some element admits no
    # surviving extension.
    changed = True
    while changed:
        changed = False
        for f in list(family):
            if f not in family:
                continue
            items = dict(f)
            # (a) restriction-closure.
            dead = False
            for key in items:
                restriction = frozenset(
                    (a, b) for a, b in f if a != key
                )
                if restriction not in family:
                    dead = True
                    break
            # (b) forth property.
            if not dead and len(items) < k:
                for a in elements:
                    if a in items:
                        continue
                    if not any(
                        f | {(a, b)} in family for b in values
                    ):
                        dead = True
                        break
            if dead:
                family.discard(f)
                changed = True
    return PebbleGameResult(k, family)


def duplicator_wins(
    source: Structure, target: Structure, k: int, *, engine: str | None = None
) -> bool:
    """Whether the Duplicator wins the existential k-pebble game."""
    if resolve_engine(engine) != LEGACY:
        # Decision only: the kernel engine skips the family decode.
        if source.vocabulary != target.vocabulary:
            raise VocabularyError("pebble game requires a common vocabulary")
        if k < 1:
            raise ValueError("need at least one pebble")
        from repro.kernel.pebblek import spoiler_wins_k

        return not spoiler_wins_k(source, target, k)
    return solve_pebble_game(source, target, k, engine=engine).duplicator_wins


def spoiler_wins(
    source: Structure, target: Structure, k: int, *, engine: str | None = None
) -> bool:
    """Whether the Spoiler wins the existential k-pebble game."""
    return not duplicator_wins(source, target, k, engine=engine)


def kconsistency_closure(
    source: Structure, target: Structure, k: int, *, engine: str | None = None
) -> set[PartialMap]:
    """The surviving family itself — the strong-k-consistency closure.

    Exposed separately because Section 4's uniform algorithm (Theorem 4.9)
    is exactly: compute this closure; answer "no homomorphism" iff it is
    empty, which is sound and complete whenever cCSP(B) is expressible in
    k-Datalog (Theorem 4.8).
    """
    return solve_pebble_game(source, target, k, engine=engine).family
