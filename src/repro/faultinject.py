"""Deterministic fault injection for the resilience chaos suite.

The resilience layer (supervised workers, retries, breakers, deadline
propagation) is only trustworthy if its failure paths are *exercised*,
and real failures — a worker segfault, an OOM, a slow disk — do not show
up on demand.  This module plants named injection points on the hot
paths and drives them from a seeded plan, so ``tests/test_chaos.py`` can
replay the exact same storm of worker kills, kernel exceptions, delays,
and budget breaches on every run of a given seed.

Design constraints, in order:

* **Zero cost when disarmed.**  Every hook compiles to one module-global
  read and a ``None`` test; no plan object, no dict lookup, no RNG.
  Production traffic never pays for the harness (the P3 throughput gate
  holds with the harness merely imported).
* **Deterministic per point.**  Each injection point draws from its own
  ``random.Random(f"{seed}:{point}")`` stream under a lock, so whether
  the *n*-th hit of a point fires depends only on the seed and *n* —
  not on how the scheduler interleaved other points.  (Which request
  suffers the *n*-th hit still depends on scheduling; the chaos suite
  therefore asserts *invariants* — every request terminates correctly —
  not specific victims.)
* **Crosses the process boundary.**  ``install(plan, env=True)`` exports
  the plan as JSON in ``REPRO_FAULT_PLAN``; pool workers re-install it
  from the environment in their initializer, so "kill the worker
  mid-solve" faults fire *inside* the worker process.

The planted points:

====================================  =======================================
``service.dispatch.delay``            sleep before executing a request
``worker.kill.before``                ``os._exit`` before the worker solves
``worker.kill.during``                ``os._exit`` on a timer while solving
``kernel.compile.raise``              :class:`FaultInjectedError` from
                                      ``compile_target``
``datalogk.budget``                   forced :class:`ResourceBudgetError`
                                      at the binding-space guard
``decomp.budget``                     forced :class:`ResourceBudgetError`
                                      at the bag-table guard
====================================  =======================================
"""

from __future__ import annotations

import json
import os
import random
import threading
from typing import Mapping

from repro.exceptions import FaultInjectedError

__all__ = [
    "FaultPlan",
    "ENV_VAR",
    "current",
    "delay_seconds",
    "fires",
    "install",
    "install_from_env",
    "raise_fault",
    "uninstall",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: The kill faults exit with this status so a post-mortem can tell an
#: injected death from a genuine crash.
KILL_EXIT_STATUS = 86


class FaultPlan:
    """A seeded assignment of firing probabilities to injection points.

    ``points`` maps point names to probabilities in ``[0, 1]``; missing
    points never fire.  ``delay_ms`` bounds the uniform draw of the
    delay points (both dispatch delays and the timer of
    ``worker.kill.during``).
    """

    def __init__(
        self,
        seed: int,
        points: Mapping[str, float],
        *,
        delay_ms: tuple[float, float] = (1.0, 25.0),
    ) -> None:
        self.seed = seed
        self.points = dict(points)
        self.delay_ms = (float(delay_ms[0]), float(delay_ms[1]))
        self._lock = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        #: Per-point counters of hits and fires (observability for tests).
        self.hits: dict[str, int] = {}
        self.fired: dict[str, int] = {}

    def _rng(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            rng = self._rngs[point] = random.Random(f"{self.seed}:{point}")
        return rng

    def fires(self, point: str) -> bool:
        """Whether this hit of ``point`` fires (one seeded draw)."""
        probability = self.points.get(point, 0.0)
        if probability <= 0.0:
            return False
        with self._lock:
            self.hits[point] = self.hits.get(point, 0) + 1
            fired = self._rng(point).random() < probability
            if fired:
                self.fired[point] = self.fired.get(point, 0) + 1
            return fired

    def delay(self, point: str) -> float:
        """Seconds to sleep at a delay point; ``0.0`` when it did not fire."""
        if not self.fires(point):
            return 0.0
        low, high = self.delay_ms
        with self._lock:
            return self._rng(point + ".amount").uniform(low, high) / 1000.0

    # -- serialization across the process boundary ---------------------------

    def spec(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "points": self.points,
                "delay_ms": list(self.delay_ms),
            }
        )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        data = json.loads(spec)
        return cls(
            int(data["seed"]),
            {str(k): float(v) for k, v in data["points"].items()},
            delay_ms=tuple(data.get("delay_ms", (1.0, 25.0))),
        )


#: The installed plan; ``None`` (the default, always, in production)
#: short-circuits every hook to a single global read.
_plan: FaultPlan | None = None


def install(plan: FaultPlan, *, env: bool = False) -> None:
    """Arm ``plan``; with ``env`` also export it to worker processes.

    ``env=True`` writes :data:`ENV_VAR` so process pools spawned *after*
    this call pick the plan up in their initializer
    (:func:`install_from_env`).
    """
    global _plan
    _plan = plan
    if env:
        os.environ[ENV_VAR] = plan.spec()


def uninstall() -> None:
    """Disarm fault injection and clear the environment export."""
    global _plan
    _plan = None
    os.environ.pop(ENV_VAR, None)


def install_from_env() -> None:
    """Arm the plan exported in :data:`ENV_VAR`, if any (worker side)."""
    spec = os.environ.get(ENV_VAR)
    if spec:
        global _plan
        _plan = FaultPlan.from_spec(spec)


def current() -> FaultPlan | None:
    return _plan


def fires(point: str) -> bool:
    """Hook: one seeded draw at ``point``; always ``False`` when disarmed."""
    plan = _plan
    return plan is not None and plan.fires(point)


def delay_seconds(point: str) -> float:
    """Hook: the sleep a delay point asks for; ``0.0`` when disarmed."""
    plan = _plan
    return plan.delay(point) if plan is not None else 0.0


def raise_fault(point: str) -> None:
    """Hook: raise :class:`FaultInjectedError` when ``point`` fires."""
    plan = _plan
    if plan is not None and plan.fires(point):
        raise FaultInjectedError(f"injected fault at {point!r}")


def kill_process(point: str, *, delay_range: tuple[float, float] | None = None) -> None:
    """Hook: hard-kill this process when ``point`` fires (worker side).

    With ``delay_range`` the kill happens on a daemon timer a few
    milliseconds later — mid-solve — instead of immediately.
    ``os._exit`` (not ``sys.exit``) so no ``finally`` blocks run: the
    death is as abrupt as a segfault, which is the failure mode the
    supervisor must survive.
    """
    plan = _plan
    if plan is None or not plan.fires(point):
        return
    if delay_range is None:
        os._exit(KILL_EXIT_STATUS)
    with plan._lock:
        pause = plan._rng(point + ".amount").uniform(*delay_range)
    timer = threading.Timer(pause, os._exit, args=(KILL_EXIT_STATUS,))
    timer.daemon = True
    timer.start()
