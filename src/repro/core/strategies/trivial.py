"""The constant-map routes: 0-valid and 1-valid targets (Section 3).

If every relation of a Boolean target contains the all-zero tuple, the
constant map ``a ↦ 0`` is a homomorphism from *any* source — no search
needed.  Dually for all-one tuples.  These are the two trivial Schaefer
classes, checked first because they decide the instance in O(|A|).
"""

from __future__ import annotations

from repro.boolean.schaefer import SchaeferClass
from repro.core.pipeline import Solution, SolveContext
from repro.structures.structure import Structure

__all__ = ["OneValidStrategy", "ZeroValidStrategy"]


class ZeroValidStrategy:
    """Route 0-valid Boolean targets to the constant-0 map."""

    name = "zero-valid"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return target.is_boolean and bool(
            context.classification(target) & SchaeferClass.ZERO_VALID
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        return Solution({e: 0 for e in source.universe}, self.name)


class OneValidStrategy:
    """Route 1-valid Boolean targets to the constant-1 map."""

    name = "one-valid"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return target.is_boolean and bool(
            context.classification(target) & SchaeferClass.ONE_VALID
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        return Solution({e: 1 for e in source.universe}, self.name)
