"""The width-aware planner route: choose the engine, then run it.

Where the fixed registry encodes one preference order for everyone, this
route — opt-in via ``solve(..., plan=True)`` — asks
:func:`repro.kernel.estimate.plan_instance` which engine is predicted
cheapest for *this* instance:

* **dp** — the compiled decomposition DP (:mod:`repro.kernel.decomp`),
  available when the greedy width is within the threshold; complete.
* **pebble** — the generalized compiled k-pebble game
  (:mod:`repro.kernel.pebblek`): a Spoiler win refutes the instance
  outright (sound by Theorem 4.8's easy direction); otherwise the route
  falls back to the kernel search from the same compilation, so the
  answer is always decided.
* **datalog** — the canonical-Datalog decision, opt-in via
  ``solve(..., plan=True, try_canonical_datalog=k)``: "does ρ_B derive
  its goal on A?" answered through
  :func:`repro.datalog.canonical_program.canonical_refutes` — which, by
  Theorem 4.2, plays the compiled k-pebble game instead of evaluating
  the |B|^k-rule program.  A derivation refutes the instance outright;
  otherwise the route falls back to the kernel search.
* **search** — the kernel's GAC + MRV backtracking
  (:mod:`repro.kernel.search`); the total fallback.

The decision — route, predicted costs, width and degree signals, and
whether a pebble fall-back happened — is stashed in
``context.scratch["plan"]`` and surfaces as ``Solution.stats.plan``, so
planner routing is observable request by request (the P4 benchmark
prints exactly this).

The strategy sits between the Schaefer islands and the fixed
``treewidth-dp`` route: Boolean targets keep their O(‖A‖·‖B‖) direct
algorithms, and with planning off (the default) ``applies`` declines
instantly, leaving the seed routing untouched.
"""

from __future__ import annotations

from repro.core.pipeline import Solution, SolveContext
from repro.datalog.canonical_program import canonical_refutes
from repro.exceptions import ResourceBudgetError
from repro.kernel.decomp import solve_decomposition
from repro.kernel.estimate import Plan, plan_instance
from repro.kernel.pebblek import spoiler_wins_k
from repro.kernel.search import solve as kernel_solve
from repro.obs.trace import maybe_span
from repro.structures.structure import Structure

__all__ = ["WidthPlannerStrategy"]


class WidthPlannerStrategy:
    """Route each instance to its predicted-cheapest sound engine."""

    name = "width-planner"

    def _plan(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Plan:
        """Derive (and stash) the routing decision for this solve."""
        plan = context.scratch.get("plan_obj")
        if not isinstance(plan, Plan):
            with maybe_span("planner.decide") as span:
                plan = plan_instance(
                    source,
                    context.compiled_target(target),
                    width_threshold=context.width_threshold,
                    pebble_k=context.pebble_k,
                    datalog_k=context.datalog_k,
                    decomposition_provider=lambda: context.decomposition(
                        source
                    ),
                )
                if span is not None:
                    span.set(
                        route=plan.route,
                        predicted_cost=plan.predicted_cost,
                        width=plan.width,
                    )
            context.scratch["plan_obj"] = plan
            context.scratch["plan"] = plan.as_dict()
        return plan

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        if not context.plan_enabled:
            return False
        if source.universe and not target.universe:
            # Trivially unsatisfiable; let the backtracking route answer.
            return False
        plan = self._plan(source, target, context)
        if plan.width is None:
            # The degree gate skipped the width estimate (or the instance
            # is trivial), so "dp unavailable" is a guess, not a fact —
            # routing to search here could *lose* to the fixed
            # treewidth-dp route behind us.  Decline and fall through to
            # the default registry, which behaves exactly like plan=False.
            del context.scratch["plan_obj"], context.scratch["plan"]
            return False
        return True

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        plan = self._plan(source, target, context)
        compiled = context.compiled_target(target)
        if plan.route == "dp":
            try:
                return Solution(
                    solve_decomposition(
                        source, compiled, context.decomposition(source)
                    ),
                    f"{self.name}(route=dp,width={plan.width})",
                )
            except ResourceBudgetError:
                # The bag-table bound would not fit; the search engine
                # answers the same question without the table.
                plan_dict = dict(context.scratch.get("plan") or {})
                plan_dict["dp_fallback"] = "search-budget"
                context.scratch["plan"] = plan_dict
                return Solution(
                    kernel_solve(source, compiled),
                    f"{self.name}(route=dp,width={plan.width},"
                    "fallback=search-budget)",
                )
        if plan.route == "datalog":
            k = plan.datalog_k
            assert k is not None  # the route is only chosen when requested
            if canonical_refutes(source, compiled, k):
                # ρ_B derives its goal on A: by Theorem 4.2 the Spoiler
                # wins the k-pebble game, so no homomorphism exists.
                return Solution(
                    None, f"{self.name}(route=datalog,k={k})"
                )
            # The canonical program stays silent: only a complete engine
            # can confirm a homomorphism, so finish with search.
            plan_dict = dict(context.scratch.get("plan") or {})
            plan_dict["datalog_fallback"] = "search"
            context.scratch["plan"] = plan_dict
            return Solution(
                kernel_solve(source, compiled),
                f"{self.name}(route=datalog,k={k},fallback=search)",
            )
        if plan.route == "pebble":
            k = plan.pebble_k
            assert k is not None  # plan_instance always sets it for pebble
            if spoiler_wins_k(source, compiled, k):
                return Solution(
                    None, f"{self.name}(route=pebble,k={k})"
                )
            # Duplicator survives: the game alone cannot confirm a
            # homomorphism, so finish with the search engine and say so.
            plan_dict = dict(context.scratch.get("plan") or {})
            plan_dict["pebble_fallback"] = "search"
            context.scratch["plan"] = plan_dict
            return Solution(
                kernel_solve(source, compiled),
                f"{self.name}(route=pebble,k={k},fallback=search)",
            )
        return Solution(
            kernel_solve(source, compiled), f"{self.name}(route=search)"
        )
