"""The pebble-game route: sound (incomplete) refutation via k-consistency.

Section 4: if the Spoiler wins the existential k-pebble game on (A, B),
then certainly A ↛ B — and for targets whose cCSP is k-Datalog-expressible
this test is also complete (Theorem 4.8).  The route is opt-in (set
``try_pebble_refutation=k``) and only *applies* when the Spoiler actually
wins, so it never claims an instance it cannot decide; otherwise the
pipeline falls through to backtracking, exactly like the seed dispatcher.

The game is played on the generalized compiled k-pebble engine
(:func:`repro.kernel.pebblek.spoiler_wins_k` — bitset tables over
≤ k-subassignments, reusing the cached target compilation) for *every*
``k``, not just the old ``k = 2`` fast path; the kernel verdict agrees
with the legacy family fixpoint on every instance.
"""

from __future__ import annotations

from repro.core.pipeline import Solution, SolveContext
from repro.kernel.pebblek import spoiler_wins_k
from repro.structures.structure import Structure

__all__ = ["PebbleRefutationStrategy"]


class PebbleRefutationStrategy:
    """Refute instances on which the Spoiler wins the k-pebble game."""

    name = "pebble-refutation"

    def _spoiler_wins(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return spoiler_wins_k(
            source, context.compiled_target(target), context.pebble_k
        )

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        if context.pebble_k is None:
            return False
        won = self._spoiler_wins(source, target, context)
        context.scratch["spoiler_wins"] = won
        return won

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        if context.pebble_k is None:
            raise RuntimeError(
                "pebble refutation needs a pebble count; "
                "set try_pebble_refutation=k"
            )
        won = context.scratch.get("spoiler_wins")
        if won is None:  # run() called without applies(): play the game now
            won = self._spoiler_wins(source, target, context)
        if not won:
            raise RuntimeError(
                "pebble refutation ran without a Spoiler win; "
                "it cannot decide this instance"
            )
        return Solution(None, f"{self.name}(k={context.pebble_k})")
