"""The bijunctive route: 2-SAT on the target's majority-closed structure.

Theorem 3.4: relations closed under the coordinatewise majority operation
are definable by 2-CNF, so the instance reduces to 2-SAT, solved in
linear time via implication-graph SCCs.
"""

from __future__ import annotations

from repro.boolean.direct import solve_bijunctive_csp
from repro.boolean.schaefer import SchaeferClass
from repro.core.pipeline import Solution, SolveContext
from repro.structures.structure import Structure

__all__ = ["BijunctiveStrategy"]


class BijunctiveStrategy:
    """Route bijunctive Boolean targets to the 2-SAT reduction."""

    name = "bijunctive-direct"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return target.is_boolean and bool(
            context.classification(target) & SchaeferClass.BIJUNCTIVE
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        return Solution(solve_bijunctive_csp(source, target), self.name)
