"""The total fallback: MRV backtracking search.

The general homomorphism problem is NP-complete (Section 2), so the
pipeline ends with a route that applies to everything: arc-consistency
preprocessing plus backtracking with dynamic variable ordering.
"""

from __future__ import annotations

from repro.core.pipeline import Solution, SolveContext
from repro.csp.backtracking import solve_backtracking
from repro.structures.structure import Structure

__all__ = ["BacktrackingStrategy"]


class BacktrackingStrategy:
    """Decide any instance by backtracking search (the NP baseline)."""

    name = "backtracking"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return True

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        return Solution(solve_backtracking(source, target), self.name)
