"""The total fallback: MRV backtracking search.

The general homomorphism problem is NP-complete (Section 2), so the
pipeline ends with a route that applies to everything: arc-consistency
preprocessing plus backtracking with dynamic variable ordering, run
directly on the compiled bitset kernel.  The target's compilation comes
from the fingerprint-keyed :class:`~repro.core.pipeline.StructureCache`
via the solve context, so a batch of instances sharing a target compiles
it once.
"""

from __future__ import annotations

from repro.core.pipeline import Solution, SolveContext
from repro.kernel.search import solve as kernel_solve
from repro.structures.structure import Structure

__all__ = ["BacktrackingStrategy"]


class BacktrackingStrategy:
    """Decide any instance by backtracking search (the NP baseline)."""

    name = "backtracking"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return True

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        if source.universe and not target.universe:
            return Solution(None, self.name)
        compiled = context.compiled_target(target)
        return Solution(kernel_solve(source, compiled), self.name)
