"""The Horn route: unit propagation on the target's Horn structure.

Theorem 3.4: when every relation of a Boolean target is closed under
coordinatewise AND, the instance is decided by the direct quadratic
algorithm — start from the all-1 candidate and propagate forced zeros.
"""

from __future__ import annotations

from repro.boolean.direct import solve_horn_csp
from repro.boolean.schaefer import SchaeferClass
from repro.core.pipeline import Solution, SolveContext
from repro.structures.structure import Structure

__all__ = ["HornStrategy"]


class HornStrategy:
    """Route Horn Boolean targets to the direct Theorem 3.4 algorithm."""

    name = "horn-direct"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return target.is_boolean and bool(
            context.classification(target) & SchaeferClass.HORN
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        return Solution(solve_horn_csp(source, target), self.name)
