"""The bounded-treewidth route: the Theorem 5.4 dynamic program.

If a greedy decomposition of the *source* has width at most the
configured threshold, the homomorphism problem is decided by dynamic
programming over the decomposition in time O(‖B‖^{w+1}) — polynomial for
each fixed width.  The decomposition is computed via the pipeline's
structure cache, so a source reused across solves is decomposed once,
and the DP runs on the compiled kernel (:mod:`repro.kernel.decomp`)
against the cached target compilation — the same amortization story as
the backtracking strategy.

The DP guards its own memory: when the ``m^(w+1)`` bag-table bound
exceeds the kernel's cell budget it raises
:class:`~repro.exceptions.ResourceBudgetError` *before* allocating, and
this route degrades to the kernel search — semantically identical
(both are exact), just without the polynomial guarantee.  The fallback
is visible in the strategy label.
"""

from __future__ import annotations

from repro.core.pipeline import Solution, SolveContext
from repro.exceptions import ResourceBudgetError
from repro.kernel.decomp import solve_decomposition
from repro.kernel.search import solve as kernel_solve
from repro.structures.structure import Structure

__all__ = ["TreewidthStrategy"]


class TreewidthStrategy:
    """Route low-width sources to the treewidth dynamic program."""

    name = "treewidth-dp"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return (
            context.decomposition(source).width <= context.width_threshold
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        decomposition = context.decomposition(source)
        compiled = context.compiled_target(target)
        try:
            return Solution(
                solve_decomposition(source, compiled, decomposition),
                f"{self.name}(width={decomposition.width})",
            )
        except ResourceBudgetError:
            return Solution(
                kernel_solve(source, compiled),
                f"{self.name}(width={decomposition.width},"
                "fallback=search-budget)",
            )
