"""The bounded-treewidth route: the Theorem 5.4 dynamic program.

If a greedy decomposition of the *source* has width at most the
configured threshold, the homomorphism problem is decided by dynamic
programming over the decomposition in time O(‖B‖^{w+1}) — polynomial for
each fixed width.  The decomposition is computed via the pipeline's
structure cache, so a source reused across solves is decomposed once,
and the DP runs on the compiled kernel (:mod:`repro.kernel.decomp`)
against the cached target compilation — the same amortization story as
the backtracking strategy.
"""

from __future__ import annotations

from repro.core.pipeline import Solution, SolveContext
from repro.kernel.decomp import solve_decomposition
from repro.structures.structure import Structure

__all__ = ["TreewidthStrategy"]


class TreewidthStrategy:
    """Route low-width sources to the treewidth dynamic program."""

    name = "treewidth-dp"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return (
            context.decomposition(source).width <= context.width_threshold
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        decomposition = context.decomposition(source)
        return Solution(
            solve_decomposition(
                source, context.compiled_target(target), decomposition
            ),
            f"{self.name}(width={decomposition.width})",
        )
