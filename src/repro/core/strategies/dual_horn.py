"""The dual-Horn route: the mirror image of Horn propagation.

Theorem 3.4, dualized: relations closed under coordinatewise OR are
decided by starting from the all-0 candidate and propagating forced ones.
"""

from __future__ import annotations

from repro.boolean.direct import solve_dual_horn_csp
from repro.boolean.schaefer import SchaeferClass
from repro.core.pipeline import Solution, SolveContext
from repro.structures.structure import Structure

__all__ = ["DualHornStrategy"]


class DualHornStrategy:
    """Route dual-Horn Boolean targets to the direct Theorem 3.4 algorithm."""

    name = "dual-horn-direct"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return target.is_boolean and bool(
            context.classification(target) & SchaeferClass.DUAL_HORN
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        return Solution(solve_dual_horn_csp(source, target), self.name)
