"""The built-in routes of the uniform solver, one module per island.

Each module implements the :class:`repro.core.pipeline.Strategy` protocol
for one of the paper's tractable cases (plus the two total fallbacks).
:func:`default_strategies` assembles them in the seed dispatcher's
preference order — the order is semantic: Schaefer targets are checked
trivial-first (a 0-valid target needs no search at all), structure-based
routes come before search, and backtracking is the total fallback.

Adding an island is a drop-in: write a module with an ``applies``/``run``
class and splice an instance in via :meth:`SolverPipeline.register`.
"""

from __future__ import annotations

from repro.core.strategies.affine import AffineStrategy
from repro.core.strategies.backtracking import BacktrackingStrategy
from repro.core.strategies.bijunctive import BijunctiveStrategy
from repro.core.strategies.dual_horn import DualHornStrategy
from repro.core.strategies.horn import HornStrategy
from repro.core.strategies.pebble import PebbleRefutationStrategy
from repro.core.strategies.planner import WidthPlannerStrategy
from repro.core.strategies.treewidth import TreewidthStrategy
from repro.core.strategies.trivial import (
    OneValidStrategy,
    ZeroValidStrategy,
)

__all__ = [
    "AffineStrategy",
    "BacktrackingStrategy",
    "BijunctiveStrategy",
    "CONTAINMENT_ROUTE",
    "DATALOG_ROUTE",
    "DualHornStrategy",
    "HornStrategy",
    "OneValidStrategy",
    "PebbleRefutationStrategy",
    "TreewidthStrategy",
    "WidthPlannerStrategy",
    "ZeroValidStrategy",
    "base_route",
    "default_strategies",
    "route_names",
    "service_route_names",
]

#: The service-level route label for query–query (containment) traffic.
#: Containment requests are homomorphism solves underneath — a pipeline
#: strategy still decides each one — but the serving layer accounts for
#: them as their own route so query-plane latency is separable from
#: plain solve traffic.
CONTAINMENT_ROUTE = "containment"

#: The service-level route label for canonical-Datalog (Theorem 4.2)
#: traffic admitted via ``SolveService.submit_datalog``.  Underneath it
#: is a planner-routed solve, but the serving layer accounts for it as
#: its own bucket so Datalog-plane latency is separable.
DATALOG_ROUTE = "datalog"


def default_strategies():
    """Fresh instances of the built-in routes, in dispatch order."""
    return [
        ZeroValidStrategy(),
        OneValidStrategy(),
        HornStrategy(),
        DualHornStrategy(),
        BijunctiveStrategy(),
        AffineStrategy(),
        WidthPlannerStrategy(),
        TreewidthStrategy(),
        PebbleRefutationStrategy(),
        BacktrackingStrategy(),
    ]


def route_names() -> tuple[str, ...]:
    """The base route names of the default registry, in dispatch order.

    The solve service pre-registers these as its per-route latency
    buckets, so a stats snapshot lists every built-in route even before
    (or without) traffic on it.
    """
    return tuple(strategy.name for strategy in default_strategies())


def service_route_names() -> tuple[str, ...]:
    """Every latency-bucket route a solve service pre-registers.

    The pipeline's strategy routes plus the service-level
    :data:`CONTAINMENT_ROUTE` and :data:`DATALOG_ROUTE`, so a stats
    snapshot enumerates the query- and Datalog-plane buckets even before
    (or without) traffic on them.
    """
    return route_names() + (CONTAINMENT_ROUTE, DATALOG_ROUTE)


def base_route(strategy_label: str) -> str:
    """Collapse a parametrized strategy label to its route name.

    Solutions carry labels like ``"treewidth-dp(width=2)"``; per-route
    accounting buckets them by the route, not the parameters.
    """
    return strategy_label.split("(", 1)[0]
