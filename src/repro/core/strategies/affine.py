"""The affine route: Gaussian elimination over GF(2).

Theorem 3.3: relations closed under the ternary XOR are affine subspaces
of GF(2)^r, so the instance becomes a linear system solved by Gaussian
elimination (via the formula-building uniform solver, which picks the
affine construction for these targets).
"""

from __future__ import annotations

from repro.boolean.schaefer import SchaeferClass
from repro.boolean.uniform import solve_schaefer_csp
from repro.core.pipeline import Solution, SolveContext
from repro.structures.structure import Structure

__all__ = ["AffineStrategy"]


class AffineStrategy:
    """Route affine Boolean targets to the GF(2) linear-algebra solver."""

    name = "affine-gf2"

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        return target.is_boolean and bool(
            context.classification(target) & SchaeferClass.AFFINE
        )

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        return Solution(solve_schaefer_csp(source, target), self.name)
