"""The pluggable uniform-solver pipeline.

Kolaitis & Vardi's program is to recognize *tractable islands* of the
homomorphism problem — Schaefer Boolean targets (Section 3), sources of
bounded treewidth (Section 5), targets whose cCSP is k-Datalog-expressible
(Section 4) — and route each instance to the algorithm the paper proves
applicable.  The seed dispatcher hardwired that routing in one if-chain;
this module turns it into an explicit, extensible pipeline:

* :class:`Strategy` — the protocol a route implements: ``applies()`` says
  whether this island's hypothesis holds for the instance, ``run()``
  decides it.  Each of the paper's routes lives in its own module under
  :mod:`repro.core.strategies`; a new island is a drop-in file.
* :class:`SolverPipeline` — an ordered registry of strategies.  The first
  strategy whose ``applies()`` accepts the instance runs; order encodes
  the same preference as the seed dispatcher (trivial constants before
  Horn before dual-Horn before …, structure before search).
* :class:`StructureCache` — memoizes Schaefer classification (per target)
  and greedy tree decomposition (per source) across solve calls, keyed by
  :func:`repro.structures.fingerprint.canonical_fingerprint`.  A workload
  of many sources against few targets classifies each target exactly once.
* :meth:`SolverPipeline.solve_many` — the batch API: groups instances by
  target fingerprint so shared classification work is amortized even on a
  cold cache, and returns solutions in input order.
* :class:`SolveStats` — per-solve tracing attached to every
  :class:`Solution`: which strategies were consulted, which ran, cache
  hits/misses, and wall-clock timings, making the routing observable.

The module-level :func:`solve` / :func:`solve_many` operate on a shared
default pipeline (one process-wide cache); construct a
:class:`SolverPipeline` directly for an isolated cache or a custom
strategy order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import (
    Hashable,
    Iterable,
    Mapping,
    Protocol,
    runtime_checkable,
)

from repro.boolean.schaefer import SchaeferClass, classify_structure
from repro.core.cancellation import CancellationToken, Deadline, cancel_scope
from repro.exceptions import VocabularyError
from repro.kernel.compile import CompiledTarget, compile_target
from repro.obs import calibration as _calibration
from repro.obs.metrics import collect_kernel_counters
from repro.obs.trace import maybe_span
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.structure import Structure
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import cached_decomposition

__all__ = [
    "DEFAULT_WIDTH_THRESHOLD",
    "CacheStats",
    "CacheTally",
    "Solution",
    "SolveContext",
    "SolveStats",
    "SolverPipeline",
    "Strategy",
    "StructureCache",
    "default_pipeline",
    "solve",
    "solve_many",
]

Element = Hashable

#: Width up to which the treewidth DP is preferred over backtracking.
DEFAULT_WIDTH_THRESHOLD = 3


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SolveStats:
    """Per-solve trace: what the pipeline tried and what it cost.

    Attributes
    ----------
    attempted:
        Names of the strategies whose ``applies()`` was consulted, in
        pipeline order; the last entry is the strategy that ran.
    cache_hits / cache_misses:
        How many :class:`StructureCache` lookups this solve served from /
        added to the shared cache.  A repeated solve against an
        already-seen Boolean target reports ``cache_hits >= 1``.
    timings:
        Wall-clock milliseconds: one ``"applies:<name>"`` entry per
        consulted strategy, one ``"run:<name>"`` entry for the winner, and
        ``"total"`` for the whole solve.
    plan:
        The width-aware planner's routing decision
        (:meth:`repro.kernel.estimate.Plan.as_dict`) when the solve ran
        with ``plan=True`` and the planner strategy decided the instance;
        ``None`` otherwise.  This is what makes the engine choice —
        search vs. DP vs. pebble, and the cost signals behind it —
        observable per solve.
    kernel:
        What the kernel engines *actually did* for this solve — the
        per-solve kernel counters (``"search.nodes"``,
        ``"dp.bag_cells"``, ``"datalog.rounds"``, …; see
        :data:`repro.obs.metrics.KERNEL_COUNTERS`) collected while the
        winning strategy ran.  ``None`` when no kernel engine ran or the
        hooks are disabled (``REPRO_OBS_METRICS=0``).  Paired with
        ``plan``, this is the raw material of the plan-vs-actual
        calibration report.
    trace:
        Exported span subtrees (JSON-ready dicts) produced on the far
        side of a process boundary: a pool worker attaches its in-worker
        trace here so the service can graft it under the dispatch span.
        ``None`` everywhere else.
    """

    attempted: tuple[str, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    timings: Mapping[str, float] = field(default_factory=dict)
    plan: Mapping[str, object] | None = None
    kernel: Mapping[str, int] | None = None
    trace: tuple[Mapping[str, object], ...] | None = None


@dataclass(frozen=True)
class Solution:
    """The outcome of a solve.

    ``homomorphism`` is ``None`` when no homomorphism exists; ``strategy``
    names the algorithm that decided the instance, making the routing
    observable (and testable).  ``stats`` carries the per-solve trace when
    the solution was produced by a :class:`SolverPipeline` (strategies
    construct solutions without stats; the pipeline attaches them).
    """

    homomorphism: dict[Element, Element] | None
    strategy: str
    stats: SolveStats | None = None

    @property
    def exists(self) -> bool:
        return self.homomorphism is not None


# ---------------------------------------------------------------------------
# The cross-call analysis cache
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheStats:
    """Cumulative hit/miss counters of a :class:`StructureCache`."""

    hits: int
    misses: int


@dataclass
class CacheTally:
    """Mutable per-solve hit/miss counters.

    A :class:`SolveContext` carries one and hands it to every cache call it
    makes, so a solve can report *its own* cache traffic even while other
    threads hammer the same shared cache — the global :class:`CacheStats`
    counters only tell a per-solve story in a single-threaded process.
    """

    hits: int = 0
    misses: int = 0


class StructureCache:
    """Memoizes per-structure analyses across solve calls.

    Keys are canonical fingerprints (:func:`canonical_fingerprint`), so a
    structurally equal target built twice — e.g. re-parsed from JSON — still
    hits.  Three analyses are cached — the two the dispatcher recomputed
    per call in the seed, plus the kernel compilation:

    * :meth:`classification` — the Schaefer classes of a Boolean target
      (Theorem 3.1's polynomial recognition, run once per target);
    * :meth:`decomposition` — the greedy tree decomposition of a source
      (the Section 5 hypothesis test, run once per source);
    * :meth:`compiled_target` — the bitset index of a target
      (:class:`repro.kernel.CompiledTarget`), so ``solve_many`` amortizes
      compilation across every instance sharing the target.

    All operations are thread-safe: one reentrant lock guards lookups,
    inserts, evictions, and counters, so the cache can be shared by the
    solve service's worker threads.  The lock is held across a miss's
    ``compute()`` as well — two threads missing on the same key would
    otherwise both compute it; per-cache serialization is what the
    service's *sharded* cache (:class:`repro.service.ShardedStructureCache`)
    spreads across independent shards.

    With a persistent :class:`repro.persist.ArtifactStore` attached the
    cache becomes the L1 of a two-level hierarchy: a miss first consults
    the store (a verified record decodes in linear time — no
    recompilation), and a computed result is written through so the
    *next* process lifetime finds it.  The store is consulted only on
    misses, so the hot path is unchanged; a detached cache (``store``
    left ``None``) behaves exactly as before.
    """

    #: Default per-analysis entry bound; old entries are evicted LRU-first.
    DEFAULT_MAXSIZE = 4096

    #: Cache table per persistent artifact kind (the codec's vocabulary).
    _KIND_TABLES = {
        "classification": "_classifications",
        "decomposition": "_decompositions",
        "ctarget": "_compiled_targets",
    }

    def __init__(
        self, maxsize: int = DEFAULT_MAXSIZE, *, store=None
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self._maxsize = maxsize
        self._lock = threading.RLock()
        self._classifications: dict[str, SchaeferClass] = {}
        self._decompositions: dict[str, TreeDecomposition] = {}
        self._compiled_targets: dict[str, CompiledTarget] = {}
        self._hits = 0
        self._misses = 0
        #: The persistent L2 (duck-typed: ``get``/``put``), or ``None``.
        self._store = store

    def attach_store(self, store) -> None:
        """Attach (or with ``None`` detach) the persistent L2 store."""
        with self._lock:
            self._store = store

    def seed(self, kind: str, fingerprint: str, value) -> None:
        """Insert a recovered artifact directly (store warm-up path).

        No counters move: seeding is neither a hit nor a miss, and a
        seeded entry is indistinguishable from a computed one afterwards.
        Unknown kinds are ignored so a newer store can warm an older
        process.
        """
        table_name = self._KIND_TABLES.get(kind)
        if table_name is None:
            return
        with self._lock:
            table = getattr(self, table_name)
            if fingerprint not in table:
                if len(table) >= self._maxsize:
                    table.pop(next(iter(table)))
                table[fingerprint] = value

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(self._hits, self._misses)

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._classifications)
                + len(self._decompositions)
                + len(self._compiled_targets)
            )

    def clear(self) -> None:
        """Drop all cached analyses (counters included)."""
        with self._lock:
            self._classifications.clear()
            self._decompositions.clear()
            self._compiled_targets.clear()
            self._hits = 0
            self._misses = 0

    def _lookup(
        self,
        table: dict,
        key: str,
        compute,
        tally: CacheTally | None,
        kind: str | None = None,
    ):
        """LRU lookup: hits move to the back, inserts evict the front.

        Python dicts preserve insertion order, so the front of the dict is
        the least-recently-used entry; bounding each table keeps a
        long-lived process (the north-star serving workload) from
        accumulating one decomposition per distinct source forever.

        An L1 miss with a store attached reads through it before
        computing (a verified record is decoded, not recompiled —
        counted on the store's own hit counter) and writes a computed
        result through after.  Either way the caller's tally sees an L1
        miss: the tally answers "did *this cache* have it", which stays
        truthful across restarts.
        """
        with self._lock:
            try:
                result = table.pop(key)
                table[key] = result
                self._hits += 1
                if tally is not None:
                    tally.hits += 1
                return result
            except KeyError:
                self._misses += 1
                if tally is not None:
                    tally.misses += 1
                store = self._store
                if store is not None and kind is not None:
                    stored = store.get(kind, key)
                    if stored is not None:
                        if len(table) >= self._maxsize:
                            table.pop(next(iter(table)))
                        table[key] = stored
                        return stored
                result = compute()
                if len(table) >= self._maxsize:
                    table.pop(next(iter(table)))
                table[key] = result
                if store is not None and kind is not None:
                    store.put(kind, key, result)
                return result

    def classification(
        self, target: Structure, *, tally: CacheTally | None = None
    ) -> SchaeferClass:
        """The (cached) Schaefer classification of a Boolean ``target``."""
        return self._lookup(
            self._classifications,
            canonical_fingerprint(target),
            lambda: classify_structure(target),
            tally,
            kind="classification",
        )

    def decomposition(
        self, source: Structure, *, tally: CacheTally | None = None
    ) -> TreeDecomposition:
        """The (cached) greedy tree decomposition of ``source``."""
        return self._lookup(
            self._decompositions,
            canonical_fingerprint(source),
            lambda: cached_decomposition(source),
            tally,
            kind="decomposition",
        )

    def compiled_target(
        self, target: Structure, *, tally: CacheTally | None = None
    ) -> CompiledTarget:
        """The (cached) kernel compilation of ``target``."""
        return self._lookup(
            self._compiled_targets,
            canonical_fingerprint(target),
            lambda: compile_target(target),
            tally,
            kind="ctarget",
        )


# ---------------------------------------------------------------------------
# Per-solve context
# ---------------------------------------------------------------------------

@dataclass
class SolveContext:
    """Everything a strategy may consult while deciding one instance.

    Carries the solve options, a handle to the shared cross-call
    :class:`StructureCache`, and a per-solve memo so that the cache (and
    its hit/miss counters) is consulted at most once per analysis per
    solve, however many strategies ask.  ``scratch`` lets ``applies()``
    hand expensive intermediate results to ``run()`` (the pebble strategy
    stores the game verdict there).
    """

    cache: StructureCache
    width_threshold: int = DEFAULT_WIDTH_THRESHOLD
    pebble_k: int | None = None
    #: Whether the width-aware planner strategy may claim this solve.
    plan_enabled: bool = False
    #: When set to ``k``, ask the planner to try the canonical k-Datalog
    #: decision (Theorem 4.2) first — only honoured with planning on.
    datalog_k: int | None = None
    scratch: dict[str, object] = field(default_factory=dict)
    #: This solve's own cache traffic (the shared cache's global counters
    #: also see every *other* concurrent solve).
    tally: CacheTally = field(default_factory=CacheTally)
    # Per-solve memos are keyed by the structure itself (structures hash
    # and compare by value), so a strategy asking about a *different*
    # structure — e.g. a booleanized encoding of the target — gets that
    # structure's analysis, never a stale memo of the instance's.
    _classifications: dict[Structure, SchaeferClass] = field(
        default_factory=dict, repr=False
    )
    _decompositions: dict[Structure, TreeDecomposition] = field(
        default_factory=dict, repr=False
    )
    _compiled_targets: dict[Structure, CompiledTarget] = field(
        default_factory=dict, repr=False
    )

    def classification(self, target: Structure) -> SchaeferClass:
        """Schaefer classes of ``target``, via the cache, memoized per solve."""
        if target not in self._classifications:
            self._classifications[target] = self.cache.classification(
                target, tally=self.tally
            )
        return self._classifications[target]

    def decomposition(self, source: Structure) -> TreeDecomposition:
        """Greedy decomposition of ``source``, via the cache, memoized per solve."""
        if source not in self._decompositions:
            self._decompositions[source] = self.cache.decomposition(
                source, tally=self.tally
            )
        return self._decompositions[source]

    def compiled_target(self, target: Structure) -> CompiledTarget:
        """Kernel compilation of ``target``, via the cache, memoized per solve."""
        if target not in self._compiled_targets:
            self._compiled_targets[target] = self.cache.compiled_target(
                target, tally=self.tally
            )
        return self._compiled_targets[target]


# ---------------------------------------------------------------------------
# The strategy protocol
# ---------------------------------------------------------------------------

@runtime_checkable
class Strategy(Protocol):
    """One route of the uniform solver: a tractable island plus its algorithm.

    ``applies`` tests the island's hypothesis (is the target Horn? does
    the source have small width?) — it must be sound: when it returns
    ``True``, ``run`` must decide the instance correctly.  ``applies`` may
    stash intermediate results in ``context.scratch`` for ``run`` to
    reuse.  ``run`` returns a :class:`Solution` whose ``strategy`` names
    the route (parametrized routes interpolate, e.g.
    ``"treewidth-dp(width=2)"``); the pipeline attaches stats afterwards.
    """

    name: str

    def applies(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> bool:
        """Whether this route's tractability hypothesis holds for (A, B)."""
        ...

    def run(
        self, source: Structure, target: Structure, context: SolveContext
    ) -> Solution:
        """Decide ``source → target``; only called after ``applies`` accepted."""
        ...


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

class SolverPipeline:
    """An ordered registry of :class:`Strategy` instances plus a shared cache.

    The first registered strategy whose ``applies()`` accepts an instance
    runs it.  The default order reproduces the seed dispatcher exactly
    (see :mod:`repro.core.strategies`); ``register`` / ``unregister``
    splice routes in and out without touching the others.
    """

    def __init__(
        self,
        strategies: Iterable[Strategy] | None = None,
        *,
        cache: StructureCache | None = None,
    ) -> None:
        if strategies is None:
            from repro.core.strategies import default_strategies

            strategies = default_strategies()
        self._strategies: list[Strategy] = list(strategies)
        self.cache = cache if cache is not None else StructureCache()

    # -- registry ------------------------------------------------------------

    @property
    def strategies(self) -> tuple[Strategy, ...]:
        """The current routes, in dispatch order."""
        return tuple(self._strategies)

    @property
    def strategy_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._strategies)

    def _index_of(self, name: str) -> int:
        for i, strategy in enumerate(self._strategies):
            if strategy.name == name:
                return i
        raise KeyError(f"no strategy named {name!r} in the pipeline")

    def register(
        self,
        strategy: Strategy,
        *,
        before: str | None = None,
        after: str | None = None,
    ) -> "SolverPipeline":
        """Insert a route; by default it goes last (just a new fallback).

        ``before``/``after`` name an existing strategy to splice next to;
        they are mutually exclusive.  Returns ``self`` for chaining.
        """
        if before is not None and after is not None:
            raise ValueError("pass at most one of 'before' and 'after'")
        if before is not None:
            index = self._index_of(before)
        elif after is not None:
            index = self._index_of(after) + 1
        else:
            index = len(self._strategies)
        self._strategies.insert(index, strategy)
        return self

    def unregister(self, name: str) -> Strategy:
        """Remove and return the route named ``name``."""
        return self._strategies.pop(self._index_of(name))

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        source: Structure,
        target: Structure,
        *,
        width_threshold: int = DEFAULT_WIDTH_THRESHOLD,
        try_pebble_refutation: int | None = None,
        plan: bool = False,
        try_canonical_datalog: int | None = None,
        deadline: Deadline | None = None,
    ) -> Solution:
        """Decide ``source → target`` with the first applicable route.

        Parameters
        ----------
        width_threshold:
            Use the treewidth DP when a greedy decomposition of the source
            has width at most this value.
        try_pebble_refutation:
            If set to ``k``, run the existential k-pebble game before
            backtracking; a Spoiler win refutes the instance outright
            (sound by Theorem 4.8's easy direction).
        plan:
            Let the width-aware planner strategy claim instances that
            fall past the Schaefer islands: it chooses search vs. DP vs.
            pebble from predicted costs, and the decision lands in
            ``Solution.stats.plan``.
        try_canonical_datalog:
            If set to ``k`` (with ``plan=True``), ask the planner to try
            the canonical k-Datalog decision of Theorem 4.2 first: "does
            ρ_B derive its goal on A?", answered by the compiled pebble
            game.  A derivation refutes the instance outright; otherwise
            the planner falls back to search, so the answer stays exact.
        deadline:
            A cooperative time budget.  The kernel engines check it every
            :data:`~repro.core.cancellation.CHECK_INTERVAL` units of work
            and raise :class:`~repro.exceptions.SolveTimeoutError` from
            inside the computation once it passes — so a timed-out solve
            stops burning its thread, not just its waiter.

        Returns
        -------
        Solution
            With ``stats`` populated: strategies consulted, cache traffic,
            and timings.
        """
        if deadline is not None:
            # Install the ambient token for this thread and re-enter; the
            # recursive call sees ``deadline=None`` so a caller-installed
            # scope (the service's) is never clobbered on the plain path.
            with cancel_scope(CancellationToken(deadline)):
                return self.solve(
                    source,
                    target,
                    width_threshold=width_threshold,
                    try_pebble_refutation=try_pebble_refutation,
                    plan=plan,
                    try_canonical_datalog=try_canonical_datalog,
                )
        if source.vocabulary != target.vocabulary:
            raise VocabularyError(
                "a homomorphism problem needs a common vocabulary"
            )
        context = SolveContext(
            cache=self.cache,
            width_threshold=width_threshold,
            pebble_k=try_pebble_refutation,
            plan_enabled=plan,
            datalog_k=try_canonical_datalog,
        )
        attempted: list[str] = []
        timings: dict[str, float] = {}
        start = time.perf_counter()
        solution: Solution | None = None
        with maybe_span("pipeline.solve") as pipeline_span, \
                collect_kernel_counters() as kernel_bag:
            for strategy in self._strategies:
                tick = time.perf_counter()
                accepted = strategy.applies(source, target, context)
                timings[f"applies:{strategy.name}"] = (
                    (time.perf_counter() - tick) * 1000
                )
                attempted.append(strategy.name)
                if accepted:
                    tick = time.perf_counter()
                    with maybe_span(f"strategy:{strategy.name}"):
                        solution = strategy.run(source, target, context)
                    timings[f"run:{strategy.name}"] = (
                        (time.perf_counter() - tick) * 1000
                    )
                    break
        if solution is None:
            raise RuntimeError(
                "no strategy applied — the pipeline needs a total fallback "
                "(the default registry ends with backtracking)"
            )
        timings["total"] = (time.perf_counter() - start) * 1000
        if pipeline_span is not None:
            pipeline_span.set(strategy=solution.strategy)
        # The context's tally counts only this solve's cache calls, so the
        # numbers stay truthful when other threads share the cache.
        stats = SolveStats(
            attempted=tuple(attempted),
            cache_hits=context.tally.hits,
            cache_misses=context.tally.misses,
            timings=timings,
            plan=context.scratch.get("plan"),  # type: ignore[arg-type]
            kernel=dict(kernel_bag) if kernel_bag else None,
        )
        # Planned solves feed the plan-vs-actual calibration log.
        if stats.plan is not None:
            _calibration.observe(stats)
        return replace(solution, stats=stats)

    def solve_many(
        self,
        pairs: Iterable[tuple[Structure, Structure]],
        *,
        width_threshold: int = DEFAULT_WIDTH_THRESHOLD,
        try_pebble_refutation: int | None = None,
        plan: bool = False,
        try_canonical_datalog: int | None = None,
    ) -> list[Solution]:
        """Decide a batch of instances, amortizing per-target analysis.

        The shared :class:`StructureCache` guarantees each distinct target
        is classified once (and each distinct source decomposed once);
        grouping the batch by target fingerprint additionally keeps every
        group's solves adjacent, so a bounded cache cannot evict a target
        between two instances that share it, however large the batch.
        Results are returned in input order; ``solve_many`` agrees with
        mapping :meth:`solve` over the batch instance by instance.
        """
        indexed = list(enumerate(pairs))
        groups: dict[str, list[tuple[int, Structure, Structure]]] = {}
        for position, (source, target) in indexed:
            key = canonical_fingerprint(target)
            groups.setdefault(key, []).append((position, source, target))
        solutions: list[Solution | None] = [None] * len(indexed)
        for group in groups.values():
            for position, source, target in group:
                solutions[position] = self.solve(
                    source,
                    target,
                    width_threshold=width_threshold,
                    try_pebble_refutation=try_pebble_refutation,
                    plan=plan,
                    try_canonical_datalog=try_canonical_datalog,
                )
        return solutions  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# The default pipeline
# ---------------------------------------------------------------------------

_default: SolverPipeline | None = None


def default_pipeline() -> SolverPipeline:
    """The process-wide pipeline behind :func:`solve` (shared cache)."""
    global _default
    if _default is None:
        _default = SolverPipeline()
    return _default


def solve(
    source: Structure,
    target: Structure,
    *,
    width_threshold: int = DEFAULT_WIDTH_THRESHOLD,
    try_pebble_refutation: int | None = None,
    plan: bool = False,
    try_canonical_datalog: int | None = None,
) -> Solution:
    """Decide ``source → target`` on the default pipeline.

    Drop-in replacement for the seed dispatcher: routing decisions and
    strategy names are unchanged (``plan=True`` opts into the
    width-aware planner); the returned :class:`Solution` additionally
    carries :class:`SolveStats`.
    """
    return default_pipeline().solve(
        source,
        target,
        width_threshold=width_threshold,
        try_pebble_refutation=try_pebble_refutation,
        plan=plan,
        try_canonical_datalog=try_canonical_datalog,
    )


def solve_many(
    pairs: Iterable[tuple[Structure, Structure]],
    *,
    width_threshold: int = DEFAULT_WIDTH_THRESHOLD,
    try_pebble_refutation: int | None = None,
    plan: bool = False,
    try_canonical_datalog: int | None = None,
) -> list[Solution]:
    """Batch-decide instances on the default pipeline (shared cache)."""
    return default_pipeline().solve_many(
        pairs,
        width_threshold=width_threshold,
        try_pebble_refutation=try_pebble_refutation,
        plan=plan,
        try_canonical_datalog=try_canonical_datalog,
    )
