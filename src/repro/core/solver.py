"""The uniform solver — thin compatibility façade over the pipeline.

The paper's program is to find *uniform* polynomial cases of the
homomorphism problem; the routing that operationalizes it (Schaefer
targets → direct algorithms, bounded-treewidth sources → the Theorem 5.4
DP, the optional k-pebble refutation, backtracking as the total fallback)
now lives in :mod:`repro.core.pipeline` as an ordered registry of
:class:`~repro.core.pipeline.Strategy` objects, one module per route
under :mod:`repro.core.strategies`.

This module keeps the seed's public surface stable: ``solve`` delegates
to the process-wide default pipeline (routing decisions and strategy
names are unchanged), and :class:`Solution` / ``DEFAULT_WIDTH_THRESHOLD``
are re-exported.  New code should import from :mod:`repro.core.pipeline`
directly — that is where ``solve_many``, ``SolverPipeline``, and the
structure cache live.
"""

from __future__ import annotations

from repro.core.pipeline import (
    DEFAULT_WIDTH_THRESHOLD,
    Solution,
    SolveStats,
    solve,
    solve_many,
)

__all__ = [
    "DEFAULT_WIDTH_THRESHOLD",
    "Solution",
    "SolveStats",
    "solve",
    "solve_many",
]
