"""The uniform solver: recognize a tractable island, else backtrack.

The paper's program is to find *uniform* polynomial cases of the
homomorphism problem.  This dispatcher operationalizes the three families
it proves uniformizable:

1. **Schaefer targets** (Section 3): if the target is Boolean and in SC,
   route to the direct quadratic algorithms of Theorem 3.4 (Horn,
   dual-Horn, bijunctive), the GF(2) route for affine, or the constant map
   for 0/1-valid targets.
2. **Bounded-treewidth sources** (Section 5): if a greedy decomposition of
   the source has small width, run the Theorem 5.4 dynamic program.
3. **k-consistency** (Section 4): optionally run the existential k-pebble
   game as a *sound incomplete* refutation step — if the Spoiler wins,
   there is certainly no homomorphism (and for targets whose cCSP is
   k-Datalog-expressible this is complete, Theorem 4.8).

Everything else falls back to the NP backtracking baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.boolean.direct import (
    solve_bijunctive_csp,
    solve_dual_horn_csp,
    solve_horn_csp,
)
from repro.boolean.schaefer import SchaeferClass, classify_structure
from repro.boolean.uniform import solve_schaefer_csp
from repro.csp.backtracking import solve_backtracking
from repro.pebble.game import spoiler_wins
from repro.structures.structure import Structure
from repro.treewidth.dp import solve_by_treewidth
from repro.treewidth.heuristics import decompose

__all__ = ["Solution", "solve"]

Element = Hashable

#: Width up to which the treewidth DP is preferred over backtracking.
DEFAULT_WIDTH_THRESHOLD = 3


@dataclass(frozen=True)
class Solution:
    """The outcome of :func:`solve`.

    ``homomorphism`` is ``None`` when no homomorphism exists;
    ``strategy`` names the algorithm that decided the instance, making
    the dispatcher's routing observable (and testable).
    """

    homomorphism: dict[Element, Element] | None
    strategy: str

    @property
    def exists(self) -> bool:
        return self.homomorphism is not None


def solve(
    source: Structure,
    target: Structure,
    *,
    width_threshold: int = DEFAULT_WIDTH_THRESHOLD,
    try_pebble_refutation: int | None = None,
) -> Solution:
    """Decide ``source → target`` with the best applicable algorithm.

    Parameters
    ----------
    width_threshold:
        Use the treewidth DP when a greedy decomposition of the source has
        width at most this value.
    try_pebble_refutation:
        If set to ``k``, run the existential k-pebble game before
        backtracking; a Spoiler win refutes the instance outright
        (sound by Theorem 4.8's easy direction).
    """
    # 1. Schaefer targets (Section 3).
    if target.is_boolean:
        classes = classify_structure(target)
        if classes & SchaeferClass.ZERO_VALID:
            return Solution(
                {e: 0 for e in source.universe}, "zero-valid"
            )
        if classes & SchaeferClass.ONE_VALID:
            return Solution(
                {e: 1 for e in source.universe}, "one-valid"
            )
        if classes & SchaeferClass.HORN:
            return Solution(solve_horn_csp(source, target), "horn-direct")
        if classes & SchaeferClass.DUAL_HORN:
            return Solution(
                solve_dual_horn_csp(source, target), "dual-horn-direct"
            )
        if classes & SchaeferClass.BIJUNCTIVE:
            return Solution(
                solve_bijunctive_csp(source, target), "bijunctive-direct"
            )
        if classes & SchaeferClass.AFFINE:
            return Solution(
                solve_schaefer_csp(source, target), "affine-gf2"
            )

    # 2. Bounded-treewidth sources (Section 5).
    decomposition = decompose(source)
    if decomposition.width <= width_threshold:
        return Solution(
            solve_by_treewidth(source, target, decomposition),
            f"treewidth-dp(width={decomposition.width})",
        )

    # 3. Optional pebble-game refutation (Section 4).
    if try_pebble_refutation is not None:
        if spoiler_wins(source, target, try_pebble_refutation):
            return Solution(
                None, f"pebble-refutation(k={try_pebble_refutation})"
            )

    # 4. General case.
    return Solution(
        solve_backtracking(source, target), "backtracking"
    )
