"""The paper's primary contribution, as an API.

:class:`HomomorphismProblem` unifies conjunctive-query containment,
conjunctive-query evaluation, and constraint satisfaction; :func:`solve`
is the uniform solver that routes each instance to the tractable algorithm
(Schaefer / treewidth / pebble games) the paper proves applicable.
"""

from repro.core.problem import HomomorphismProblem
from repro.core.solver import DEFAULT_WIDTH_THRESHOLD, Solution, solve

__all__ = [
    "HomomorphismProblem",
    "Solution",
    "solve",
    "DEFAULT_WIDTH_THRESHOLD",
]
