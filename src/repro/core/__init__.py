"""The paper's primary contribution, as an API.

:class:`HomomorphismProblem` unifies conjunctive-query containment,
conjunctive-query evaluation, and constraint satisfaction;
:func:`solve` routes each instance through the pluggable
:class:`SolverPipeline` to the tractable algorithm (Schaefer / treewidth /
pebble games) the paper proves applicable, and :func:`solve_many` batches
instances so per-target analysis is computed once.  See
:mod:`repro.core.pipeline` for the strategy protocol and the cache, and
``docs/architecture.md`` for how an instance flows through the pipeline.
"""

from repro.core.pipeline import (
    DEFAULT_WIDTH_THRESHOLD,
    CacheStats,
    Solution,
    SolveContext,
    SolveStats,
    SolverPipeline,
    Strategy,
    StructureCache,
    default_pipeline,
    solve,
    solve_many,
)
from repro.core.problem import HomomorphismProblem

__all__ = [
    "HomomorphismProblem",
    "Solution",
    "SolveStats",
    "CacheStats",
    "SolveContext",
    "Strategy",
    "StructureCache",
    "SolverPipeline",
    "default_pipeline",
    "solve",
    "solve_many",
    "DEFAULT_WIDTH_THRESHOLD",
]
