"""The homomorphism problem — the paper's unifying object (Section 2).

"Given two finite relational structures A and B, is there a homomorphism
h: A → B?"  Conjunctive-query containment, conjunctive-query evaluation,
and constraint satisfaction are all this problem in different clothes;
:class:`HomomorphismProblem` is the common currency, with constructors
from each formulation and translations back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.cq.canonical import canonical_database, query_of_structure
from repro.cq.query import ConjunctiveQuery
from repro.csp.instance import CSPInstance
from repro.exceptions import VocabularyError
from repro.structures.homomorphism import is_homomorphism
from repro.structures.structure import Structure

__all__ = ["HomomorphismProblem"]

Element = Hashable


@dataclass(frozen=True)
class HomomorphismProblem:
    """An instance ``(A, B)`` of the uniform homomorphism problem."""

    source: Structure
    target: Structure

    def __post_init__(self) -> None:
        if self.source.vocabulary != self.target.vocabulary:
            raise VocabularyError(
                "a homomorphism problem needs a common vocabulary"
            )

    # -- constructors from the paper's other two formulations -----------------

    @classmethod
    def from_containment(
        cls, q1: ConjunctiveQuery, q2: ConjunctiveQuery
    ) -> "HomomorphismProblem":
        """The instance deciding ``Q1 ⊆ Q2`` (Theorem 2.1).

        ``Q1 ⊆ Q2`` iff there is a homomorphism ``D_{Q2} → D_{Q1}``, so the
        *source* is the canonical database of Q2 and the *target* that of
        Q1 (markers included, pinning distinguished variables).
        """
        if q1.arity != q2.arity:
            raise VocabularyError("containment needs equal arities")
        union = q1.vocabulary.union(q2.vocabulary)
        return cls(
            canonical_database(q2, union), canonical_database(q1, union)
        )

    @classmethod
    def from_csp(cls, instance: CSPInstance) -> "HomomorphismProblem":
        """The instance equivalent to an AI-style CSP."""
        source, target = instance.to_homomorphism()
        return cls(source, target)

    # -- translations to the other formulations -------------------------------

    def to_containment(self) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
        """Queries ``(Q_B, Q_A)`` with ``A → B`` iff ``Q_B ⊆ Q_A``.

        The Section 2 reduction from the homomorphism problem back to
        Boolean conjunctive-query containment.
        """
        return (
            query_of_structure(self.target),
            query_of_structure(self.source),
        )

    def to_evaluation(self) -> tuple[ConjunctiveQuery, Structure]:
        """A pair (query, database) with ``A → B`` iff the Boolean query
        ``Q_A`` holds on ``B``."""
        return query_of_structure(self.source), self.target

    # -- verification -----------------------------------------------------------

    def check(self, mapping: Mapping[Element, Element]) -> bool:
        """Whether ``mapping`` solves the instance."""
        return is_homomorphism(mapping, self.source, self.target)
