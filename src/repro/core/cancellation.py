"""Deadlines and cooperative cancellation for the kernel hot loops.

A timed-out request is only cheap if the *computation* stops: the solve
service's waiter-side ``asyncio.wait_for`` frees the caller, but the
worker thread (or process) would keep grinding an abandoned search to
completion, stalling every request queued behind it.  This module is the
cooperative half of the story:

* :class:`Deadline` — a monotonic-clock budget (``Deadline.after(1.5)``)
  that travels from ``SolveService.submit(timeout=...)`` down to the
  engines.  Deadlines are *extendable*: when a coalesced duplicate with
  a longer timeout attaches to a running computation, the shared
  deadline moves out and the already-running loops simply keep going.
* :class:`CancellationToken` — a deadline plus an explicit ``cancel()``
  switch.  ``token.check()`` raises :class:`SolveTimeoutError` when the
  deadline has passed (or the token was cancelled), from *inside* the
  computation.
* an ambient per-thread scope — :func:`cancel_scope` installs a token,
  :func:`current_token` reads it.  The kernel loops fetch the token once
  on entry and test it every :data:`CHECK_INTERVAL` units of work, so
  the happy path with no deadline pays one ``is not None`` per node and
  nothing else.

The pattern inside an engine::

    token = current_token()
    ...
    if token is not None and not (counter & CHECK_MASK):
        token.check()   # raises SolveTimeoutError when expired

Raising from inside the loop unwinds through the strategy and the
pipeline like any error, so the worker is free within one check interval
of the deadline passing — the property ``tests/test_chaos.py`` pins.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.exceptions import SolveTimeoutError
from repro.obs.metrics import kcount

__all__ = [
    "CHECK_INTERVAL",
    "CHECK_MASK",
    "CancellationToken",
    "Deadline",
    "cancel_scope",
    "combine_deadlines",
    "checkpoint",
    "current_token",
]

#: How many units of work (search nodes, worklist pops, table rows) an
#: engine performs between two token checks.  A power of two so the test
#: is one AND against :data:`CHECK_MASK`.
CHECK_INTERVAL = 1024
CHECK_MASK = CHECK_INTERVAL - 1


class Deadline:
    """An absolute point on the monotonic clock, extendable while running.

    ``expires_at`` is in :func:`time.monotonic` seconds.  Extension is a
    single float store (atomic under the GIL), so a solve thread may read
    ``remaining()`` while the event loop extends the deadline for a
    newly attached coalesced waiter.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def extend_to(self, other: "Deadline | None") -> None:
        """Move the expiry out to cover ``other`` (later wins)."""
        if other is not None and other.expires_at > self.expires_at:
            self.expires_at = other.expires_at

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def combine_deadlines(
    a: "Deadline | None", b: "Deadline | None"
) -> "Deadline | None":
    """The *looser* of two deadlines (``None`` means unbounded and wins).

    This is the coalescing rule: a shared computation must run at least
    as long as its most patient waiter needs.
    """
    if a is None or b is None:
        return None
    return a if a.expires_at >= b.expires_at else b


class CancellationToken:
    """A deadline plus an explicit cancel switch, checked cooperatively."""

    __slots__ = ("deadline", "_cancelled")

    def __init__(self, deadline: Deadline | None = None) -> None:
        self.deadline = deadline
        self._cancelled = False

    def cancel(self) -> None:
        """Flip the switch; the next :meth:`check` raises."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        return self._cancelled or (
            self.deadline is not None and self.deadline.expired()
        )

    def check(self) -> None:
        """Raise :class:`SolveTimeoutError` if cancelled or past deadline.

        Called once per :data:`CHECK_INTERVAL` units of kernel work, so
        the ``deadline.checks`` counter bump here stays off the hot path.
        """
        kcount("deadline.checks")
        if self._cancelled:
            raise SolveTimeoutError("solve cancelled cooperatively")
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            raise SolveTimeoutError(
                "solve deadline expired inside the computation"
            )


_scope = threading.local()


def current_token() -> CancellationToken | None:
    """The token installed on this thread, or ``None`` (the happy path)."""
    return getattr(_scope, "token", None)


@contextmanager
def cancel_scope(token: CancellationToken | None) -> Iterator[None]:
    """Install ``token`` as this thread's ambient cancellation token.

    Scopes nest: the innermost installed token wins, and the previous
    one is restored on exit.  Installing ``None`` explicitly shields an
    inner computation from an outer deadline (used nowhere yet, but the
    semantics should be unsurprising).
    """
    previous = getattr(_scope, "token", None)
    _scope.token = token
    try:
        yield
    finally:
        _scope.token = previous


def checkpoint() -> None:
    """Check the ambient token, if any (for coarse-grained call sites)."""
    token = getattr(_scope, "token", None)
    if token is not None:
        token.check()
