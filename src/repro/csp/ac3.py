"""(Generalized) arc consistency for homomorphism instances.

AC-3-style propagation: for every fact of ``A`` (a constraint whose allowed
tuples are the target relation) and every position, prune domain values
with no supporting target tuple.  This is strong 2-consistency in the
pebble-game terminology of Section 4 — the ``k = 2`` member of the
k-consistency family implemented in :mod:`repro.pebble.kconsistency` — and
the standard preprocessing step of the AI solvers the paper's introduction
cites [Dec92, Kum92].
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.exceptions import VocabularyError
from repro.structures.structure import Structure

__all__ = ["establish_arc_consistency"]

Element = Hashable
Domains = dict[Element, set[Element]]


def establish_arc_consistency(
    source: Structure,
    target: Structure,
    domains: Domains | None = None,
) -> Domains | None:
    """Prune domains to (generalized) arc consistency.

    Returns the pruned domains, or ``None`` on a domain wipe-out (which
    proves no homomorphism exists).  Starting ``domains`` default to the
    full target universe for every element of the source.
    """
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")
    if domains is None:
        domains = {e: set(target.universe) for e in source.universe}
    else:
        domains = {e: set(values) for e, values in domains.items()}

    facts = list(source.facts())
    touching: dict[Element, list[int]] = {}
    for index, (_name, fact) in enumerate(facts):
        for element in set(fact):
            touching.setdefault(element, []).append(index)

    queue: deque[int] = deque(range(len(facts)))
    queued = set(queue)

    while queue:
        index = queue.popleft()
        queued.discard(index)
        name, fact = facts[index]
        relation = target.relation(name)
        supported = [
            t
            for t in relation
            if all(t[i] in domains[fact[i]] for i in range(len(fact)))
        ]
        for position, element in enumerate(fact):
            values = {t[position] for t in supported}
            if domains[element] <= values:
                continue
            domains[element] &= values
            if not domains[element]:
                return None
            # Re-enqueue every fact touching the pruned element — including
            # this one: pruning position i can retract support for position
            # j of the same fact.
            for other in touching.get(element, ()):
                if other not in queued:
                    queue.append(other)
                    queued.add(other)
    return domains
