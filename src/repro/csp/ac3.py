"""(Generalized) arc consistency for homomorphism instances.

AC-3-style propagation: for every fact of ``A`` (a constraint whose allowed
tuples are the target relation) and every position, prune domain values
with no supporting target tuple.  This is strong 2-consistency in the
pebble-game terminology of Section 4 — the ``k = 2`` member of the
k-consistency family implemented in :mod:`repro.pebble.kconsistency` — and
the standard preprocessing step of the AI solvers the paper's introduction
cites [Dec92, Kum92].

By default the propagation runs on the compiled bitset kernel
(:mod:`repro.kernel.propagate`): integer-indexed domains, precompiled
``(relation, position, value)`` support bitsets, AC-2001-style residual
last supports.  The original rescan loop below remains the reference
semantics, selectable with ``engine="legacy"``; both compute the same
(unique) arc-consistent closure.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.exceptions import VocabularyError
from repro.kernel.compile import compile_source, compile_target
from repro.kernel.engine import LEGACY, resolve_engine
from repro.kernel.propagate import propagate
from repro.structures.structure import Structure

__all__ = ["establish_arc_consistency"]

Element = Hashable
Domains = dict[Element, set[Element]]


def establish_arc_consistency(
    source: Structure,
    target: Structure,
    domains: Domains | None = None,
    *,
    engine: str | None = None,
) -> Domains | None:
    """Prune domains to (generalized) arc consistency.

    Returns the pruned domains, or ``None`` on a domain wipe-out (which
    proves no homomorphism exists).  Starting ``domains`` default to the
    full target universe for every element of the source.
    """
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")
    if resolve_engine(engine) == LEGACY:
        return _establish_legacy(source, target, domains)

    csource = compile_source(source)
    ctarget = compile_target(target)
    value_index = ctarget.value_index

    touched = [False] * len(csource.variables)
    for _name, scope in csource.constraints:
        for x in scope:
            touched[x] = True

    masks = [ctarget.full_mask] * len(csource.variables)
    if domains is not None:
        for x, variable in enumerate(csource.variables):
            if variable in domains:
                given = domains[variable]
                mask = 0
                for value in given:
                    v = value_index.get(value)
                    if v is not None:
                        mask |= 1 << v
                if not mask and given and touched[x]:
                    # Every given value lies outside the target universe:
                    # the reference loop prunes them all and reports the
                    # wipe-out.  (A given *empty* set is never pruned, so
                    # it passes through below instead.)
                    return None
                masks[x] = mask
            elif touched[x]:
                # The reference loop indexes domains[element] for every
                # element occurring in a fact; fail the same way.
                raise KeyError(variable)

    if propagate(csource, ctarget, masks) is None:
        return None

    # Untouched elements are never pruned: their (possibly custom, even
    # out-of-universe) domains pass through verbatim, as in the reference.
    var_index = csource.var_index
    if domains is None:
        full = set(target.universe)
        return {
            variable: ctarget.decode(masks[x]) if touched[x] else set(full)
            for x, variable in enumerate(csource.variables)
        }
    result: Domains = {}
    for element, given in domains.items():
        x = var_index.get(element)
        if x is not None and touched[x]:
            result[element] = ctarget.decode(masks[x])
        else:
            result[element] = set(given)
    return result


def _establish_legacy(
    source: Structure,
    target: Structure,
    domains: Domains | None = None,
) -> Domains | None:
    """The reference AC-3 rescan loop (the kernel's parity oracle)."""
    if domains is None:
        domains = {e: set(target.universe) for e in source.universe}
    else:
        domains = {e: set(values) for e, values in domains.items()}

    facts = list(source.facts())
    touching: dict[Element, list[int]] = {}
    for index, (_name, fact) in enumerate(facts):
        for element in set(fact):
            touching.setdefault(element, []).append(index)

    queue: deque[int] = deque(range(len(facts)))
    queued = set(queue)

    while queue:
        index = queue.popleft()
        queued.discard(index)
        name, fact = facts[index]
        relation = target.relation(name)
        supported = [
            t
            for t in relation
            if all(t[i] in domains[fact[i]] for i in range(len(fact)))
        ]
        for position, element in enumerate(fact):
            values = {t[position] for t in supported}
            if domains[element] <= values:
                continue
            domains[element] &= values
            if not domains[element]:
                return None
            # Re-enqueue every fact touching the pruned element — including
            # this one: pruning position i can retract support for position
            # j of the same fact.
            for other in touching.get(element, ()):
                if other not in queued:
                    queue.append(other)
                    queued.add(other)
    return domains
