"""The generic CSP solving facade over the homomorphism search.

Thin conveniences over :mod:`repro.structures.homomorphism` that add the
standard AI toolkit: optional arc-consistency preprocessing, a degree
(static) variable-ordering heuristic, and AI-instance entry points.  This
is the NP-complete general-case baseline against which every tractable
class in the paper is benchmarked.
"""

from __future__ import annotations

from typing import Hashable

from repro.csp.ac3 import establish_arc_consistency
from repro.csp.instance import CSPInstance
from repro.structures.homomorphism import SearchStats, find_homomorphism
from repro.structures.structure import Structure, _sort_key

__all__ = ["solve_backtracking", "solve_instance", "degree_order"]

Element = Hashable


def degree_order(source: Structure) -> list[Element]:
    """Elements of the source sorted by decreasing number of occurrences.

    The classic "degree" static variable-ordering heuristic.
    """
    occurrences = source.occurrences()
    return sorted(
        source.universe,
        key=lambda e: (-len(occurrences[e]), _sort_key(e)),
    )


def solve_backtracking(
    source: Structure,
    target: Structure,
    *,
    preprocess: bool = True,
    use_degree_order: bool = False,
    stats: SearchStats | None = None,
) -> dict[Element, Element] | None:
    """Find a homomorphism with the generic backtracking solver.

    ``preprocess=True`` runs (generalized) arc consistency first and bails
    out early on a wipe-out.  ``use_degree_order=True`` replaces the
    dynamic MRV ordering with the static degree heuristic.
    """
    if preprocess:
        domains = establish_arc_consistency(source, target)
        if domains is None:
            return None
    order = degree_order(source) if use_degree_order else None
    return find_homomorphism(source, target, order=order, stats=stats)


def solve_instance(
    instance: CSPInstance, **kwargs
) -> dict[Element, Element] | None:
    """Solve an AI-style CSP instance via the homomorphism reduction.

    The returned assignment maps the instance's variables to values.
    """
    source, target = instance.to_homomorphism()
    hom = solve_backtracking(source, target, **kwargs)
    if hom is None:
        return None
    return {v: hom[v] for v in instance.variables}
