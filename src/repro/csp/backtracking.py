"""The generic CSP solving facade over the homomorphism search.

Thin conveniences over :mod:`repro.structures.homomorphism` that add the
standard AI toolkit: optional arc-consistency preprocessing, a degree
(static) variable-ordering heuristic, and AI-instance entry points.  This
is the NP-complete general-case baseline against which every tractable
class in the paper is benchmarked.

On the default kernel engine the facade runs end-to-end on the compiled
bitset representation: one compilation (memoized per structure) feeds the
GAC preprocessing pass *and* the search, and the propagated domains are
kept for the search instead of being recomputed.  ``engine="legacy"``
restores the reference behaviour — AC-3 used purely as a bail-out, then
a from-scratch search — as the parity oracle.
"""

from __future__ import annotations

from typing import Hashable

from repro.csp.ac3 import establish_arc_consistency
from repro.csp.instance import CSPInstance
from repro.exceptions import VocabularyError
from repro.kernel.compile import compile_source
from repro.kernel.engine import LEGACY, resolve_engine
from repro.kernel.search import solve as kernel_solve
from repro.structures.homomorphism import SearchStats, find_homomorphism
from repro.structures.structure import Structure

__all__ = ["solve_backtracking", "solve_instance", "degree_order"]

Element = Hashable


def degree_order(source: Structure) -> list[Element]:
    """Elements of the source sorted by decreasing number of occurrences.

    The classic "degree" static variable-ordering heuristic.  Computed
    from the compiled source's occurrence index, so repeated calls
    against one structure do not re-count occurrences.
    """
    compiled = compile_source(source)
    return [compiled.variables[x] for x in compiled.degree_order]


def solve_backtracking(
    source: Structure,
    target: Structure,
    *,
    preprocess: bool = True,
    use_degree_order: bool = False,
    stats: SearchStats | None = None,
    engine: str | None = None,
) -> dict[Element, Element] | None:
    """Find a homomorphism with the generic backtracking solver.

    ``preprocess=True`` runs (generalized) arc consistency first and bails
    out early on a wipe-out.  ``use_degree_order=True`` replaces the
    dynamic MRV ordering with the static degree heuristic.  On the kernel
    engine the arc-consistent domains also seed the search.
    """
    if resolve_engine(engine) == LEGACY:
        if preprocess:
            domains = establish_arc_consistency(
                source, target, engine=LEGACY
            )
            if domains is None:
                return None
        order = degree_order(source) if use_degree_order else None
        return find_homomorphism(
            source, target, order=order, stats=stats, engine=LEGACY
        )

    if source.vocabulary != target.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")
    if source.universe and not target.universe:
        return None
    order = degree_order(source) if use_degree_order else None
    return kernel_solve(
        source, target, stats=stats, order=order, propagate_first=preprocess
    )


def solve_instance(
    instance: CSPInstance, **kwargs
) -> dict[Element, Element] | None:
    """Solve an AI-style CSP instance via the homomorphism reduction.

    The returned assignment maps the instance's variables to values.
    """
    source, target = instance.to_homomorphism()
    hom = solve_backtracking(source, target, **kwargs)
    if hom is None:
        return None
    return {v: hom[v] for v in instance.variables}
