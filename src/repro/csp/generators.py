"""Workload generators for tests, examples, and the benchmark harness.

The paper evaluates nothing empirically, so this module provides the
synthetic inputs that exercise each theorem's code path: random structures,
Schaefer-class Boolean targets (closed under the defining polymorphism),
coloring instances, random conjunctive queries of several shapes, and
bounded-treewidth structures built from random k-trees.

All generators take a ``seed`` so every experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.boolean.relations import (
    tuple_and,
    tuple_majority,
    tuple_or,
    tuple_xor3,
)
from repro.cq.query import Atom, ConjunctiveQuery
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

__all__ = [
    "random_structure",
    "random_boolean_target",
    "random_schaefer_target",
    "coloring_instance",
    "random_chain_query",
    "random_star_query",
    "random_query",
    "random_two_atom_query",
    "random_k_tree",
    "bounded_treewidth_structure",
]

Element = Hashable


def random_structure(
    vocabulary: Vocabulary,
    n: int,
    facts_per_relation: int,
    *,
    seed: int | None = None,
) -> Structure:
    """A random structure over ``vocabulary`` with ``n`` elements."""
    rng = random.Random(seed)
    relations = {
        symbol.name: {
            tuple(rng.randrange(n) for _ in range(symbol.arity))
            for _ in range(facts_per_relation)
        }
        for symbol in vocabulary
    }
    return Structure(vocabulary, range(n), relations)


def _close_under(tuples: set, operation, arity_of_op: int) -> frozenset:
    closed = set(tuples)
    while True:
        if arity_of_op == 2:
            new = {operation(a, b) for a in closed for b in closed}
        else:
            new = {
                operation(a, b, c)
                for a in closed
                for b in closed
                for c in closed
            }
        if new <= closed:
            return frozenset(closed)
        closed |= new


def random_boolean_target(
    vocabulary: Vocabulary,
    tuples_per_relation: int,
    *,
    closure: str | None = None,
    seed: int | None = None,
) -> Structure:
    """A random Boolean structure, optionally closed into a Schaefer class.

    ``closure`` is one of ``None``, ``"horn"``, ``"dual_horn"``,
    ``"bijunctive"``, ``"affine"``; random tuples are closed under the
    matching polymorphism (AND / OR / majority / ternary XOR), which by
    the criteria of Theorem 3.1 guarantees class membership.
    """
    rng = random.Random(seed)
    operations = {
        "horn": (tuple_and, 2),
        "dual_horn": (tuple_or, 2),
        "bijunctive": (tuple_majority, 3),
        "affine": (tuple_xor3, 3),
    }
    relations = {}
    for symbol in vocabulary:
        tuples = {
            tuple(rng.randint(0, 1) for _ in range(symbol.arity))
            for _ in range(tuples_per_relation)
        }
        if closure is not None:
            operation, op_arity = operations[closure]
            if tuples:
                tuples = set(_close_under(tuples, operation, op_arity))
        relations[symbol.name] = tuples
    return Structure(vocabulary, {0, 1}, relations)


def random_schaefer_target(
    vocabulary: Vocabulary,
    tuples_per_relation: int,
    schaefer_class: str,
    *,
    seed: int | None = None,
) -> Structure:
    """Alias of :func:`random_boolean_target` with a mandatory class."""
    return random_boolean_target(
        vocabulary,
        tuples_per_relation,
        closure=schaefer_class,
        seed=seed,
    )


def coloring_instance(
    graph: Structure, colors: int
) -> tuple[Structure, Structure]:
    """The k-coloring instance ``(G, K_k)`` of Section 2."""
    from repro.structures.graphs import clique

    return graph, clique(colors)


def random_chain_query(
    length: int, relation: str = "E", *, seed: int | None = None
) -> ConjunctiveQuery:
    """A chain (path) query ``Q(X0, Xn) :- E(X0,X1), …, E(Xn-1,Xn)``."""
    if length < 1:
        raise ValueError("chain length must be at least 1")
    atoms = [
        Atom(relation, (f"X{i}", f"X{i + 1}")) for i in range(length)
    ]
    return ConjunctiveQuery(("X0", f"X{length}"), atoms)


def random_star_query(
    rays: int, relation: str = "E", *, seed: int | None = None
) -> ConjunctiveQuery:
    """A star query ``Q(C) :- E(C,X1), …, E(C,Xn)``."""
    if rays < 1:
        raise ValueError("star needs at least one ray")
    atoms = [Atom(relation, ("C", f"X{i}")) for i in range(rays)]
    return ConjunctiveQuery(("C",), atoms)


def random_query(
    num_atoms: int,
    num_variables: int,
    vocabulary: Vocabulary,
    head_width: int = 1,
    *,
    seed: int | None = None,
) -> ConjunctiveQuery:
    """A random conjunctive query over the given vocabulary."""
    rng = random.Random(seed)
    variables = [f"X{i}" for i in range(num_variables)]
    symbols = list(vocabulary)
    atoms = [
        Atom(
            (symbol := rng.choice(symbols)).name,
            tuple(rng.choice(variables) for _ in range(symbol.arity)),
        )
        for _ in range(num_atoms)
    ]
    head = tuple(rng.choice(variables) for _ in range(head_width))
    return ConjunctiveQuery(head, atoms)


def random_two_atom_query(
    num_relations: int,
    num_variables: int,
    arity: int = 2,
    head_width: int = 1,
    *,
    seed: int | None = None,
) -> ConjunctiveQuery:
    """A random query where every predicate occurs at most twice.

    Generates up to two atoms over each of ``num_relations`` predicates —
    the inputs of Saraiya's tractable containment case (Proposition 3.6).
    """
    rng = random.Random(seed)
    variables = [f"X{i}" for i in range(num_variables)]
    atoms = []
    for index in range(num_relations):
        for _ in range(rng.randint(1, 2)):
            atoms.append(
                Atom(
                    f"R{index}",
                    tuple(rng.choice(variables) for _ in range(arity)),
                )
            )
    head = tuple(rng.choice(variables) for _ in range(head_width))
    return ConjunctiveQuery(head, atoms)


def random_k_tree(
    n: int, width: int, *, seed: int | None = None
) -> tuple[
    list[tuple[int, int]],
    list[frozenset[int]],
    list[tuple[int, int]],
]:
    """A random k-tree: edges, decomposition bags, and the bag tree.

    Builds the standard k-tree process — start from a (width+1)-clique,
    then attach each new vertex to ``width`` members of a random existing
    clique — and returns ``(edges, bags, tree_edges)`` where ``bags`` with
    ``tree_edges`` (pairs of bag indices) form a valid width-``width`` tree
    decomposition.
    """
    if n < width + 1:
        raise ValueError("need at least width+1 vertices")
    rng = random.Random(seed)
    base = list(range(width + 1))
    edges = [
        (i, j) for i in base for j in base if i < j
    ]
    bags: list[frozenset[int]] = [frozenset(base)]
    tree_edges: list[tuple[int, int]] = []
    cliques: list[tuple[int, ...]] = [tuple(base)]
    for vertex in range(width + 1, n):
        host_index = rng.randrange(len(cliques))
        host = list(cliques[host_index])
        rng.shuffle(host)
        kept = host[:width]
        edges.extend((min(vertex, u), max(vertex, u)) for u in kept)
        new_clique = tuple(kept + [vertex])
        cliques.append(new_clique)
        bags.append(frozenset(new_clique))
        # The new bag's non-new vertices all lie in the host bag, so
        # attaching it there preserves the connectivity condition.
        tree_edges.append((host_index, len(bags) - 1))
    return edges, bags, tree_edges


def bounded_treewidth_structure(
    n: int,
    width: int,
    *,
    edge_keep_probability: float = 1.0,
    seed: int | None = None,
) -> tuple[Structure, list[frozenset[int]], list[tuple[int, int]]]:
    """A random structure of treewidth ≤ ``width`` plus a certificate.

    The structure is a directed-graph structure over ``{E/2}`` whose
    Gaifman graph is a (sub)graph of a random k-tree; the returned
    ``(bags, tree_edges)`` form a valid width-``width`` tree decomposition
    for it.
    """
    rng = random.Random(seed)
    edges, bags, tree_edges = random_k_tree(
        n, width, seed=rng.randrange(2**30)
    )
    kept = [
        e for e in edges if rng.random() < edge_keep_probability
    ]
    from repro.structures.graphs import GRAPH_VOCABULARY

    structure = Structure(
        GRAPH_VOCABULARY,
        range(n),
        {"E": set(kept)},
    )
    return structure, bags, tree_edges
