"""AI-style constraint-satisfaction instances and the homomorphism bridge.

The AI literature states a CSP as variables + domains + constraints; the
paper's Section 2 recasts it as the homomorphism problem.  This module
implements both views and the two-way translation, making the paper's
"essentially the same problem" observation executable:

* :meth:`CSPInstance.to_homomorphism` builds the structure pair ``(A, B)``
  — one relation per constraint, scopes as facts of ``A``, allowed tuples
  as facts of ``B``, plus one unary relation per variable for its domain;
* :func:`instance_from_homomorphism` reads a structure pair back as a CSP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from repro.exceptions import VocabularyError
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

__all__ = ["Constraint", "CSPInstance", "instance_from_homomorphism"]

Variable = Hashable
Value = Hashable


@dataclass(frozen=True)
class Constraint:
    """A constraint: a scope of variables and the set of allowed tuples."""

    scope: tuple[Variable, ...]
    allowed: frozenset[tuple[Value, ...]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "scope", tuple(self.scope))
        cleaned = frozenset(tuple(t) for t in self.allowed)
        for t in cleaned:
            if len(t) != len(self.scope):
                raise VocabularyError(
                    f"allowed tuple {t!r} does not match scope width "
                    f"{len(self.scope)}"
                )
        object.__setattr__(self, "allowed", cleaned)

    def satisfied_by(self, assignment: Mapping[Variable, Value]) -> bool:
        return tuple(assignment[v] for v in self.scope) in self.allowed


class CSPInstance:
    """A constraint-satisfaction instance in the AI formulation."""

    def __init__(
        self,
        variables: Sequence[Variable],
        domains: Mapping[Variable, Iterable[Value]],
        constraints: Iterable[Constraint],
    ) -> None:
        self.variables = list(variables)
        self.domains = {v: set(domains[v]) for v in self.variables}
        self.constraints = list(constraints)
        for constraint in self.constraints:
            for v in constraint.scope:
                if v not in self.domains:
                    raise VocabularyError(
                        f"constraint scope variable {v!r} is undeclared"
                    )

    def is_solution(self, assignment: Mapping[Variable, Value]) -> bool:
        """Whether a total assignment satisfies domains and constraints."""
        for v in self.variables:
            if v not in assignment or assignment[v] not in self.domains[v]:
                return False
        return all(c.satisfied_by(assignment) for c in self.constraints)

    def to_homomorphism(self) -> tuple[Structure, Structure]:
        """The structure pair ``(A, B)`` with solutions = homomorphisms.

        Relation ``C«i»`` (one per constraint) holds the scope in A and
        the allowed tuples in B; relation ``D«i»`` (one per variable)
        holds ``(v,)`` in A and the domain values in B.
        """
        arities: dict[str, int] = {}
        a_relations: dict[str, set[tuple]] = {}
        b_relations: dict[str, set[tuple]] = {}
        for index, constraint in enumerate(self.constraints):
            name = f"C{index}"
            arities[name] = len(constraint.scope)
            a_relations[name] = {constraint.scope}
            b_relations[name] = set(constraint.allowed)
        for index, variable in enumerate(self.variables):
            name = f"D{index}"
            arities[name] = 1
            a_relations[name] = {(variable,)}
            b_relations[name] = {(value,) for value in self.domains[variable]}
        vocabulary = Vocabulary.from_arities(arities)
        values = set()
        for domain in self.domains.values():
            values.update(domain)
        for constraint in self.constraints:
            for t in constraint.allowed:
                values.update(t)
        source = Structure(vocabulary, self.variables, a_relations)
        target = Structure(vocabulary, values, b_relations)
        return source, target


def instance_from_homomorphism(
    source: Structure, target: Structure
) -> CSPInstance:
    """Read a homomorphism instance ``(A, B)`` as an AI-style CSP.

    Variables are the elements of A, every domain is the universe of B,
    and each fact of A contributes one constraint whose allowed tuples are
    the corresponding relation of B.
    """
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")
    variables = list(source.sorted_universe)
    domains = {v: set(target.universe) for v in variables}
    constraints = [
        Constraint(fact, frozenset(target.relation(name)))
        for name, fact in source.facts()
    ]
    return CSPInstance(variables, domains, constraints)
