"""Constraint satisfaction: AI-style instances, propagation, baselines.

The AI formulation of CSPs, its two-way bridge to the homomorphism problem
(the paper's central identification), arc consistency, the generic
backtracking baseline, and reproducible workload generators.
"""

from repro.csp.ac3 import establish_arc_consistency
from repro.csp.backtracking import (
    degree_order,
    solve_backtracking,
    solve_instance,
)
from repro.csp.generators import (
    bounded_treewidth_structure,
    coloring_instance,
    random_boolean_target,
    random_chain_query,
    random_k_tree,
    random_query,
    random_schaefer_target,
    random_star_query,
    random_structure,
    random_two_atom_query,
)
from repro.csp.instance import (
    Constraint,
    CSPInstance,
    instance_from_homomorphism,
)

__all__ = [
    "Constraint",
    "CSPInstance",
    "instance_from_homomorphism",
    "establish_arc_consistency",
    "solve_backtracking",
    "solve_instance",
    "degree_order",
    "random_structure",
    "random_boolean_target",
    "random_schaefer_target",
    "coloring_instance",
    "random_chain_query",
    "random_star_query",
    "random_query",
    "random_two_atom_query",
    "random_k_tree",
    "bounded_treewidth_structure",
]
