"""The concurrent solve service: an asyncio front end over the pipeline.

Kolaitis–Vardi's equivalence makes the pipeline's core loop exactly what
a database engine runs per query, and the realistic serving shape is
many queries arriving concurrently against a small set of shared
databases.  :class:`SolveService` is that serving layer:

* **Front end** — :meth:`SolveService.submit` / :meth:`submit_many`
  return awaitables resolving to the pipeline's
  :class:`~repro.core.pipeline.Solution`.  Admission control bounds the
  number of open requests (:class:`ServiceOverloadedError` at the front
  door beats an unbounded queue); each request carries a
  :class:`Priority` and an optional per-request timeout.
* **Coalescing** — duplicate *in-flight* requests (same instance up to
  structural equality, same solve options — keyed by
  :func:`repro.structures.fingerprint.instance_fingerprint`) attach to
  the running computation and receive the identical ``Solution`` object.
  Nothing about results is cached beyond the in-flight window, so a
  failed or timed-out solve can never poison later answers.
* **Backends** — every request is first planned on a worker thread: the
  target is compiled through the shared sharded cache and
  :mod:`repro.kernel.estimate` predicts the cost of the *chosen* solving
  route (search, treewidth DP, or — with planner routing on — the
  k-pebble game).  Cheap requests (the paper's polynomial islands,
  bounded-width DP solves, small searches) are solved right there on
  the thread — no serialization, shared caches; expensive ones
  (backtracking-heavy) are shipped to a process-pool worker, escaping
  the GIL so they cannot stall the rest of the traffic.  Each worker
  process keeps its own long-lived pipeline and cache
  (:mod:`repro.service.workers`).
* **Caching** — the thread backend's pipeline uses a
  :class:`~repro.service.cache.ShardedStructureCache`: per-shard locks,
  fingerprint-routed, so concurrent threads only serialize when they ask
  for the *same* structure's analysis.
* **Observability** — :class:`~repro.service.stats.ServiceStats` at
  ``service.stats``: queue depth, coalesce hits, per-route latency
  histograms, folded per-solve :class:`~repro.core.pipeline.SolveStats`.

Typical use::

    async with SolveService() as service:
        solution = await service.submit(source, target)
        answers = await service.submit_many(pairs)

The service must be started (and submitted to) from one event loop;
``async with`` handles start/stop, including draining in-flight work.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING, Awaitable, Iterable

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.cq.query import ConjunctiveQuery

from repro.core.pipeline import (
    DEFAULT_WIDTH_THRESHOLD,
    Solution,
    SolverPipeline,
    StructureCache,
)
from repro.core.strategies import CONTAINMENT_ROUTE, DATALOG_ROUTE
from repro.exceptions import (
    ServiceClosedError,
    ServiceOverloadedError,
    SolveTimeoutError,
    VocabularyError,
)
from repro.kernel.estimate import estimate_cost, plan_instance
from repro.service.cache import ShardedStructureCache
from repro.service.stats import ServiceStats
from repro.service.workers import process_solve, worker_initializer, worker_pid
from repro.structures.fingerprint import instance_fingerprint
from repro.structures.structure import Structure

__all__ = ["Priority", "ServiceConfig", "SolveService"]


class Priority(IntEnum):
    """Dispatch priority; lower values dispatch first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


#: Distinguishes "caller passed nothing" from an explicit ``None``
#: (``timeout=None`` means "wait forever").
_UNSET = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`SolveService`.

    ``process_workers=None`` sizes the pool to the machine
    (``os.cpu_count()``); ``0`` disables the process backend entirely —
    every request then runs on the thread backend regardless of cost.
    ``max_pending`` bounds *open* requests (queued plus executing);
    coalesced duplicates ride along for free and are never rejected.
    ``process_cost_threshold`` is in the unitless scale of
    :mod:`repro.kernel.estimate` — compared against the *chosen* route's
    predicted cost, so a bounded-width instance the planner sends to the
    cheap DP stays on the thread backend even when a raw search estimate
    would have shipped it to a process.  ``plan=True`` additionally lets
    the pipeline's width-aware planner strategy pick the solving engine
    per request (and consider the pebble route), with the decision
    visible in each ``Solution.stats.plan``.
    """

    thread_workers: int = 4
    process_workers: int | None = None
    max_pending: int = 1024
    process_cost_threshold: float = 20_000.0
    default_timeout: float | None = None
    num_shards: int = ShardedStructureCache.DEFAULT_NUM_SHARDS
    cache_maxsize: int = StructureCache.DEFAULT_MAXSIZE
    width_threshold: int = DEFAULT_WIDTH_THRESHOLD
    try_pebble_refutation: int | None = None
    plan: bool = False


@dataclass
class _Request:
    """One admitted (non-coalesced) request."""

    seq: int
    key: tuple
    source: Structure
    target: Structure
    options: dict
    priority: int
    future: asyncio.Future
    #: Latency-bucket override ("containment" for query–query traffic);
    #: ``None`` buckets by the solving strategy's route.
    route: str | None = None
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: Set when the dispatcher hands the request to a backend (or stop()
    #: fails it).  A priority bump re-pushes the request onto the heap,
    #: so stale heap entries are skipped via this flag (lazy deletion).
    dispatched: bool = False


def _consume_exception(future: asyncio.Future) -> None:
    """Mark a failed future's exception retrieved.

    Every waiter may have timed out and walked away; without this, the
    event loop logs "exception was never retrieved" at GC time.
    """
    if not future.cancelled():
        future.exception()


class SolveService:
    """The concurrent solving service (see module docstring).

    Parameters
    ----------
    config:
        Tuning knobs; defaults are sensible for tests and small servers.
    cache:
        Optionally share a pre-built
        :class:`~repro.service.cache.ShardedStructureCache` (e.g. across
        services in one process); by default the service builds its own
        from the config's shard count.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        cache: ShardedStructureCache | None = None,
    ) -> None:
        self._config = config if config is not None else ServiceConfig()
        self.cache = cache if cache is not None else ShardedStructureCache(
            self._config.num_shards, maxsize=self._config.cache_maxsize
        )
        #: The thread backend's pipeline, sharing the sharded cache.
        self.pipeline = SolverPipeline(cache=self.cache)
        self.stats = ServiceStats()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._heap: list[tuple[int, int, _Request]] = []
        #: Admitted-but-undispatched requests; len(self._heap) would
        #: over-count by the stale entries priority bumps leave behind.
        self._queued = 0
        self._inflight: dict[tuple, _Request] = {}
        self._open_requests = 0
        self._seq = itertools.count()
        self._tasks: set[asyncio.Task] = set()
        self._dispatch_task: asyncio.Task | None = None
        self._work_available: asyncio.Event | None = None
        self._capacity: asyncio.Condition | None = None
        self._slots: asyncio.Semaphore | None = None
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def config(self) -> ServiceConfig:
        return self._config

    async def start(self) -> "SolveService":
        """Start the dispatcher and worker pools on the running loop."""
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        config = self._config
        workers = (
            config.process_workers
            if config.process_workers is not None
            else (os.cpu_count() or 1)
        )
        if workers > 0:
            # Spawn the worker processes *now*, before the service has
            # started any thread: forking a multi-threaded process can
            # inherit locks mid-acquire.  If the platform refuses —
            # fork/spawn denied (OSError) or workers dying during
            # startup (BrokenProcessPool) — run thread-only rather than
            # failing the whole service.
            pool = None
            try:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=worker_initializer,
                    initargs=(config.cache_maxsize,),
                )
                await asyncio.gather(
                    *[
                        self._loop.run_in_executor(pool, worker_pid)
                        for _ in range(workers)
                    ]
                )
            except (OSError, BrokenProcessPool):
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                pool = None
            self._process_pool = pool
        else:
            self._process_pool = None
        self._thread_pool = ThreadPoolExecutor(
            max_workers=config.thread_workers,
            thread_name_prefix="repro-solve",
        )
        concurrency = config.thread_workers + (
            workers if self._process_pool is not None else 0
        )
        self._slots = asyncio.Semaphore(concurrency)
        self._work_available = asyncio.Event()
        self._capacity = asyncio.Condition()
        self._running = True
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the service; with ``drain`` (default) finish open work.

        Without ``drain``, queued-but-undispatched requests fail with
        :class:`ServiceClosedError`; already-running solves are awaited
        either way (threads cannot be interrupted safely).
        """
        if not self._running:
            return
        self._running = False
        assert self._capacity is not None
        if not drain:
            while self._heap:
                _, _, request = heapq.heappop(self._heap)
                if request.dispatched:
                    continue
                request.dispatched = True
                self._inflight.pop(request.key, None)
                self._open_requests -= 1
                self._queued -= 1
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosedError("service stopped before dispatch")
                    )
            self.stats.note_queued(self._queued)
            # Wake submit_many callers blocked on backpressure; their
            # retry observes the stopped service and raises.
            async with self._capacity:
                self._capacity.notify_all()
        while self._open_requests > 0:
            async with self._capacity:
                if self._open_requests == 0:
                    break
                await self._capacity.wait()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            await asyncio.gather(self._dispatch_task, return_exceptions=True)
            self._dispatch_task = None
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    async def __aenter__(self) -> "SolveService":
        return await self.start()

    async def __aexit__(self, *_exc_info) -> None:
        await self.stop()

    # -- the front end -------------------------------------------------------

    def submit(
        self,
        source: Structure,
        target: Structure,
        *,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        width_threshold: int | None = None,
        try_pebble_refutation: int | None = _UNSET,  # type: ignore[assignment]
    ) -> Awaitable[Solution]:
        """Admit one request; returns an awaitable of its ``Solution``.

        Raises :class:`ServiceOverloadedError` synchronously when
        admission control refuses (the returned awaitable is never
        created), :class:`VocabularyError` for mismatched vocabularies.
        Awaiting the result raises :class:`SolveTimeoutError` if the
        per-request timeout elapses first.
        """
        try:
            return self._submit(
                source,
                target,
                priority=priority,
                timeout=timeout,
                width_threshold=width_threshold,
                try_pebble_refutation=try_pebble_refutation,
            )
        except ServiceOverloadedError:
            self.stats.rejected += 1
            raise

    def submit_containment(
        self,
        q1: "ConjunctiveQuery",
        q2: "ConjunctiveQuery",
        *,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Awaitable[Solution]:
        """Admit a containment request ``Q1 ⊆ Q2`` (Theorem 2.1 route).

        The query plane's service entry point: the pair is translated to
        its homomorphism instance ``D_{Q2} → D_{Q1}`` through the
        compiled-query artifacts (:mod:`repro.cq.compiled` — canonical
        databases built once per query and memoized), then admitted like
        any solve.  Query–query traffic therefore gets everything solves
        get: coalescing (two connections asking the same containment
        share one computation), priorities, timeouts, and backpressure
        accounting — plus its own ``"containment"`` latency bucket and
        the ``containment_requests`` counter in :class:`ServiceStats`.

        Awaiting the result yields the underlying :class:`Solution`;
        ``solution.exists`` is the containment verdict and
        ``solution.homomorphism`` the containment witness (or ``None``).
        Raises :class:`VocabularyError` for arity-incompatible queries
        and :class:`ServiceOverloadedError` on admission refusal.
        """
        from repro.cq.compiled import compile_query
        from repro.cq.query import check_compatible

        check_compatible(q1, q2)
        union = q1.vocabulary.union(q2.vocabulary)
        target = compile_query(q1).canonical_for(union)
        source = compile_query(q2).canonical_for(union)
        try:
            waiter = self._submit(
                source,
                target,
                priority=priority,
                timeout=timeout,
                width_threshold=None,
                try_pebble_refutation=_UNSET,
                route=CONTAINMENT_ROUTE,
            )
        except ServiceOverloadedError:
            self.stats.rejected += 1
            raise
        self.stats.containment_requests += 1
        return waiter

    def submit_datalog(
        self,
        source: Structure,
        target: Structure,
        *,
        k: int = 2,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Awaitable[Solution]:
        """Admit a canonical-Datalog request (the Theorem 4.2 route).

        The Datalog plane's service entry point: "does the canonical
        k-Datalog program ρ_B derive its goal on A?" — which by Theorem
        4.2 the planner answers through the compiled k-pebble game, never
        materializing ρ_B.  The request is admitted like any solve (with
        ``plan`` forced on so the planner strategy can claim it), so it
        gets coalescing, priorities, timeouts, and backpressure — plus
        its own ``"datalog"`` latency bucket and the
        ``datalog_requests`` counter in :class:`ServiceStats`.

        Awaiting the result yields the underlying :class:`Solution` —
        exact either way: ``solution.exists`` is ``False`` when ρ_B
        derives its goal (the Spoiler wins, so ``A ↛ B``), and otherwise
        the planner's search fallback decided the instance, with the
        routing visible in ``solution.stats.plan``.
        """
        try:
            waiter = self._submit(
                source,
                target,
                priority=priority,
                timeout=timeout,
                width_threshold=None,
                try_pebble_refutation=_UNSET,
                route=DATALOG_ROUTE,
                datalog_k=k,
            )
        except ServiceOverloadedError:
            self.stats.rejected += 1
            raise
        self.stats.datalog_requests += 1
        return waiter

    async def submit_many(
        self,
        pairs: Iterable[tuple[Structure, Structure]],
        *,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        width_threshold: int | None = None,
        try_pebble_refutation: int | None = _UNSET,  # type: ignore[assignment]
        return_exceptions: bool = False,
    ) -> list[Solution]:
        """Submit a batch and await all results (input order preserved).

        Unlike :meth:`submit`, a full service applies *backpressure*
        instead of rejecting: admission waits for capacity.  With
        ``return_exceptions`` per-request failures (timeouts included)
        come back in the result list instead of raising.
        """
        waiters: list[Awaitable[Solution]] = []
        try:
            for source, target in pairs:
                while True:
                    try:
                        waiters.append(
                            self._submit(
                                source,
                                target,
                                priority=priority,
                                timeout=timeout,
                                width_threshold=width_threshold,
                                try_pebble_refutation=try_pebble_refutation,
                            )
                        )
                        break
                    except ServiceOverloadedError:
                        assert self._capacity is not None
                        async with self._capacity:
                            await self._capacity.wait()
        except BaseException:
            # Don't leak never-awaited waiter coroutines when a later
            # admission fails; the already-admitted solves themselves
            # keep running and resolve their futures normally.
            for waiter in waiters:
                waiter.close()  # type: ignore[attr-defined]
            raise
        return await asyncio.gather(
            *waiters, return_exceptions=return_exceptions
        )

    def _submit(
        self,
        source: Structure,
        target: Structure,
        *,
        priority: Priority | int,
        timeout,
        width_threshold: int | None,
        try_pebble_refutation,
        route: str | None = None,
        datalog_k: int | None = None,
    ) -> Awaitable[Solution]:
        if not self._running or self._loop is None:
            raise ServiceClosedError(
                "service is not running; use 'async with SolveService()'"
            )
        if source.vocabulary != target.vocabulary:
            raise VocabularyError(
                "a homomorphism problem needs a common vocabulary"
            )
        config = self._config
        if timeout is _UNSET:
            timeout = config.default_timeout
        options = {
            "width_threshold": (
                config.width_threshold
                if width_threshold is None
                else width_threshold
            ),
            "try_pebble_refutation": (
                config.try_pebble_refutation
                if try_pebble_refutation is _UNSET
                else try_pebble_refutation
            ),
            # A canonical-Datalog request forces planning on: the route
            # only exists inside the planner strategy.
            "plan": config.plan or datalog_k is not None,
            "try_canonical_datalog": datalog_k,
        }
        # The coalescing key is computed here, on the loop thread, because
        # admission and coalescing are synchronous by contract.  The
        # per-structure digests are memoized, so the cost is paid once per
        # Structure object; callers submitting very large *fresh*
        # structures per request can pre-warm off-loop by calling
        # canonical_fingerprint(structure) in an executor first.  The
        # route is part of the key so a containment request never
        # coalesces onto a plain solve of the same instance (or vice
        # versa) — the shared computation would land its latency in the
        # wrong stats bucket.
        key = (
            instance_fingerprint(source, target),
            options["width_threshold"],
            options["try_pebble_refutation"],
            options["plan"],
            options["try_canonical_datalog"],
            route,
        )
        self.stats.submitted += 1
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.coalesce_hits += 1
            if (
                not existing.dispatched
                and int(priority) < existing.priority
            ):
                # A higher-priority duplicate lifts the queued original:
                # re-push at the better priority (the stale heap entry is
                # skipped via the ``dispatched`` flag when it surfaces).
                existing.priority = int(priority)
                heapq.heappush(
                    self._heap,
                    (existing.priority, existing.seq, existing),
                )
            return self._wait(existing.future, timeout)
        if self._open_requests >= config.max_pending:
            raise ServiceOverloadedError(
                f"{self._open_requests} open requests "
                f"(max_pending={config.max_pending})"
            )
        request = _Request(
            seq=next(self._seq),
            key=key,
            source=source,
            target=target,
            options=options,
            priority=int(priority),
            future=self._loop.create_future(),
            route=route,
        )
        request.future.add_done_callback(_consume_exception)
        self._inflight[key] = request
        self._open_requests += 1
        self._queued += 1
        heapq.heappush(self._heap, (request.priority, request.seq, request))
        self.stats.note_queued(self._queued)
        assert self._work_available is not None
        self._work_available.set()
        return self._wait(request.future, timeout)

    async def _wait(
        self, future: asyncio.Future, timeout: float | None
    ) -> Solution:
        """One waiter's view of a (possibly shared) computation.

        The shield keeps a waiter's timeout from cancelling the
        computation out from under coalesced duplicates.
        """
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise SolveTimeoutError(
                f"solve did not finish within {timeout}s"
            ) from None

    # -- dispatch and execution ----------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._work_available is not None and self._slots is not None
        while True:
            await self._work_available.wait()
            self._work_available.clear()
            while self._heap:
                await self._slots.acquire()
                # Highest priority *at dispatch time*, FIFO within a
                # priority class; stale entries left behind by priority
                # bumps are skipped.
                request = None
                while self._heap:
                    _, _, candidate = heapq.heappop(self._heap)
                    if not candidate.dispatched:
                        request = candidate
                        break
                if request is None:
                    self._slots.release()
                    break
                request.dispatched = True
                self._queued -= 1
                self.stats.note_queued(self._queued)
                task = asyncio.create_task(self._execute(request))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    def _plan_and_maybe_solve(
        self, request: _Request
    ) -> tuple[str, float, Solution | None]:
        """Runs on a worker thread: plan, and solve if cheap.

        Compiling the target through the sharded cache both feeds the
        planner and warms the cache every thread-backend solve of this
        target will hit.  The thread/process decision compares the
        *chosen* route's predicted cost against the threshold: a
        search-heavy instance the planner can decide by DP or pebble no
        longer pays the process hop.  Pebble routing is only considered
        when the pipeline will actually follow the plan
        (``config.plan``); otherwise the prediction sticks to the
        search/DP routes the fixed registry can take.
        """
        options = request.options
        ctarget = self.cache.compiled_target(request.target)
        threshold = self._config.process_cost_threshold
        cost = estimate_cost(request.source, request.target, ctarget=ctarget)
        if options["plan"] or (
            self._process_pool is not None and cost >= threshold
        ):
            # The width estimate (a greedy decomposition) is only worth
            # computing when it can change something: the pipeline will
            # follow the plan, or the raw search estimate would ship the
            # request to a process and a cheap DP route could keep it
            # here.  Below-threshold requests with planning off skip it —
            # they are thread-solved either way, and the fixed registry's
            # treewidth route decomposes through the pipeline cache.
            cost = plan_instance(
                request.source,
                request.target,
                ctarget=ctarget,
                width_threshold=options["width_threshold"],
                pebble_k=options["try_pebble_refutation"],
                allow_pebble=options["plan"],
                datalog_k=options["try_canonical_datalog"],
            ).predicted_cost
        if self._process_pool is not None and cost >= threshold:
            return "process", cost, None
        solution = self.pipeline.solve(
            request.source, request.target, **options
        )
        return "thread", cost, solution

    async def _execute(self, request: _Request) -> None:
        assert self._loop is not None and self._thread_pool is not None
        try:
            backend, _cost, solution = await self._loop.run_in_executor(
                self._thread_pool, self._plan_and_maybe_solve, request
            )
            if solution is None:
                assert self._process_pool is not None
                solution = await self._loop.run_in_executor(
                    self._process_pool,
                    process_solve,
                    request.source,
                    request.target,
                    request.options,
                )
            latency_ms = (time.perf_counter() - request.enqueued_at) * 1000
            self.stats.note_completed(
                solution, latency_ms, backend, route=request.route
            )
            if not request.future.done():
                request.future.set_result(solution)
        except Exception as exc:  # noqa: BLE001 — forwarded to the waiters
            self.stats.failed += 1
            if not request.future.done():
                request.future.set_exception(exc)
        finally:
            self._inflight.pop(request.key, None)
            self._open_requests -= 1
            assert self._slots is not None and self._capacity is not None
            self._slots.release()
            async with self._capacity:
                self._capacity.notify_all()
