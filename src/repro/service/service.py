"""The concurrent solve service: an asyncio front end over the pipeline.

Kolaitis–Vardi's equivalence makes the pipeline's core loop exactly what
a database engine runs per query, and the realistic serving shape is
many queries arriving concurrently against a small set of shared
databases.  :class:`SolveService` is that serving layer:

* **Front end** — :meth:`SolveService.submit` / :meth:`submit_many`
  return awaitables resolving to the pipeline's
  :class:`~repro.core.pipeline.Solution`.  Admission control bounds the
  number of open requests (:class:`ServiceOverloadedError` at the front
  door beats an unbounded queue); each request carries a
  :class:`Priority` and an optional per-request timeout.
* **Coalescing** — duplicate *in-flight* requests (same instance up to
  structural equality, same solve options — keyed by
  :func:`repro.structures.fingerprint.instance_fingerprint`) attach to
  the running computation and receive the identical ``Solution`` object.
  Nothing about results is cached beyond the in-flight window, so a
  failed or timed-out solve can never poison later answers.
* **Backends** — every request is first planned on a worker thread: the
  target is compiled through the shared sharded cache and
  :mod:`repro.kernel.estimate` predicts the cost of the *chosen* solving
  route (search, treewidth DP, or — with planner routing on — the
  k-pebble game).  Cheap requests (the paper's polynomial islands,
  bounded-width DP solves, small searches) are solved right there on
  the thread — no serialization, shared caches; expensive ones
  (backtracking-heavy) are shipped to a process-pool worker, escaping
  the GIL so they cannot stall the rest of the traffic.  Each worker
  process keeps its own long-lived pipeline and cache
  (:mod:`repro.service.workers`).
* **Caching** — the thread backend's pipeline uses a
  :class:`~repro.service.cache.ShardedStructureCache`: per-shard locks,
  fingerprint-routed, so concurrent threads only serialize when they ask
  for the *same* structure's analysis.
* **Observability** — :class:`~repro.service.stats.ServiceStats` at
  ``service.stats``: queue depth, coalesce hits, per-route latency
  histograms, folded per-solve :class:`~repro.core.pipeline.SolveStats`.
  Plus the unified plane from :mod:`repro.obs`: ``service.metrics``
  (Prometheus exposition via :meth:`SolveService.exposition`),
  ``service.recorder`` (a bounded flight recorder of lifecycle events),
  and — with ``ServiceConfig.trace`` on — ``service.trace_log``, holding
  one end-to-end span tree per finished request, worker-process kernel
  phases included.
* **Resilience** — worker processes run under a supervisor
  (:mod:`repro.service.supervision`) that detects mid-flight crashes and
  respawns the pool with backed-off restarts; each request carries a
  deadline that propagates into the kernel hot loops
  (:mod:`repro.core.cancellation`), so a timed-out solve stops consuming
  its worker; transient failures retry within a per-request budget; and
  per-route circuit breakers (:mod:`repro.service.resilience`) degrade a
  repeatedly failing route to its semantically equivalent fallback —
  process → thread, compiled kernel → legacy engine, canonical Datalog →
  planner search — so answers stay exact under faults.

Typical use::

    async with SolveService() as service:
        solution = await service.submit(source, target)
        answers = await service.submit_many(pairs)

The service must be started (and submitted to) from one event loop;
``async with`` handles start/stop, including draining in-flight work.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING, Awaitable, Iterable

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.cq.compiled import CompiledQuery
    from repro.cq.query import ConjunctiveQuery
    from repro.persist import ArtifactStore

from repro import faultinject
from repro.core.cancellation import CancellationToken, Deadline, cancel_scope
from repro.core.pipeline import (
    DEFAULT_WIDTH_THRESHOLD,
    Solution,
    SolverPipeline,
    StructureCache,
)
from repro.core.strategies import CONTAINMENT_ROUTE, DATALOG_ROUTE
from repro.exceptions import (
    ResourceBudgetError,
    ServiceClosedError,
    ServiceOverloadedError,
    SolveTimeoutError,
    VocabularyError,
    WorkerCrashedError,
)
from repro.kernel.estimate import estimate_cost, plan_instance
from repro.obs.logs import get_logger
from repro.obs.metrics import Counter, Gauge, default_registry
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import Span, TraceLog, child_scope
from repro.service.cache import ShardedStructureCache
from repro.service.resilience import CircuitBreaker, FailureKind, classify
from repro.service.stats import ServiceStats
from repro.service.supervision import SupervisedProcessPool
from repro.service.workers import process_solve
from repro.structures.fingerprint import instance_fingerprint
from repro.structures.homomorphism import find_homomorphism
from repro.structures.structure import Structure

__all__ = ["Priority", "ServiceConfig", "SolveService"]

_log = get_logger("service")


def _env_trace_default() -> bool:
    """``REPRO_TRACE=1`` turns per-request tracing on process-wide."""
    value = os.environ.get("REPRO_TRACE", "0").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def _env_store_default() -> str | None:
    """``REPRO_STORE=<dir>`` points the service at a persistent store."""
    value = os.environ.get("REPRO_STORE", "").strip()
    return value or None


def _env_store_max_bytes_default() -> int | None:
    """``REPRO_STORE_MAX_BYTES=<n>`` bounds the store log (compaction)."""
    value = os.environ.get("REPRO_STORE_MAX_BYTES", "").strip()
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        return None


#: Breaker states as gauge values (exposition can't carry enums).
_BREAKER_STATE_VALUE = {"closed": 0, "half_open": 1, "open": 2}


class Priority(IntEnum):
    """Dispatch priority; lower values dispatch first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


#: Distinguishes "caller passed nothing" from an explicit ``None``
#: (``timeout=None`` means "wait forever").
_UNSET = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`SolveService`.

    ``process_workers=None`` sizes the pool to the machine
    (``os.cpu_count()``); ``0`` disables the process backend entirely —
    every request then runs on the thread backend regardless of cost.
    ``max_pending`` bounds *open* requests (queued plus executing);
    coalesced duplicates ride along for free and are never rejected.
    ``process_cost_threshold`` is in the unitless scale of
    :mod:`repro.kernel.estimate` — compared against the *chosen* route's
    predicted cost, so a bounded-width instance the planner sends to the
    cheap DP stays on the thread backend even when a raw search estimate
    would have shipped it to a process.  ``plan=True`` additionally lets
    the pipeline's width-aware planner strategy pick the solving engine
    per request (and consider the pebble route), with the decision
    visible in each ``Solution.stats.plan``.

    The resilience knobs: ``retry_budget`` is the number of *additional*
    attempts a request gets after a transient failure (worker crash,
    injected fault, budget degradation), always within the request's
    remaining deadline.  ``breaker_threshold`` consecutive failures of a
    degradable route (process backend, kernel compile, canonical
    Datalog) open that route's circuit breaker; after
    ``breaker_cooldown`` seconds one probe request tests the route
    again.  ``worker_restart_backoff`` is the base of the supervisor's
    exponential respawn backoff after a worker-process crash.

    ``trace=True`` opens a root span per admitted request and threads it
    through every layer the request crosses — queue, retry loop, backend
    dispatch (including the process-pool hop), planner decision, kernel
    phases — with finished traces collected on ``service.trace_log``.
    The default comes from the ``REPRO_TRACE`` environment variable.

    The persistence knobs: ``store_path`` (default: the ``REPRO_STORE``
    environment variable) opens a crash-safe
    :class:`~repro.persist.ArtifactStore` there at startup — the service
    process writes, worker processes read the same log, and a restarted
    service starts *warm*: with ``store_warm`` (default) every persisted
    structure artifact is seeded into the sharded cache and every
    compiled query into the containment fast path before the first
    request is admitted.  ``store_max_bytes`` (``REPRO_STORE_MAX_BYTES``)
    bounds the log via newest-first compaction.  ``drain_timeout`` is
    :meth:`SolveService.drain`'s default grace period before in-flight
    solves are cooperatively cancelled.  A store that cannot be opened
    (writer lock held, unwritable path) logs a warning and the service
    runs store-less — persistence is an accelerator, never a
    prerequisite for answering.
    """

    thread_workers: int = 4
    process_workers: int | None = None
    max_pending: int = 1024
    process_cost_threshold: float = 20_000.0
    default_timeout: float | None = None
    num_shards: int = ShardedStructureCache.DEFAULT_NUM_SHARDS
    cache_maxsize: int = StructureCache.DEFAULT_MAXSIZE
    width_threshold: int = DEFAULT_WIDTH_THRESHOLD
    try_pebble_refutation: int | None = None
    plan: bool = False
    retry_budget: int = 2
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    worker_restart_backoff: float = 0.05
    trace: bool = field(default_factory=_env_trace_default)
    store_path: str | None = field(default_factory=_env_store_default)
    store_max_bytes: int | None = field(
        default_factory=_env_store_max_bytes_default
    )
    store_warm: bool = True
    drain_timeout: float = 30.0


@dataclass
class _Request:
    """One admitted (non-coalesced) request."""

    seq: int
    key: tuple
    source: Structure
    target: Structure
    options: dict
    priority: int
    future: asyncio.Future
    #: The shared cancellation token: carries the loosest deadline across
    #: every coalesced waiter (a patient late-attacher *extends* it) and
    #: is checked cooperatively inside the kernel hot loops.
    token: CancellationToken
    #: Latency-bucket override ("containment" for query–query traffic);
    #: ``None`` buckets by the solving strategy's route.
    route: str | None = None
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: Set when the dispatcher hands the request to a backend (or stop()
    #: fails it).  A priority bump re-pushes the request onto the heap,
    #: so stale heap entries are skipped via this flag (lazy deletion).
    dispatched: bool = False
    #: The request's root trace span (``None`` with tracing off).
    span: Span | None = None


def _consume_exception(future: asyncio.Future) -> None:
    """Mark a failed future's exception retrieved.

    Every waiter may have timed out and walked away; without this, the
    event loop logs "exception was never retrieved" at GC time.
    """
    if not future.cancelled():
        future.exception()


class SolveService:
    """The concurrent solving service (see module docstring).

    Parameters
    ----------
    config:
        Tuning knobs; defaults are sensible for tests and small servers.
    cache:
        Optionally share a pre-built
        :class:`~repro.service.cache.ShardedStructureCache` (e.g. across
        services in one process); by default the service builds its own
        from the config's shard count.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        cache: ShardedStructureCache | None = None,
    ) -> None:
        self._config = config if config is not None else ServiceConfig()
        self.cache = cache if cache is not None else ShardedStructureCache(
            self._config.num_shards, maxsize=self._config.cache_maxsize
        )
        #: The thread backend's pipeline, sharing the sharded cache.
        self.pipeline = SolverPipeline(cache=self.cache)
        self.stats = ServiceStats()
        #: Finished request traces (bounded; populated with tracing on).
        self.trace_log = TraceLog()
        #: Lifecycle flight recorder: admissions, retries, breaker
        #: transitions, worker crashes/restarts — dumped when debugging
        #: an incident, asserted against in the chaos suite.
        self.recorder = FlightRecorder()
        #: The registry this service's scrape-time collector reports
        #: into (the process-wide default, shared with kernel counters).
        self.metrics = default_registry()
        #: One circuit breaker per degradable route.  While a breaker is
        #: open the route is served by its semantically equivalent
        #: fallback: "process" → the thread backend, "kernel" → the
        #: legacy engine, "datalog" → the planner's search route.
        self.breakers: dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                name,
                threshold=self._config.breaker_threshold,
                cooldown=self._config.breaker_cooldown,
                on_transition=self._note_breaker_transition,
            )
            for name in ("process", "kernel", "datalog")
        }
        #: The persistent artifact store (opened by :meth:`start` when
        #: the config names a path; ``None`` while stopped, after a
        #: failed open, or with persistence off).
        self.store: "ArtifactStore | None" = None
        self._store_prev_default: "ArtifactStore | None" = None
        self._store_is_default = False
        #: Compiled-query artifacts recovered from the store (or written
        #: through this process), keyed by query fingerprint — the
        #: containment front door's warm path.
        self._query_artifacts: dict[str, "CompiledQuery"] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread_pool: ThreadPoolExecutor | None = None
        self._supervisor: SupervisedProcessPool | None = None
        self._heap: list[tuple[int, int, _Request]] = []
        #: Admitted-but-undispatched requests; len(self._heap) would
        #: over-count by the stale entries priority bumps leave behind.
        self._queued = 0
        self._inflight: dict[tuple, _Request] = {}
        self._open_requests = 0
        self._seq = itertools.count()
        self._tasks: set[asyncio.Task] = set()
        self._dispatch_task: asyncio.Task | None = None
        self._work_available: asyncio.Event | None = None
        self._capacity: asyncio.Condition | None = None
        self._slots: asyncio.Semaphore | None = None
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def config(self) -> ServiceConfig:
        return self._config

    async def start(self) -> "SolveService":
        """Start the dispatcher and worker pools on the running loop."""
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        config = self._config
        # The store opens before the worker pool spawns so the initial
        # workers already see every record a previous service generation
        # left behind (recovery runs here, under the writer lock).
        self._open_store()
        workers = (
            config.process_workers
            if config.process_workers is not None
            else (os.cpu_count() or 1)
        )
        if workers > 0:
            # The supervisor spawns the worker processes *now*, before
            # the service has started any thread (forking a
            # multi-threaded process can inherit locks mid-acquire) and
            # keeps respawning them after crashes.  If the platform
            # refuses, run thread-only rather than failing the service.
            supervisor = SupervisedProcessPool(
                workers,
                config.cache_maxsize,
                store_path=(
                    config.store_path if self.store is not None else None
                ),
                restart_backoff=config.worker_restart_backoff,
                on_restart=self._note_worker_restart,
            )
            self._supervisor = (
                supervisor if await supervisor.start(self._loop) else None
            )
        else:
            self._supervisor = None
        self._thread_pool = ThreadPoolExecutor(
            max_workers=config.thread_workers,
            thread_name_prefix="repro-solve",
        )
        concurrency = config.thread_workers + (
            workers if self._supervisor is not None else 0
        )
        self._slots = asyncio.Semaphore(concurrency)
        self._work_available = asyncio.Event()
        self._capacity = asyncio.Condition()
        self.metrics.register_collector(self._metrics_collector)
        self._running = True
        self._dispatch_task = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the service; with ``drain`` (default) finish open work.

        Without ``drain``, queued-but-undispatched requests — and with
        them every coalesced follower sharing their futures — fail
        *deterministically* with :class:`ServiceClosedError` (never a
        bare ``CancelledError``), and their fingerprint entries leave
        the coalescing table immediately so nothing can attach to a
        dead computation.  Already-running solves are awaited either
        way (threads cannot be interrupted safely), and their waiters
        still receive the result.
        """
        if not self._running:
            return
        self._running = False
        assert self._capacity is not None
        if not drain:
            while self._heap:
                _, _, request = heapq.heappop(self._heap)
                if request.dispatched:
                    continue
                request.dispatched = True
                self._inflight.pop(request.key, None)
                self._open_requests -= 1
                self._queued -= 1
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosedError("service stopped before dispatch")
                    )
            # Belt and braces: every undispatched request holds a live
            # heap entry, but sweep the coalescing table too so a bug in
            # that invariant degrades to a deterministic error rather
            # than a follower hung on a future nobody will resolve.
            for request in list(self._inflight.values()):
                if request.dispatched:
                    continue
                request.dispatched = True
                del self._inflight[request.key]
                self._open_requests -= 1
                self._queued -= 1
                if not request.future.done():
                    request.future.set_exception(
                        ServiceClosedError("service stopped before dispatch")
                    )
            self.stats.note_queued(self._queued)
            # Wake submit_many callers blocked on backpressure; their
            # retry observes the stopped service and raises.
            async with self._capacity:
                self._capacity.notify_all()
        while self._open_requests > 0:
            async with self._capacity:
                if self._open_requests == 0:
                    break
                await self._capacity.wait()
        await self._teardown()

    async def drain(self, timeout: float | None = None) -> bool:
        """Gracefully wind the service down; ``True`` if nothing was cut.

        The shutdown contract for a service that persists state: stop
        admitting (new submits raise :class:`ServiceClosedError`), let
        in-flight and queued requests finish for up to ``timeout``
        seconds (default: ``config.drain_timeout``), then cooperatively
        cancel whatever is still running — each survivor's token is
        force-expired, so the kernel loops unwind within one check
        interval and every waiter gets a deterministic
        :class:`SolveTimeoutError`, never a half-written answer.  Either
        way the artifact store is flushed (fsync) and closed afterwards,
        so everything completed before the cut-off is durable.

        Idempotent, and safe to call instead of :meth:`stop`; returns
        ``True`` when all open requests completed inside the grace
        period, ``False`` when stragglers had to be cancelled.
        """
        if not self._running:
            return True
        if timeout is None:
            timeout = self._config.drain_timeout
        self._running = False
        self.recorder.record(
            "service.drain",
            open_requests=self._open_requests,
            timeout_s=timeout,
        )
        assert self._capacity is not None
        deadline = Deadline.after(timeout)
        while self._open_requests > 0 and not deadline.expired():
            async with self._capacity:
                if self._open_requests == 0:
                    break
                try:
                    await asyncio.wait_for(
                        self._capacity.wait(), max(deadline.remaining(), 0.0)
                    )
                except asyncio.TimeoutError:
                    break
        clean = self._open_requests == 0
        if not clean:
            # Grace period over: expire every survivor's shared token.
            # Running solves (thread or process side) hit it at their
            # next cooperative check; still-queued requests fail at
            # their first.  The cancel is advisory-free — tokens are
            # read on every check — so no backend-specific plumbing.
            self.recorder.record(
                "service.drain.expired", open_requests=self._open_requests
            )
            for request in list(self._inflight.values()):
                request.token.deadline = Deadline.after(0.0)
                request.token.cancel()
            while self._open_requests > 0:
                async with self._capacity:
                    if self._open_requests == 0:
                        break
                    await self._capacity.wait()
        await self._teardown()
        return clean

    async def _teardown(self) -> None:
        """Release every resource ``start`` acquired (stop/drain tail)."""
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
            await asyncio.gather(self._dispatch_task, return_exceptions=True)
            self._dispatch_task = None
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._supervisor is not None:
            await self._supervisor.shutdown(wait=True)
            self._supervisor = None
        self.metrics.unregister_collector(self._metrics_collector)
        self._close_store()

    def _open_store(self) -> None:
        """Open the configured artifact store, degrading to store-less."""
        config = self._config
        if config.store_path is None or self.store is not None:
            return
        from repro.exceptions import ArtifactStoreError
        from repro.persist import ArtifactStore
        from repro.persist import runtime as persist_runtime

        try:
            store = ArtifactStore(
                config.store_path,
                max_bytes=config.store_max_bytes,
                recorder=self.recorder,
            )
        except (OSError, ArtifactStoreError) as exc:
            _log.warning(
                "artifact store unavailable at %s: %s — serving store-less",
                config.store_path,
                exc,
                extra={
                    "event": "store.unavailable",
                    "path": config.store_path,
                },
            )
            return
        self.store = store
        self.cache.attach_store(store)
        # The canonical-Datalog plane reads/writes ρ_B records through
        # the process-wide default handle; remember what we displaced so
        # nested services (tests) restore cleanly.
        self._store_prev_default = persist_runtime.set_default_store(store)
        self._store_is_default = True
        if config.store_warm:
            warmed = store.warm_cache(self.cache)
            self._query_artifacts = dict(store.query_artifacts())
            self.recorder.record(
                "store.warm",
                structures=warmed,
                queries=len(self._query_artifacts),
            )

    def _close_store(self) -> None:
        """Flush + close the store and restore the default-store handle."""
        if self.store is None:
            return
        from repro.persist import runtime as persist_runtime

        try:
            self.store.close()
        except OSError as exc:  # pragma: no cover — close is best-effort
            _log.warning(
                "artifact store close failed: %s",
                exc,
                extra={"event": "store.close_failed"},
            )
        if self._store_is_default:
            persist_runtime.set_default_store(self._store_prev_default)
            self._store_prev_default = None
            self._store_is_default = False
        self.cache.attach_store(None)
        self.store = None
        self._query_artifacts = {}

    async def __aenter__(self) -> "SolveService":
        return await self.start()

    async def __aexit__(self, *_exc_info) -> None:
        await self.stop()

    # -- the front end -------------------------------------------------------

    def submit(
        self,
        source: Structure,
        target: Structure,
        *,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        width_threshold: int | None = None,
        try_pebble_refutation: int | None = _UNSET,  # type: ignore[assignment]
    ) -> Awaitable[Solution]:
        """Admit one request; returns an awaitable of its ``Solution``.

        Raises :class:`ServiceOverloadedError` synchronously when
        admission control refuses (the returned awaitable is never
        created), :class:`VocabularyError` for mismatched vocabularies.
        Awaiting the result raises :class:`SolveTimeoutError` if the
        per-request timeout elapses first.
        """
        try:
            return self._submit(
                source,
                target,
                priority=priority,
                timeout=timeout,
                width_threshold=width_threshold,
                try_pebble_refutation=try_pebble_refutation,
            )
        except ServiceOverloadedError:
            self.stats.rejected += 1
            raise

    def submit_containment(
        self,
        q1: "ConjunctiveQuery",
        q2: "ConjunctiveQuery",
        *,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Awaitable[Solution]:
        """Admit a containment request ``Q1 ⊆ Q2`` (Theorem 2.1 route).

        The query plane's service entry point: the pair is translated to
        its homomorphism instance ``D_{Q2} → D_{Q1}`` through the
        compiled-query artifacts (:mod:`repro.cq.compiled` — canonical
        databases built once per query and memoized), then admitted like
        any solve.  Query–query traffic therefore gets everything solves
        get: coalescing (two connections asking the same containment
        share one computation), priorities, timeouts, and backpressure
        accounting — plus its own ``"containment"`` latency bucket and
        the ``containment_requests`` counter in :class:`ServiceStats`.

        Awaiting the result yields the underlying :class:`Solution`;
        ``solution.exists`` is the containment verdict and
        ``solution.homomorphism`` the containment witness (or ``None``).
        Raises :class:`VocabularyError` for arity-incompatible queries
        and :class:`ServiceOverloadedError` on admission refusal.
        """
        from repro.cq.query import check_compatible

        check_compatible(q1, q2)
        union = q1.vocabulary.union(q2.vocabulary)
        cq1 = self._compile_query_warm(q1)
        cq2 = self._compile_query_warm(q2)
        target = cq1.canonical_for(union)
        source = cq2.canonical_for(union)
        if self.store is not None:
            # Written *after* canonical_for so the persisted artifact
            # carries this union's canonical database; put() is
            # insert-only, so an already-stored query costs one index
            # probe.
            self.store.put("query", cq1.fingerprint, cq1)
            self.store.put("query", cq2.fingerprint, cq2)
        try:
            waiter = self._submit(
                source,
                target,
                priority=priority,
                timeout=timeout,
                width_threshold=None,
                try_pebble_refutation=_UNSET,
                route=CONTAINMENT_ROUTE,
            )
        except ServiceOverloadedError:
            self.stats.rejected += 1
            raise
        self.stats.containment_requests += 1
        return waiter

    def _compile_query_warm(self, query: "ConjunctiveQuery") -> "CompiledQuery":
        """``compile_query`` through the store-recovered artifact map.

        A fingerprint hit adopts the persisted :class:`CompiledQuery` —
        canonical databases and all — as the query's compile memo, so a
        restarted service answers its first containment on a known query
        without rebuilding ``D_Q``.
        """
        from repro.cq.compiled import compile_query, query_fingerprint

        if query._compiled is None and self._query_artifacts:
            stored = self._query_artifacts.get(query_fingerprint(query))
            if stored is not None:
                query._compiled = stored
                return stored
        compiled = compile_query(query)
        if self.store is not None:
            self._query_artifacts.setdefault(compiled.fingerprint, compiled)
        return compiled

    def submit_datalog(
        self,
        source: Structure,
        target: Structure,
        *,
        k: int = 2,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
    ) -> Awaitable[Solution]:
        """Admit a canonical-Datalog request (the Theorem 4.2 route).

        The Datalog plane's service entry point: "does the canonical
        k-Datalog program ρ_B derive its goal on A?" — which by Theorem
        4.2 the planner answers through the compiled k-pebble game, never
        materializing ρ_B.  The request is admitted like any solve (with
        ``plan`` forced on so the planner strategy can claim it), so it
        gets coalescing, priorities, timeouts, and backpressure — plus
        its own ``"datalog"`` latency bucket and the
        ``datalog_requests`` counter in :class:`ServiceStats`.

        Awaiting the result yields the underlying :class:`Solution` —
        exact either way: ``solution.exists`` is ``False`` when ρ_B
        derives its goal (the Spoiler wins, so ``A ↛ B``), and otherwise
        the planner's search fallback decided the instance, with the
        routing visible in ``solution.stats.plan``.
        """
        try:
            waiter = self._submit(
                source,
                target,
                priority=priority,
                timeout=timeout,
                width_threshold=None,
                try_pebble_refutation=_UNSET,
                route=DATALOG_ROUTE,
                datalog_k=k,
            )
        except ServiceOverloadedError:
            self.stats.rejected += 1
            raise
        self.stats.datalog_requests += 1
        return waiter

    async def submit_many(
        self,
        pairs: Iterable[tuple[Structure, Structure]],
        *,
        priority: Priority | int = Priority.NORMAL,
        timeout: float | None = _UNSET,  # type: ignore[assignment]
        width_threshold: int | None = None,
        try_pebble_refutation: int | None = _UNSET,  # type: ignore[assignment]
        return_exceptions: bool = False,
    ) -> list[Solution]:
        """Submit a batch and await all results (input order preserved).

        Unlike :meth:`submit`, a full service applies *backpressure*
        instead of rejecting: admission waits for capacity.  With
        ``return_exceptions`` per-request failures (timeouts included)
        come back in the result list instead of raising.
        """
        waiters: list[Awaitable[Solution]] = []
        try:
            for source, target in pairs:
                while True:
                    try:
                        waiters.append(
                            self._submit(
                                source,
                                target,
                                priority=priority,
                                timeout=timeout,
                                width_threshold=width_threshold,
                                try_pebble_refutation=try_pebble_refutation,
                            )
                        )
                        break
                    except ServiceOverloadedError:
                        assert self._capacity is not None
                        async with self._capacity:
                            await self._capacity.wait()
        except BaseException:
            # Don't leak never-awaited waiter coroutines when a later
            # admission fails; the already-admitted solves themselves
            # keep running and resolve their futures normally.
            for waiter in waiters:
                waiter.close()  # type: ignore[attr-defined]
            raise
        return await asyncio.gather(
            *waiters, return_exceptions=return_exceptions
        )

    def _submit(
        self,
        source: Structure,
        target: Structure,
        *,
        priority: Priority | int,
        timeout,
        width_threshold: int | None,
        try_pebble_refutation,
        route: str | None = None,
        datalog_k: int | None = None,
    ) -> Awaitable[Solution]:
        if not self._running or self._loop is None:
            raise ServiceClosedError(
                "service is not running; use 'async with SolveService()'"
            )
        if source.vocabulary != target.vocabulary:
            raise VocabularyError(
                "a homomorphism problem needs a common vocabulary"
            )
        config = self._config
        if timeout is _UNSET:
            timeout = config.default_timeout
        options = {
            "width_threshold": (
                config.width_threshold
                if width_threshold is None
                else width_threshold
            ),
            "try_pebble_refutation": (
                config.try_pebble_refutation
                if try_pebble_refutation is _UNSET
                else try_pebble_refutation
            ),
            # A canonical-Datalog request forces planning on: the route
            # only exists inside the planner strategy.
            "plan": config.plan or datalog_k is not None,
            "try_canonical_datalog": datalog_k,
        }
        # The coalescing key is computed here, on the loop thread, because
        # admission and coalescing are synchronous by contract.  The
        # per-structure digests are memoized, so the cost is paid once per
        # Structure object; callers submitting very large *fresh*
        # structures per request can pre-warm off-loop by calling
        # canonical_fingerprint(structure) in an executor first.  The
        # route is part of the key so a containment request never
        # coalesces onto a plain solve of the same instance (or vice
        # versa) — the shared computation would land its latency in the
        # wrong stats bucket.
        key = (
            instance_fingerprint(source, target),
            options["width_threshold"],
            options["try_pebble_refutation"],
            options["plan"],
            options["try_canonical_datalog"],
            route,
        )
        self.stats.submitted += 1
        existing = self._inflight.get(key)
        if existing is not None:
            self.stats.coalesce_hits += 1
            self.recorder.record(
                "request.coalesced",
                leader_seq=existing.seq,
                priority=int(priority),
            )
            if existing.span is not None:
                # A follower gets its own (tiny) trace that *links* to
                # the leader's computation instead of duplicating it.
                follower = Span.new_root(
                    "request.coalesced",
                    link_trace_id=existing.span.trace_id,
                    link_span_id=existing.span.span_id,
                )
                existing.future.add_done_callback(
                    lambda _future, span=follower: (
                        span.end(),
                        self.trace_log.append(span.export()),
                    )
                )
            # The shared computation must run as long as its most patient
            # waiter needs: an unbounded attacher lifts the deadline
            # entirely, a bounded one extends it (later wins).  The token
            # reads its deadline on every check, so this reaches a solve
            # already running on the thread backend; a process-backend
            # solve keeps its dispatched budget, and the service retries
            # it with the new budget if it times out.
            if timeout is None:
                existing.token.deadline = None
            elif existing.token.deadline is not None:
                existing.token.deadline.extend_to(Deadline.after(timeout))
            if (
                not existing.dispatched
                and int(priority) < existing.priority
            ):
                # A higher-priority duplicate lifts the queued original:
                # re-push at the better priority (the stale heap entry is
                # skipped via the ``dispatched`` flag when it surfaces).
                existing.priority = int(priority)
                heapq.heappush(
                    self._heap,
                    (existing.priority, existing.seq, existing),
                )
            return self._wait(existing.future, timeout)
        if self._open_requests >= config.max_pending:
            raise ServiceOverloadedError(
                f"{self._open_requests} open requests "
                f"(max_pending={config.max_pending})"
            )
        request = _Request(
            seq=next(self._seq),
            key=key,
            source=source,
            target=target,
            options=options,
            priority=int(priority),
            future=self._loop.create_future(),
            token=CancellationToken(
                Deadline.after(timeout) if timeout is not None else None
            ),
            route=route,
        )
        request.future.add_done_callback(_consume_exception)
        if config.trace:
            request.span = Span.new_root(
                "request",
                seq=request.seq,
                route=route if route is not None else "solve",
                priority=int(priority),
            )
        self._inflight[key] = request
        self._open_requests += 1
        self._queued += 1
        heapq.heappush(self._heap, (request.priority, request.seq, request))
        self.stats.note_queued(self._queued)
        self.recorder.record(
            "request.admitted",
            seq=request.seq,
            priority=int(priority),
            queue_depth=self._queued,
        )
        assert self._work_available is not None
        self._work_available.set()
        return self._wait(request.future, timeout)

    async def _wait(
        self, future: asyncio.Future, timeout: float | None
    ) -> Solution:
        """One waiter's view of a (possibly shared) computation.

        The shield keeps a waiter's timeout from cancelling the
        computation out from under coalesced duplicates.  Every way a
        waiter can lose is a *typed* error: a waiter-side timeout and a
        computation-side cooperative cancellation both surface as
        :class:`SolveTimeoutError` (and count in ``stats.timeouts``); a
        future torn down by service shutdown surfaces as
        :class:`ServiceClosedError`, never a bare ``CancelledError``.
        """
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except SolveTimeoutError:
            self.stats.timeouts += 1
            raise
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise SolveTimeoutError(
                f"solve did not finish within {timeout}s"
            ) from None
        except asyncio.CancelledError:
            if future.cancelled():
                raise ServiceClosedError(
                    "service closed while the solve was in flight"
                ) from None
            raise

    # -- dispatch and execution ----------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._work_available is not None and self._slots is not None
        while True:
            await self._work_available.wait()
            self._work_available.clear()
            while self._heap:
                await self._slots.acquire()
                # Highest priority *at dispatch time*, FIFO within a
                # priority class; stale entries left behind by priority
                # bumps are skipped.
                request = None
                while self._heap:
                    _, _, candidate = heapq.heappop(self._heap)
                    if not candidate.dispatched:
                        request = candidate
                        break
                if request is None:
                    self._slots.release()
                    break
                request.dispatched = True
                self._queued -= 1
                self.stats.note_queued(self._queued)
                task = asyncio.create_task(self._execute(request))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    def _note_worker_restart(self) -> None:
        self.stats.worker_restarts += 1
        self.recorder.record(
            "worker.restart", restarts=self.stats.worker_restarts
        )

    def _note_breaker_transition(self, name: str, state) -> None:
        self.stats.note_breaker_transition(name, state.value)
        self.recorder.record(
            "breaker.transition", breaker=name, state=state.value
        )

    # -- telemetry -----------------------------------------------------------

    def exposition(self) -> str:
        """This process's metrics in Prometheus text format."""
        return self.metrics.exposition()

    def _metrics_collector(self):
        """Scrape-time registry view of the service's stat bags.

        Derives throwaway instruments from :class:`ServiceStats`, the
        breakers, and the latency histograms, so those APIs keep their
        shape while still showing up in one exposition.
        """
        stats = self.stats
        requests = Counter(
            "repro_service_requests_total",
            "Request lifecycle outcomes of the solve service.",
            ("outcome",),
        )
        for outcome, value in (
            ("submitted", stats.submitted),
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("rejected", stats.rejected),
            ("timeouts", stats.timeouts),
            ("cancelled", stats.cancelled_solves),
            ("retries", stats.retries),
            ("rescued", stats.requests_rescued),
            ("coalesced", stats.coalesce_hits),
        ):
            requests.inc(value, outcome=outcome)
        queue = Gauge(
            "repro_service_queue_depth",
            "Requests admitted but not yet dispatched.",
        )
        queue.set(stats.queue_depth)
        backends = Counter(
            "repro_service_solves_total",
            "Completed solves by executing backend.",
            ("backend",),
        )
        backends.inc(stats.thread_solves, backend="thread")
        backends.inc(stats.process_solves, backend="process")
        cache = Counter(
            "repro_service_cache_events_total",
            "Structure-cache traffic folded from per-solve stats.",
            ("event",),
        )
        cache.inc(stats.solve_cache_hits, event="hit")
        cache.inc(stats.solve_cache_misses, event="miss")
        breaker_state = Gauge(
            "repro_service_breaker_state",
            "Circuit-breaker state (0 closed, 1 half-open, 2 open).",
            ("breaker",),
        )
        for name, breaker in self.breakers.items():
            breaker_state.set(
                _BREAKER_STATE_VALUE[breaker.state.value], breaker=name
            )
        transitions = Counter(
            "repro_service_breaker_transitions_total",
            "Circuit-breaker transitions by breaker and state entered.",
            ("breaker", "state"),
        )
        for key, value in stats.breaker_transitions.items():
            name, _, state = key.partition(":")
            transitions.inc(value, breaker=name, state=state)
        restarts = Counter(
            "repro_service_worker_restarts_total",
            "Process-pool rebuilds performed after worker crashes.",
        )
        restarts.inc(stats.worker_restarts)
        latency = Gauge(
            "repro_service_latency_ms",
            "End-to-end latency percentiles per route (milliseconds).",
            ("route", "quantile"),
        )
        for route, histogram in stats.route_latency.items():
            if not histogram.count:
                continue
            p50, p95, p99 = histogram.percentiles(50, 95, 99)
            latency.set(p50, route=route, quantile="0.5")
            latency.set(p95, route=route, quantile="0.95")
            latency.set(p99, route=route, quantile="0.99")
        return (
            requests,
            queue,
            backends,
            cache,
            breaker_state,
            transitions,
            restarts,
            latency,
        )

    def _plan_and_maybe_solve(
        self, request: _Request, options: dict, allow_process: bool
    ) -> tuple[str, float, Solution | None]:
        """Runs on a worker thread: plan, and solve if cheap.

        Compiling the target through the sharded cache both feeds the
        planner and warms the cache every thread-backend solve of this
        target will hit.  The thread/process decision compares the
        *chosen* route's predicted cost against the threshold: a
        search-heavy instance the planner can decide by DP or pebble no
        longer pays the process hop.  Pebble routing is only considered
        when the pipeline will actually follow the plan
        (``config.plan``); otherwise the prediction sticks to the
        search/DP routes the fixed registry can take.

        Runs under the request's cancellation scope, so an
        already-expired deadline fails fast and a thread-backend solve
        is abandoned cooperatively once the deadline passes.
        """
        with cancel_scope(request.token):
            request.token.check()
            threshold = self._config.process_cost_threshold
            with child_scope(request.span, "service.plan") as plan_span:
                ctarget = self.cache.compiled_target(request.target)
                cost = estimate_cost(
                    request.source, request.target, ctarget=ctarget
                )
                if options["plan"] or (allow_process and cost >= threshold):
                    # The width estimate (a greedy decomposition) is only
                    # worth computing when it can change something: the
                    # pipeline will follow the plan, or the raw search
                    # estimate would ship the request to a process and a
                    # cheap DP route could keep it here.  Below-threshold
                    # requests with planning off skip it — they are
                    # thread-solved either way, and the fixed registry's
                    # treewidth route decomposes through the pipeline cache.
                    cost = plan_instance(
                        request.source,
                        request.target,
                        ctarget=ctarget,
                        width_threshold=options["width_threshold"],
                        pebble_k=options["try_pebble_refutation"],
                        allow_pebble=options["plan"],
                        datalog_k=options["try_canonical_datalog"],
                    ).predicted_cost
                ship = allow_process and cost >= threshold
                if plan_span is not None:
                    plan_span.set(
                        predicted_cost=cost,
                        backend="process" if ship else "thread",
                    )
            if ship:
                return "process", cost, None
            with child_scope(request.span, "backend.thread"):
                solution = self.pipeline.solve(
                    request.source, request.target, **options
                )
            return "thread", cost, solution

    def _thread_solve(self, request: _Request, options: dict) -> Solution:
        """Runs on a worker thread: the process-degraded fallback solve."""
        with cancel_scope(request.token), child_scope(
            request.span, "backend.thread", degraded="process-breaker"
        ):
            return self.pipeline.solve(
                request.source, request.target, **options
            )

    def _legacy_solve(self, request: _Request) -> Solution:
        """Runs on a worker thread: the kernel-breaker fallback.

        The legacy reference engine decides the same instance without
        touching the compiled-kernel plane at all (no ``compile_target``,
        no bitsets), so it keeps answering — exactly, just slower — while
        the kernel breaker is open.
        """
        with cancel_scope(request.token), child_scope(
            request.span, "backend.legacy", degraded="kernel-breaker"
        ):
            assignment = find_homomorphism(
                request.source, request.target, engine="legacy"
            )
        return Solution(assignment, "legacy-engine(kernel-breaker)")

    def _deadline_remaining(self, request: _Request) -> float | None:
        deadline = request.token.deadline
        return None if deadline is None else deadline.remaining()

    async def _attempt(
        self, request: _Request, options: dict
    ) -> tuple[Solution, str]:
        """One resilient attempt: plan on a thread, maybe hop to a process."""
        assert self._loop is not None and self._thread_pool is not None
        allow_process = (
            self._supervisor is not None and self._supervisor.available
        )
        backend, _cost, solution = await self._loop.run_in_executor(
            self._thread_pool,
            self._plan_and_maybe_solve,
            request,
            options,
            allow_process,
        )
        if solution is not None:
            return solution, backend
        # The plan chose the process backend.  The breaker is consulted
        # only now — a request that never needed a process must not
        # consume its half-open probe slot.
        assert self._supervisor is not None
        if self.breakers["process"].allow():
            remaining = self._deadline_remaining(request)
            if remaining is not None and remaining <= 0:
                raise SolveTimeoutError(
                    "deadline expired before process dispatch"
                )
            # Spans don't pickle; only the coordinates cross the pool
            # boundary.  The worker opens a remote span under them and
            # ships its finished subtree back on ``stats.trace``, which
            # is grafted here — one trace id across both processes.
            dispatch_span = (
                request.span.child("backend.process")
                if request.span is not None
                else None
            )
            trace_ctx = (
                (dispatch_span.trace_id, dispatch_span.span_id)
                if dispatch_span is not None
                else None
            )
            try:
                solution = await self._supervisor.run(
                    self._loop,
                    process_solve,
                    request.source,
                    request.target,
                    options,
                    remaining,
                    trace_ctx,
                )
            except BaseException as exc:
                if dispatch_span is not None:
                    dispatch_span.set(error=type(exc).__name__)
                    dispatch_span.end()
                raise
            if dispatch_span is not None:
                stats = solution.stats
                if stats is not None and stats.trace:
                    for exported in stats.trace:
                        dispatch_span.add_exported(exported)
                dispatch_span.end()
            self.breakers["process"].record_success()
            return solution, "process"
        # Breaker open: same question, answered on the thread backend.
        self.stats.note_degraded("process")
        solution = await self._loop.run_in_executor(
            self._thread_pool, self._thread_solve, request, options
        )
        return solution, "thread"

    async def _solve_resilient(self, request: _Request) -> tuple[Solution, str]:
        """Drive attempts until success, permanent failure, or budgets end.

        The retry policy in one place: transient failures (worker crash,
        injected fault) retry as-is; a budget breach retries with the
        canonical-Datalog ask stripped (the planner then routes to
        search — semantically identical); a cooperative timeout retries
        only if the deadline was extended by a more patient coalesced
        waiter; anything else is permanent.  Every retry is bounded by
        ``retry_budget`` and by the request's remaining deadline.
        """
        breakers = self.breakers
        options = request.options
        attempts = max(1, self._config.retry_budget + 1)
        for attempt in range(attempts):
            if attempt:
                self.stats.retries += 1
                self.recorder.record(
                    "request.retry", seq=request.seq, attempt=attempt
                )
            attempt_options = options
            if (
                options.get("try_canonical_datalog") is not None
                and not breakers["datalog"].allow()
            ):
                attempt_options = dict(options, try_canonical_datalog=None)
                self.stats.note_degraded("datalog")
            use_legacy = not breakers["kernel"].allow()
            if use_legacy:
                self.stats.note_degraded("kernel")
            try:
                if use_legacy:
                    assert self._loop and self._thread_pool
                    solution = await self._loop.run_in_executor(
                        self._thread_pool, self._legacy_solve, request
                    )
                    backend = "thread"
                else:
                    solution, backend = await self._attempt(
                        request, attempt_options
                    )
            except Exception as exc:  # noqa: BLE001 — classified below
                kind, breaker_name = classify(exc)
                if isinstance(exc, WorkerCrashedError):
                    self.recorder.record(
                        "worker.crash", seq=request.seq, error=str(exc)
                    )
                    _log.warning(
                        "worker crashed under request %d: %s",
                        request.seq,
                        exc,
                        extra={"event": "worker.crash", "seq": request.seq},
                    )
                elif isinstance(exc, ResourceBudgetError):
                    self.recorder.record(
                        "budget.trip", seq=request.seq, error=str(exc)
                    )
                if breaker_name is not None:
                    breakers[breaker_name].record_failure()
                if kind is FailureKind.PERMANENT:
                    raise
                if kind is FailureKind.DEGRADE_DATALOG:
                    if options.get("try_canonical_datalog") is None:
                        # A budget breach outside the degradable route
                        # would reproduce identically: final.
                        raise
                    options = dict(options, try_canonical_datalog=None)
                if attempt + 1 >= attempts or request.token.expired():
                    raise
                continue
            if not use_legacy:
                breakers["kernel"].record_success()
            if attempt_options.get("try_canonical_datalog") is not None:
                breakers["datalog"].record_success()
            if attempt:
                self.stats.requests_rescued += 1
            return solution, backend
        raise AssertionError("unreachable: the loop returns or raises")

    async def _execute(self, request: _Request) -> None:
        assert self._loop is not None and self._thread_pool is not None
        span = request.span
        if span is not None:
            span.set(
                queue_ms=round(
                    (time.perf_counter() - request.enqueued_at) * 1000, 4
                )
            )
        try:
            delay = faultinject.delay_seconds("service.dispatch.delay")
            if delay > 0.0:
                await asyncio.sleep(delay)
            solution, backend = await self._solve_resilient(request)
            latency_ms = (time.perf_counter() - request.enqueued_at) * 1000
            self.stats.note_completed(
                solution, latency_ms, backend, route=request.route
            )
            if span is not None:
                span.set(
                    outcome="completed",
                    backend=backend,
                    strategy=solution.strategy,
                    latency_ms=round(latency_ms, 4),
                )
            self.recorder.record(
                "request.completed",
                seq=request.seq,
                backend=backend,
                latency_ms=round(latency_ms, 3),
            )
            if not request.future.done():
                request.future.set_result(solution)
        except SolveTimeoutError as exc:
            # The computation itself was cancelled cooperatively — the
            # deadline expired inside a kernel loop.  Not a failure of
            # the instance: the waiters see a timeout, and nothing about
            # it outlives the in-flight window.
            self.stats.cancelled_solves += 1
            if span is not None:
                span.set(outcome="timeout")
            self.recorder.record(
                "request.timeout", seq=request.seq, error=str(exc)
            )
            if not request.future.done():
                request.future.set_exception(exc)
        except Exception as exc:  # noqa: BLE001 — forwarded to the waiters
            self.stats.failed += 1
            if span is not None:
                span.set(outcome="error", error=type(exc).__name__)
            self.recorder.record(
                "request.failed", seq=request.seq, error=repr(exc)
            )
            if not request.future.done():
                request.future.set_exception(exc)
        finally:
            if span is not None:
                span.end()
                self.trace_log.append(span.export())
            self._inflight.pop(request.key, None)
            self._open_requests -= 1
            assert self._slots is not None and self._capacity is not None
            self._slots.release()
            async with self._capacity:
                self._capacity.notify_all()
