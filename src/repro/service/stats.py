"""Service-level observability: counters and per-route latency histograms.

Builds on the existing per-solve machinery rather than replacing it:
every :class:`~repro.core.pipeline.Solution` the service completes still
carries its :class:`~repro.core.pipeline.SolveStats` (strategies
consulted, cache traffic, timings), and :class:`ServiceStats` folds those
into the service-wide picture — the per-route buckets are keyed by the
solution's ``strategy`` label (collapsed through
:func:`repro.core.strategies.base_route`), and the aggregate
``solve_cache_hits`` / ``solve_cache_misses`` counters are the sums of
the per-solution ``SolveStats`` counters.

All mutation happens on the service's event-loop thread, so the counters
need no locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import Solution
from repro.core.strategies import base_route, service_route_names

# LatencyHistogram's home moved to the observability plane; this
# re-export keeps the long-standing ``repro.service.stats`` (and
# ``repro.service``) import paths working.
from repro.obs.metrics import LatencyHistogram

__all__ = ["LatencyHistogram", "ServiceStats"]


@dataclass
class ServiceStats:
    """Cumulative counters and histograms of one :class:`SolveService`.

    ``queue_depth`` is the current number of requests admitted but not
    yet dispatched; ``max_queue_depth`` its high-water mark.  A
    "coalesce hit" is a submit that attached to an in-flight duplicate
    instead of enqueuing work; ``rejected`` counts admission-control
    refusals, ``timeouts`` waiters that gave up (the underlying
    computation keeps running for any remaining waiters).
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    timeouts: int = 0
    #: Computations cancelled cooperatively from *inside* the kernel —
    #: the request's deadline expired (or the service was stopped) and
    #: the solve unwound instead of finishing.  Disjoint from ``failed``
    #: (a timeout is not an error of the instance) and from ``timeouts``
    #: (which counts *waiters* that gave up; their computation may well
    #: have completed for someone else).
    cancelled_solves: int = 0
    #: Attempts re-run after a transient failure (worker crash, injected
    #: fault, budget degradation, extended deadline).
    retries: int = 0
    #: Requests that ultimately *succeeded* on a retry attempt — traffic
    #: the resilience layer rescued rather than failed.
    requests_rescued: int = 0
    #: Process-pool rebuilds performed by the supervisor after a crash.
    worker_restarts: int = 0
    #: Requests served by a degraded route while a breaker was open,
    #: keyed by breaker name ("process" → thread backend, "kernel" →
    #: legacy engine, "datalog" → planner search).
    degraded: dict[str, int] = field(default_factory=dict)
    #: Circuit-breaker transition counts keyed ``"name:state"`` (e.g.
    #: ``"process:open"``), plus each breaker's current state below.
    breaker_transitions: dict[str, int] = field(default_factory=dict)
    #: Current breaker states, keyed by breaker name.
    breaker_states: dict[str, str] = field(default_factory=dict)
    coalesce_hits: int = 0
    #: Query–query requests admitted via ``submit_containment`` (a subset
    #: of ``submitted``; their latencies land in the "containment" route
    #: bucket instead of the solving strategy's).
    containment_requests: int = 0
    #: Canonical-Datalog (Theorem 4.2) requests admitted via
    #: ``submit_datalog`` (also a subset of ``submitted``; latencies land
    #: in the "datalog" route bucket).
    datalog_requests: int = 0
    queue_depth: int = 0
    max_queue_depth: int = 0
    thread_solves: int = 0
    process_solves: int = 0
    solve_cache_hits: int = 0
    solve_cache_misses: int = 0
    #: End-to-end (admission → completion) latency per route; pre-seeded
    #: with every built-in route so snapshots enumerate them all.
    route_latency: dict[str, LatencyHistogram] = field(
        default_factory=lambda: {
            name: LatencyHistogram() for name in service_route_names()
        }
    )
    #: End-to-end latency across all routes.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def note_queued(self, depth: int) -> None:
        self.queue_depth = depth
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def note_degraded(self, breaker: str) -> None:
        self.degraded[breaker] = self.degraded.get(breaker, 0) + 1

    def note_breaker_transition(self, breaker: str, state: str) -> None:
        key = f"{breaker}:{state}"
        self.breaker_transitions[key] = self.breaker_transitions.get(key, 0) + 1
        self.breaker_states[breaker] = state

    def note_completed(
        self,
        solution: Solution,
        latency_ms: float,
        backend: str,
        route: str | None = None,
    ) -> None:
        """Fold one finished solve into the service-wide picture.

        ``route`` overrides the latency bucket (the service passes
        ``"containment"`` for query–query traffic); by default the
        bucket is the solving strategy's base route.
        """
        self.completed += 1
        if backend == "process":
            self.process_solves += 1
        else:
            self.thread_solves += 1
        if solution.stats is not None:
            self.solve_cache_hits += solution.stats.cache_hits
            self.solve_cache_misses += solution.stats.cache_misses
        if route is None:
            route = base_route(solution.strategy)
        histogram = self.route_latency.get(route)
        if histogram is None:
            histogram = self.route_latency[route] = LatencyHistogram()
        histogram.record(latency_ms)
        self.latency.record(latency_ms)

    def snapshot(self) -> dict:
        """A JSON-ready view (the benchmark dumps this verbatim)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "cancelled_solves": self.cancelled_solves,
            "retries": self.retries,
            "requests_rescued": self.requests_rescued,
            "worker_restarts": self.worker_restarts,
            "degraded": dict(sorted(self.degraded.items())),
            "breaker_transitions": dict(
                sorted(self.breaker_transitions.items())
            ),
            "breaker_states": dict(sorted(self.breaker_states.items())),
            "coalesce_hits": self.coalesce_hits,
            "containment_requests": self.containment_requests,
            "datalog_requests": self.datalog_requests,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "thread_solves": self.thread_solves,
            "process_solves": self.process_solves,
            "solve_cache_hits": self.solve_cache_hits,
            "solve_cache_misses": self.solve_cache_misses,
            "latency": self.latency.snapshot(),
            "routes": {
                route: histogram.snapshot()
                for route, histogram in sorted(self.route_latency.items())
            },
        }
