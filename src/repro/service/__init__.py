"""The concurrent solve service: serving the homomorphism loop.

The north-star workload — many queries against few shared databases —
arrives *concurrently*.  This package layers a serving front end over
the :mod:`repro.core.pipeline`:

* :class:`SolveService` (:mod:`repro.service.service`) — asyncio
  ``submit`` / ``submit_many`` with admission control, priorities,
  per-request timeouts, and in-flight request coalescing keyed by
  canonical fingerprints; ``submit_containment`` admits query–query
  (Theorem 2.1 containment) traffic through the compiled query plane
  with the same coalescing plus its own stats route;
* backend selection by compiled-size cost estimate
  (:mod:`repro.kernel.estimate`): worker threads for cheap requests,
  a process pool (:mod:`repro.service.workers`) for
  backtracking-heavy ones;
* :class:`ShardedStructureCache` (:mod:`repro.service.cache`) —
  per-shard-locked analysis caches shared by the worker threads;
* :class:`ServiceStats` (:mod:`repro.service.stats`) — queue depth,
  coalesce hits, per-route latency histograms, aggregated per-solve
  :class:`~repro.core.pipeline.SolveStats`;
* resilience (:mod:`repro.service.supervision`,
  :mod:`repro.service.resilience`) — supervised worker respawn after
  crashes, deadline propagation into the kernel loops, retry budgets,
  and circuit breakers that degrade failing routes to semantically
  equivalent fallbacks; chaos-tested against the deterministic fault
  harness (:mod:`repro.faultinject`).

Load characteristics are measured by
``benchmarks/bench_p03_service_load.py`` (results in
``BENCH_service.json``).
"""

from repro.exceptions import (
    FaultInjectedError,
    ResourceBudgetError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SolveTimeoutError,
    WorkerCrashedError,
)
from repro.service.cache import ShardedStructureCache
from repro.service.resilience import BreakerState, CircuitBreaker
from repro.service.service import Priority, ServiceConfig, SolveService
from repro.service.stats import LatencyHistogram, ServiceStats
from repro.service.supervision import SupervisedProcessPool

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FaultInjectedError",
    "LatencyHistogram",
    "Priority",
    "ResourceBudgetError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceStats",
    "ShardedStructureCache",
    "SolveService",
    "SolveTimeoutError",
    "SupervisedProcessPool",
    "WorkerCrashedError",
]
