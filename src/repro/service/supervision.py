"""Supervision of the process-pool backend: detect, respawn, backoff.

``ProcessPoolExecutor`` has an unforgiving failure model: one worker
dying (segfault, OOM kill, ``os._exit``) breaks the *entire* pool —
every in-flight future raises :class:`BrokenProcessPool` and every later
submit is refused.  The stock service treated that as startup-only;
:class:`SupervisedProcessPool` makes it a runtime event the service
survives:

* :meth:`run` wraps a pool submit.  A broken pool (or the equivalent
  ``RuntimeError`` from racing a shutdown pool) is translated to the
  typed :class:`~repro.exceptions.WorkerCrashedError`, so the service's
  retry layer can tell "the worker died under this request" from "the
  request itself is bad".
* The first caller to observe a break triggers a **single-flight
  respawn** (an ``asyncio.Lock`` — concurrent victims of the same break
  wait for the one rebuild rather than racing their own).  Respawn waits
  out an **exponential backoff with seeded jitter** (``base · 2^(streak-1)``,
  capped, ±50% jitter) so a crash-looping workload cannot hot-spin pool
  construction.
* Each rebuilt pool gets a new **generation** number; a crash report
  carries the generation it observed, so a straggler reporting an
  already-replaced pool's death cannot kill the fresh one.
* A successful solve resets the crash streak, so the backoff prices
  consecutive failures, not lifetime totals.

If rebuilding itself fails (the platform refuses to fork/spawn, or
workers die during their health check), the pool marks itself
unavailable and the service degrades to its thread backend — the same
semantics, minus the GIL escape.

All coordination state is touched only from the event-loop thread; the
pool's futures are awaited through ``loop.run_in_executor`` as before.
"""

from __future__ import annotations

import asyncio
import random
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.exceptions import WorkerCrashedError
from repro.obs.logs import get_logger
from repro.service.workers import worker_initializer, worker_pid

__all__ = ["SupervisedProcessPool"]

_log = get_logger("service.supervision")


class SupervisedProcessPool:
    """A self-healing wrapper around one ``ProcessPoolExecutor``."""

    def __init__(
        self,
        workers: int,
        cache_maxsize: int,
        *,
        store_path: str | None = None,
        restart_backoff: float = 0.05,
        backoff_cap: float = 2.0,
        jitter_seed: int | None = None,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a supervised pool needs at least one worker")
        self.workers = workers
        self.cache_maxsize = cache_maxsize
        #: Artifact-store directory the workers read through (``None``
        #: runs them store-less).  Every generation — including pools
        #: respawned after a crash — opens the same store read-only, so
        #: a replacement worker starts warm on everything its
        #: predecessors' service process persisted.
        self.store_path = store_path
        self.restart_backoff = restart_backoff
        self.backoff_cap = backoff_cap
        self.on_restart = on_restart
        self._jitter = random.Random(jitter_seed)
        self._pool: ProcessPoolExecutor | None = None
        #: Bumped on every (re)build; crash reports are generation-tagged.
        self.generation = 0
        #: Consecutive crashes since the last healthy solve.
        self._crash_streak = 0
        #: Lifetime pool rebuilds after a crash (observability).
        self.restarts = 0
        self._respawn_lock = asyncio.Lock()
        #: ``False`` once (re)spawning failed: the platform cannot run a
        #: process pool right now, degrade to threads for good.
        self._available = True

    @property
    def available(self) -> bool:
        """Is the process backend worth routing to?"""
        return self._available

    # -- lifecycle -----------------------------------------------------------

    async def start(self, loop: asyncio.AbstractEventLoop) -> bool:
        """Build the initial pool; ``False`` if the platform refuses."""
        self._available = await self._build(loop)
        return self._available

    async def _build(self, loop: asyncio.AbstractEventLoop) -> bool:
        """Spawn a pool and health-check every worker (a ``worker_pid``
        round trip forces the spawn *now*, before service threads exist —
        forking a multi-threaded process can inherit locks mid-acquire)."""
        pool = None
        try:
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=worker_initializer,
                initargs=(self.cache_maxsize, self.store_path),
            )
            await asyncio.gather(
                *[
                    loop.run_in_executor(pool, worker_pid)
                    for _ in range(self.workers)
                ]
            )
        except (OSError, BrokenProcessPool):
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            return False
        self._pool = pool
        self.generation += 1
        return True

    async def shutdown(self, *, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None
        self._available = False

    # -- the supervised submit -----------------------------------------------

    async def run(self, loop: asyncio.AbstractEventLoop, fn, /, *args):
        """Run ``fn(*args)`` on a pool worker; typed error on a crash.

        A break retires the pool and raises :class:`WorkerCrashedError`
        immediately (every sibling future on that pool is failing
        anyway); the *next* call — typically the service's retry —
        performs the backed-off respawn.
        """
        if not self._available:
            raise WorkerCrashedError("process backend is unavailable")
        pool = self._pool
        generation = self.generation
        if pool is None:
            pool, generation = await self._respawn(loop)
        try:
            result = await loop.run_in_executor(pool, fn, *args)
        except BrokenProcessPool as exc:
            self._note_broken(generation)
            raise WorkerCrashedError(
                f"worker process died mid-solve (pool generation {generation})"
            ) from exc
        except RuntimeError as exc:
            # Racing a concurrent respawn: the old executor refuses new
            # futures after its shutdown began.  Same remedy as broken.
            if "shutdown" not in str(exc):
                raise
            self._note_broken(generation)
            raise WorkerCrashedError(
                f"worker pool was shut down under this solve "
                f"(pool generation {generation})"
            ) from exc
        self._crash_streak = 0
        return result

    def _note_broken(self, generation: int) -> None:
        """Retire the broken pool (only if ``generation`` is current)."""
        if generation != self.generation or self._pool is None:
            return  # a fresher pool already replaced the one we saw die
        broken = self._pool
        self._pool = None
        self._crash_streak += 1
        broken.shutdown(wait=False, cancel_futures=True)

    async def _respawn(
        self, loop: asyncio.AbstractEventLoop
    ) -> tuple[ProcessPoolExecutor, int]:
        """Single-flight rebuild with exponential backoff + jitter."""
        async with self._respawn_lock:
            if self._pool is not None:
                # Another victim of the same break already rebuilt.
                return self._pool, self.generation
            if not self._available:
                raise WorkerCrashedError("process backend is unavailable")
            streak = max(1, self._crash_streak)
            delay = min(
                self.restart_backoff * (2 ** (streak - 1)), self.backoff_cap
            )
            delay *= 0.5 + self._jitter.random()  # ±50% jitter
            if delay > 0:
                await asyncio.sleep(delay)
            if not await self._build(loop):
                self._available = False
                raise WorkerCrashedError(
                    "process pool could not be respawned; "
                    "degrading to the thread backend"
                )
            self.restarts += 1
            _log.warning(
                "process pool respawned after crash "
                "(generation %d, streak %d, backoff %.3fs)",
                self.generation,
                streak,
                delay,
                extra={
                    "event": "worker.restart",
                    "generation": self.generation,
                    "crash_streak": streak,
                    "backoff_s": delay,
                },
            )
            if self.on_restart is not None:
                self.on_restart()
            return self._pool, self.generation
