"""A sharded, independently locked structure cache for the solve service.

:class:`repro.core.pipeline.StructureCache` is thread-safe, but by one
reentrant lock per cache — and the lock is held across a miss's compute,
so a thread compiling a large target blocks every other lookup on that
cache.  Under the service's many-threads-few-targets workload that lock
becomes the global convoy.  :class:`ShardedStructureCache` spreads the
key space over ``num_shards`` plain :class:`StructureCache` shards, each
with its own lock: lookups for different structures land on different
shards (uniformly, since the shard index is a slice of the canonical
fingerprint) and proceed in parallel; only two threads asking for the
*same* structure serialize — which is exactly when serializing is the
right call, because the second thread would recompute what the first is
already computing.

The sharded cache implements the same duck-typed surface the pipeline
uses (``classification`` / ``decomposition`` / ``compiled_target``, each
with the per-solve ``tally`` hook, plus ``stats`` / ``clear`` /
``__len__``), so it drops into ``SolverPipeline(cache=...)`` unchanged.
"""

from __future__ import annotations

from repro.boolean.schaefer import SchaeferClass
from repro.core.pipeline import CacheStats, CacheTally, StructureCache
from repro.kernel.compile import CompiledTarget
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.structure import Structure
from repro.treewidth.decomposition import TreeDecomposition

__all__ = ["ShardedStructureCache"]


class ShardedStructureCache:
    """``num_shards`` independent :class:`StructureCache` shards.

    ``maxsize`` bounds each *shard* (so the whole cache holds up to
    ``num_shards * maxsize`` entries per analysis kind).  The shard of a
    structure is derived from its canonical fingerprint — stable across
    processes and across structurally equal rebuilds, like the cache keys
    themselves.
    """

    DEFAULT_NUM_SHARDS = 8

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        *,
        maxsize: int = StructureCache.DEFAULT_MAXSIZE,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self._shards = tuple(
            StructureCache(maxsize) for _ in range(num_shards)
        )

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[StructureCache, ...]:
        return self._shards

    def shard_for(self, structure: Structure) -> StructureCache:
        """The shard responsible for ``structure`` (fingerprint-routed)."""
        return self.shard_for_fingerprint(canonical_fingerprint(structure))

    def shard_for_fingerprint(self, fingerprint: str) -> StructureCache:
        """The shard a raw fingerprint routes to (store warm-up path)."""
        return self._shards[int(fingerprint[:8], 16) % len(self._shards)]

    def attach_store(self, store) -> None:
        """Attach (or detach, with ``None``) a persistent L2 store.

        Every shard reads through / writes through the same store — the
        store is internally locked, and cross-shard traffic only meets
        there on L1 misses.
        """
        for shard in self._shards:
            shard.attach_store(store)

    def seed(self, kind: str, fingerprint: str, value) -> None:
        """Insert a recovered artifact into its fingerprint-routed shard."""
        self.shard_for_fingerprint(fingerprint).seed(kind, fingerprint, value)

    # -- the StructureCache surface ------------------------------------------

    def classification(
        self, target: Structure, *, tally: CacheTally | None = None
    ) -> SchaeferClass:
        return self.shard_for(target).classification(target, tally=tally)

    def decomposition(
        self, source: Structure, *, tally: CacheTally | None = None
    ) -> TreeDecomposition:
        return self.shard_for(source).decomposition(source, tally=tally)

    def compiled_target(
        self, target: Structure, *, tally: CacheTally | None = None
    ) -> CompiledTarget:
        return self.shard_for(target).compiled_target(target, tally=tally)

    @property
    def stats(self) -> CacheStats:
        """Aggregate hit/miss counters across all shards."""
        hits = misses = 0
        for shard in self._shards:
            shard_stats = shard.stats
            hits += shard_stats.hits
            misses += shard_stats.misses
        return CacheStats(hits, misses)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()
