"""Process-pool worker side of the solve service.

Each worker process owns one long-lived :class:`SolverPipeline` with its
own :class:`StructureCache`, so compiled targets, Schaefer
classifications, and tree decompositions are reused across every request
the pool routes to that worker — the per-target amortization the service
is built around survives the process hop.

Structures arrive pickled.  ``Structure.__getstate__`` deliberately
drops the compiled-kernel memo slots (see
:mod:`repro.structures.structure`), so the payload is the mathematical
content only and the worker recompiles lazily into its own cache on
first use.  The returned :class:`~repro.core.pipeline.Solution` — the
assignment, the winning strategy label, and the per-solve
:class:`~repro.core.pipeline.SolveStats` — pickles back to the service,
which folds the stats into its service-wide counters.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro import faultinject
from repro.core.cancellation import Deadline
from repro.core.pipeline import Solution, SolverPipeline, StructureCache
from repro.obs.logs import get_logger
from repro.obs.trace import Span, span_scope
from repro.structures.structure import Structure

__all__ = ["process_solve", "worker_pid", "worker_initializer"]

_log = get_logger("service.workers")

#: The worker's long-lived pipeline, created by :func:`worker_initializer`
#: (or lazily on the first solve if the pool was built without one).
_pipeline: SolverPipeline | None = None
_cache_maxsize: int = StructureCache.DEFAULT_MAXSIZE
_store_path: str | None = None


def worker_initializer(
    cache_maxsize: int = StructureCache.DEFAULT_MAXSIZE,
    store_path: str | None = None,
) -> None:
    """Build this worker's pipeline up front (runs in the pool worker)."""
    global _pipeline, _cache_maxsize, _store_path
    _cache_maxsize = cache_maxsize
    _store_path = store_path
    _pipeline = SolverPipeline(cache=_build_cache())
    # The chaos harness exports its plan through the environment so
    # worker-side faults (kills mid-solve) fire inside this process —
    # including in pools the supervisor respawns after a kill.
    faultinject.install_from_env()


def _build_cache() -> StructureCache:
    """This worker's cache, reading through the shared store if one is set.

    Workers open the store **read-only**: the service process is the
    single writer (and holds the writer lock), while any number of
    worker generations read the same log — that is how a respawned
    worker comes back warm instead of recompiling every structure the
    dead one knew.  A store that cannot be opened (deleted out from
    under us, unreadable) degrades to a plain in-memory cache; the
    worker still answers correctly, just cold.
    """
    cache = StructureCache(_cache_maxsize)
    if _store_path is not None:
        from repro.persist import ArtifactStore
        from repro.persist import runtime as persist_runtime

        from repro.exceptions import ArtifactStoreError

        try:
            store = ArtifactStore(_store_path, mode="ro")
        except (OSError, ArtifactStoreError) as exc:
            _log.warning(
                "worker could not open artifact store at %s: %s — cold cache",
                _store_path,
                exc,
                extra={"event": "store.unavailable", "path": _store_path},
            )
            return cache
        cache.attach_store(store)
        # The canonical-Datalog plane reads ρ_B records through the
        # process-wide default store handle.
        persist_runtime.set_default_store(store)
    return cache


def _get_pipeline() -> SolverPipeline:
    global _pipeline
    if _pipeline is None:
        _pipeline = SolverPipeline(cache=_build_cache())
    return _pipeline


def process_solve(
    source: Structure,
    target: Structure,
    options: dict,
    deadline_remaining: float | None = None,
    trace_ctx: tuple[str, str] | None = None,
) -> Solution:
    """Solve one instance on this worker's pipeline.

    ``options`` carries the pipeline solve keywords
    (``width_threshold`` / ``try_pebble_refutation``) as a plain dict so
    the call pickles without dragging service types into the worker.
    ``deadline_remaining`` is the request's budget in seconds at dispatch
    time — re-anchored to this process's clock, so the kernel loops can
    abandon the solve cooperatively.  (A deadline *extended* after
    dispatch — a patient coalesced waiter attaching — does not reach a
    running worker; the service retries the solve with the new budget
    when this one times out.)

    ``trace_ctx`` is the service-side trace coordinates
    ``(trace_id, parent_span_id)``.  Spans are process-local objects, so
    only the ids cross the pickle boundary: the worker opens a remote
    ``worker.solve`` span under those coordinates, solves beneath it, and
    ships the finished subtree back as plain dicts on ``stats.trace`` for
    the service to graft into the request's span tree.
    """
    faultinject.kill_process("worker.kill.before")
    faultinject.kill_process("worker.kill.during", delay_range=(0.005, 0.05))
    deadline = (
        Deadline.after(deadline_remaining)
        if deadline_remaining is not None
        else None
    )
    pipeline = _get_pipeline()
    if trace_ctx is None:
        return pipeline.solve(source, target, deadline=deadline, **options)
    trace_id, parent_id = trace_ctx
    root = Span.new_remote("worker.solve", trace_id, parent_id)
    root.set(pid=os.getpid())
    try:
        with span_scope(root):
            solution = pipeline.solve(
                source, target, deadline=deadline, **options
            )
    finally:
        root.end()
    if solution.stats is None:
        return solution
    return replace(
        solution, stats=replace(solution.stats, trace=(root.export(),))
    )


def worker_pid() -> int:
    """Identify the worker (used to pre-spawn and health-check the pool)."""
    return os.getpid()
