"""Retry classification and circuit breakers for the solve service.

The service's failure handling follows one rule: *an error that names a
transient cause is worth retrying; an error that names a structural
cause is worth routing around.*  This module supplies both halves:

* :func:`classify` — maps an exception from one solve attempt to a
  :class:`FailureKind`, deciding whether the attempt is retried within
  the request's remaining deadline and which breaker (if any) records
  the failure;
* :class:`CircuitBreaker` — a classic closed → open → half-open machine,
  one per degradable route.  ``threshold`` consecutive failures open the
  breaker; after ``cooldown`` seconds one *probe* request is let through
  (half-open); its outcome closes or re-opens the breaker.  While open,
  the service degrades the route to its semantically equivalent
  fallback — process backend → thread backend, compiled kernel → legacy
  engine, canonical Datalog → planner search — so answers stay exact,
  only slower.

Every breaker method runs on the service's event-loop thread, so the
state machine needs no locking; the optional ``on_transition`` callback
is how :class:`~repro.service.stats.ServiceStats` observes transitions
without the breaker importing the stats module.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Callable

from repro.exceptions import (
    FaultInjectedError,
    ResourceBudgetError,
    SolveTimeoutError,
    WorkerCrashedError,
)
from repro.obs.logs import get_logger

__all__ = ["BreakerState", "CircuitBreaker", "FailureKind", "classify"]

_log = get_logger("service.resilience")


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """A per-route closed → open → half-open failure breaker.

    ``allow()`` is the gate: ``True`` means "take the guarded route".
    It has a side effect only at the open → half-open boundary (it
    claims the single probe slot), so callers must only consult it when
    they would actually take the route — a request that never needed the
    process backend must not consume the process breaker's probe.
    """

    __slots__ = (
        "name",
        "threshold",
        "cooldown",
        "_state",
        "_failures",
        "_opened_at",
        "_probing",
        "transitions",
        "on_transition",
        "_clock",
    )

    def __init__(
        self,
        name: str,
        *,
        threshold: int = 5,
        cooldown: float = 1.0,
        on_transition: Callable[[str, BreakerState], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Cumulative transition counts keyed by the state entered.
        self.transitions: dict[str, int] = {}
        self.on_transition = on_transition
        self._clock = clock

    @property
    def state(self) -> BreakerState:
        return self._state

    def _transition(self, state: BreakerState) -> None:
        self._state = state
        self.transitions[state.value] = self.transitions.get(state.value, 0) + 1
        _log.warning(
            "circuit breaker %r entered %s",
            self.name,
            state.value,
            extra={
                "event": "breaker.transition",
                "breaker": self.name,
                "state": state.value,
                "failures": self._failures,
            },
        )
        if self.on_transition is not None:
            self.on_transition(self.name, state)

    def allow(self) -> bool:
        """May the caller take the guarded route right now?"""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self._transition(BreakerState.HALF_OPEN)
                self._probing = True
                return True
            return False
        # Half-open: exactly one probe in flight at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """The guarded route worked; close (or stay closed and reset)."""
        self._failures = 0
        self._probing = False
        if self._state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """The guarded route failed; count toward (re)opening."""
        self._probing = False
        if self._state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to open, fresh cooldown.
            self._opened_at = self._clock()
            self._transition(BreakerState.OPEN)
            return
        self._failures += 1
        if self._state is BreakerState.CLOSED and self._failures >= self.threshold:
            self._opened_at = self._clock()
            self._transition(BreakerState.OPEN)

    def snapshot(self) -> dict:
        return {
            "state": self._state.value,
            "failures": self._failures,
            "transitions": dict(self.transitions),
        }


class FailureKind(Enum):
    """What one failed attempt means for the request's next attempt."""

    #: Worth another attempt as-is (a worker died, an injected transient
    #: fired) — the cause is not a property of the instance.
    TRANSIENT = "transient"
    #: Worth another attempt with the route degraded (strip the canonical
    #: Datalog ask) — the cause is a budget the fallback route avoids.
    DEGRADE_DATALOG = "degrade_datalog"
    #: Worth another attempt only if the request's deadline was extended
    #: (a coalesced waiter attached with more patience) — otherwise final.
    TIMEOUT = "timeout"
    #: Final: retrying reproduces the same answer (a genuine error).
    PERMANENT = "permanent"


def classify(exc: BaseException) -> tuple[FailureKind, str | None]:
    """Map one attempt's exception to (kind, breaker name or ``None``).

    The order matters: :class:`WorkerCrashedError` and
    :class:`FaultInjectedError` are transient (the *next* attempt may
    land on a healthy worker or a healthy code path);
    :class:`ResourceBudgetError` is structural but *degradable* — the
    fallback route avoids the table that would not fit;
    :class:`SolveTimeoutError` is retryable only with new budget, which
    the caller checks against the request's live deadline.  Everything
    else is permanent: the same instance will fail the same way.
    """
    if isinstance(exc, WorkerCrashedError):
        return FailureKind.TRANSIENT, "process"
    if isinstance(exc, FaultInjectedError):
        return FailureKind.TRANSIENT, "kernel"
    if isinstance(exc, ResourceBudgetError):
        return FailureKind.DEGRADE_DATALOG, "datalog"
    if isinstance(exc, SolveTimeoutError):
        return FailureKind.TIMEOUT, None
    return FailureKind.PERMANENT, None
