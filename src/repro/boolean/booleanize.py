"""Booleanization of constraint-satisfaction instances (Lemma 3.5).

Every instance ``(A, B)`` of the homomorphism problem converts, with only a
logarithmic blow-up, into a *Boolean* instance ``(A_b, B_b)``: encode each
of the ``n`` elements of ``B`` as an ``m = ⌈log₂ n⌉``-bit vector, turn every
``k``-ary relation of ``B`` into a ``km``-ary Boolean relation, and replace
every element ``a`` of ``A`` by ``m`` fresh copies ``(a, 0), …, (a, m−1)``.

Lemma 3.5:  ``A → B``  iff  ``A_b → B_b``.

The labeling of B's elements is a parameter because it *matters*: Example
3.8 shows two labelings of the directed 4-cycle C₄, one of which yields an
affine-only Boolean structure while the other yields one that is both
bijunctive and affine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.exceptions import NotBooleanError, VocabularyError
from repro.structures.structure import Structure, _sort_key
from repro.structures.vocabulary import Vocabulary

__all__ = ["Booleanization", "booleanize", "code_bits"]

Element = Hashable


def code_bits(code: int, width: int) -> tuple[int, ...]:
    """The ``width``-bit big-endian encoding of ``code``."""
    if code < 0 or (width < code.bit_length()):
        raise ValueError(f"code {code} does not fit in {width} bits")
    return tuple((code >> (width - 1 - i)) & 1 for i in range(width))


@dataclass(frozen=True)
class Booleanization:
    """The result of Booleanizing an instance ``(A, B)``.

    Attributes
    ----------
    source:
        ``A_b`` — the Boolean-side encoding of ``A`` (copies ``(a, i)``).
    target:
        ``B_b`` — the Boolean structure over universe {0, 1}.
    labeling:
        The injective ``{element of B: integer code}`` map used.
    bits:
        ``m``, the number of bits per element.
    """

    source: Structure
    target: Structure
    labeling: Mapping[Element, int]
    bits: int

    def decode_homomorphism(
        self, boolean_hom: Mapping[tuple[Element, int], int]
    ) -> dict[Element, Element]:
        """Translate a homomorphism ``A_b → B_b`` back to one ``A → B``.

        Copies of an element that decode to a code not assigned to any
        element of B can only belong to elements of A occurring in no fact
        (their copies are unconstrained); those are mapped to an arbitrary
        element of B, preserving the homomorphism property.
        """
        reverse = {code: element for element, code in self.labeling.items()}
        fallback = min(reverse.values(), key=_sort_key)
        result: dict[Element, Element] = {}
        for (element, bit_index), value in boolean_hom.items():
            if bit_index != 0:
                continue
            code = 0
            for i in range(self.bits):
                code = (code << 1) | int(boolean_hom[(element, i)])
            result[element] = reverse.get(code, fallback)
        return result

    def encode_homomorphism(
        self, hom: Mapping[Element, Element]
    ) -> dict[tuple[Element, int], int]:
        """Translate a homomorphism ``A → B`` into one ``A_b → B_b``."""
        encoded: dict[tuple[Element, int], int] = {}
        for element, target_element in hom.items():
            bits = code_bits(self.labeling[target_element], self.bits)
            for i, bit in enumerate(bits):
                encoded[(element, i)] = bit
        return encoded


def booleanize(
    source: Structure,
    target: Structure,
    labeling: Mapping[Element, int] | None = None,
) -> Booleanization:
    """Booleanize the instance ``(source, target)`` per Lemma 3.5.

    ``labeling`` assigns distinct codes ``0 ≤ code < 2^m`` to the elements
    of ``target``; by default elements are numbered in sorted order.  The
    number of bits is ``m = max(1, ⌈log₂ |B|⌉)`` (at least one bit so the
    encoding stays meaningful for singleton targets).
    """
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("Booleanization requires a common vocabulary")
    if not target.universe:
        raise NotBooleanError("cannot Booleanize an empty target structure")
    elements = target.sorted_universe
    if labeling is None:
        labeling = {element: i for i, element in enumerate(elements)}
    else:
        labeling = dict(labeling)
        if set(labeling) != set(elements):
            raise NotBooleanError(
                "labeling must cover exactly the elements of the target"
            )
        codes = list(labeling.values())
        if len(set(codes)) != len(codes):
            raise NotBooleanError("labeling codes must be distinct")
    max_code = max(labeling.values())
    if any(code < 0 for code in labeling.values()):
        raise NotBooleanError("labeling codes must be non-negative")
    bits = max(1, max(max_code.bit_length(), (len(elements) - 1).bit_length()))

    # Target side: each k-ary fact becomes the km-bit concatenation of its
    # components' codes.
    target_relations: dict[str, set[tuple[int, ...]]] = {}
    for symbol, rel in target.relations():
        encoded = set()
        for fact in rel:
            bits_flat: tuple[int, ...] = ()
            for component in fact:
                bits_flat += code_bits(labeling[component], bits)
            encoded.add(bits_flat)
        target_relations[symbol.name] = encoded

    # Source side: element a becomes copies (a, 0..m-1); each fact expands
    # positionally.
    source_universe = [
        (element, i) for element in source.universe for i in range(bits)
    ]
    source_relations: dict[str, set[tuple[tuple[Element, int], ...]]] = {}
    for symbol, rel in source.relations():
        expanded = set()
        for fact in rel:
            flat: tuple[tuple[Element, int], ...] = ()
            for component in fact:
                flat += tuple((component, i) for i in range(bits))
            expanded.add(flat)
        source_relations[symbol.name] = expanded

    widened = {
        symbol.name: symbol.arity * bits for symbol in source.vocabulary
    }
    boolean_vocabulary = Vocabulary.from_arities(widened)
    source_b = Structure(boolean_vocabulary, source_universe, source_relations)
    target_b = Structure(boolean_vocabulary, {0, 1}, target_relations)
    return Booleanization(source_b, target_b, labeling, bits)
