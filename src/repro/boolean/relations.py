"""Boolean relations and their componentwise (polymorphism) operations.

A k-ary Boolean relation is a set of tuples over {0, 1} — equivalently, a
set of truth assignments to propositional variables p₁…p_k (Section 3.1).
Schaefer's tractable classes are characterized by *closure* under certain
componentwise operations (proof of Theorem 3.1):

================  =========================================
class             closed under
================  =========================================
Horn              binary AND  (t₁ ∧ t₂)
dual Horn         binary OR   (t₁ ∨ t₂)
bijunctive        ternary majority  maj(t₁, t₂, t₃)
affine            ternary XOR  (t₁ ⊕ t₂ ⊕ t₃)
================  =========================================
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator

from repro.exceptions import NotBooleanError
from repro.structures.structure import Structure

__all__ = [
    "BooleanRelation",
    "tuple_and",
    "tuple_or",
    "tuple_majority",
    "tuple_xor3",
    "boolean_relations_of",
]

Bit = int
BitTuple = tuple[Bit, ...]


def _check_tuple(t: BitTuple) -> BitTuple:
    t = tuple(int(b) for b in t)
    if any(b not in (0, 1) for b in t):
        raise NotBooleanError(f"tuple {t!r} has non-Boolean entries")
    return t


def tuple_and(t1: BitTuple, t2: BitTuple) -> BitTuple:
    """Componentwise conjunction."""
    return tuple(a & b for a, b in zip(t1, t2, strict=True))


def tuple_or(t1: BitTuple, t2: BitTuple) -> BitTuple:
    """Componentwise disjunction."""
    return tuple(a | b for a, b in zip(t1, t2, strict=True))


def tuple_majority(t1: BitTuple, t2: BitTuple, t3: BitTuple) -> BitTuple:
    """Componentwise majority of three tuples."""
    return tuple(
        1 if a + b + c >= 2 else 0
        for a, b, c in zip(t1, t2, t3, strict=True)
    )


def tuple_xor3(t1: BitTuple, t2: BitTuple, t3: BitTuple) -> BitTuple:
    """Componentwise XOR of three tuples."""
    return tuple(
        (a + b + c) % 2 for a, b, c in zip(t1, t2, t3, strict=True)
    )


class BooleanRelation:
    """An immutable k-ary relation over {0, 1}.

    Provides the closure tests behind Theorem 3.1 and small conveniences
    (ones-sets, the ``X → j`` satisfaction test of Theorem 3.4).
    """

    __slots__ = ("_arity", "_tuples")

    def __init__(self, arity: int, tuples: Iterable[BitTuple]) -> None:
        if arity < 0:
            raise NotBooleanError("arity must be non-negative")
        cleaned = set()
        for t in tuples:
            t = _check_tuple(t)
            if len(t) != arity:
                raise NotBooleanError(
                    f"tuple {t!r} has width {len(t)}, expected {arity}"
                )
            cleaned.add(t)
        self._arity = arity
        self._tuples = frozenset(cleaned)

    # -- container protocol ---------------------------------------------------

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def tuples(self) -> frozenset[BitTuple]:
        return self._tuples

    def __contains__(self, t: object) -> bool:
        return t in self._tuples

    def __iter__(self) -> Iterator[BitTuple]:
        return iter(sorted(self._tuples))

    def __len__(self) -> int:
        return len(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanRelation):
            return NotImplemented
        return self._arity == other._arity and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self._arity, self._tuples))

    def __repr__(self) -> str:
        shown = ", ".join("".join(map(str, t)) for t in self)
        return f"BooleanRelation({self._arity}, {{{shown}}})"

    # -- Schaefer closure tests (proof of Theorem 3.1) -----------------------

    @property
    def is_zero_valid(self) -> bool:
        """Contains the all-zeros tuple."""
        return (0,) * self._arity in self._tuples

    @property
    def is_one_valid(self) -> bool:
        """Contains the all-ones tuple."""
        return (1,) * self._arity in self._tuples

    @property
    def is_horn(self) -> bool:
        """Closed under componentwise AND (Dechter–Pearl criterion)."""
        return all(
            tuple_and(t1, t2) in self._tuples
            for t1 in self._tuples
            for t2 in self._tuples
        )

    @property
    def is_dual_horn(self) -> bool:
        """Closed under componentwise OR (Dechter–Pearl criterion)."""
        return all(
            tuple_or(t1, t2) in self._tuples
            for t1 in self._tuples
            for t2 in self._tuples
        )

    @property
    def is_bijunctive(self) -> bool:
        """Closed under componentwise majority (Schaefer's criterion)."""
        return all(
            tuple_majority(t1, t2, t3) in self._tuples
            for t1 in self._tuples
            for t2 in self._tuples
            for t3 in self._tuples
        )

    @property
    def is_affine(self) -> bool:
        """Closed under componentwise ternary XOR (Schaefer's criterion)."""
        return all(
            tuple_xor3(t1, t2, t3) in self._tuples
            for t1 in self._tuples
            for t2 in self._tuples
            for t3 in self._tuples
        )

    # -- helpers used by the direct algorithms (Theorem 3.4) ----------------

    def ones(self, t: BitTuple) -> frozenset[int]:
        """The ones-set One(t) = {i : t_i = 1} (0-based positions)."""
        return frozenset(i for i, b in enumerate(t) if b)

    def satisfies_implication(self, body: frozenset[int], head: int) -> bool:
        """Whether the relation satisfies ``⋀_{i∈body} p_i → p_head``.

        Vacuously true when no tuple has ones on all of ``body`` — exactly
        the convention Theorem 3.4's Horn algorithm relies on.
        """
        return all(
            t[head] == 1
            for t in self._tuples
            if all(t[i] == 1 for i in body)
        )

    def meet_above(self, body: frozenset[int]) -> BitTuple | None:
        """The componentwise AND of all tuples with ones ⊇ ``body``.

        Returns ``None`` when no tuple lies above ``body``.  For Horn
        relations this is the least tuple above ``body`` (closure under ∧).
        """
        above = [
            t for t in self._tuples if all(t[i] == 1 for i in body)
        ]
        if not above:
            return None
        meet = above[0]
        for t in above[1:]:
            meet = tuple_and(meet, t)
        return meet

    def complemented(self) -> "BooleanRelation":
        """The bit-flipped relation {1−t : t ∈ R}.

        Flipping exchanges Horn with dual Horn, 0-valid with 1-valid, and
        preserves bijunctive and affine — the duality the library uses to
        derive every dual-Horn algorithm from its Horn sibling.
        """
        return BooleanRelation(
            self._arity,
            (tuple(1 - b for b in t) for t in self._tuples),
        )

    # -- enumeration (test oracles; exponential in arity) --------------------

    def nonmembers(self) -> Iterator[BitTuple]:
        """All Boolean tuples of the right width *not* in the relation."""
        for t in product((0, 1), repeat=self._arity):
            if t not in self._tuples:
                yield t


def boolean_relations_of(structure: Structure) -> dict[str, BooleanRelation]:
    """Extract every relation of a Boolean structure as a BooleanRelation.

    Raises :class:`NotBooleanError` when the structure's universe is not
    contained in {0, 1}.
    """
    if not structure.is_boolean:
        raise NotBooleanError(
            "expected a Boolean structure (universe within {0, 1})"
        )
    return {
        symbol.name: BooleanRelation(symbol.arity, rel)
        for symbol, rel in structure.relations()
    }
