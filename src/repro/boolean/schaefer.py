"""Schaefer's classification of Boolean structures (Theorem 3.1).

Schaefer's dichotomy [Sch78] identifies six classes of Boolean structures B
for which CSP(B) is polynomial — 0-valid, 1-valid, Horn, dual Horn,
bijunctive, affine — and proves NP-completeness everywhere else.  The
paper's Theorem 3.1 observes that membership in each class is itself
polynomial-time recognizable through the closure criteria of Schaefer and
Dechter–Pearl; this module implements that recognizer.

A structure is in a class when *every* relation is; the *Schaefer class*
``SC`` is the union of the six.  Structures in the first two classes are
"trivial" (a constant map is always a homomorphism); the other four are the
"nontrivial" cases with real algorithms behind them.
"""

from __future__ import annotations

from enum import Flag, auto

from repro.boolean.relations import BooleanRelation, boolean_relations_of
from repro.structures.structure import Structure

__all__ = [
    "SchaeferClass",
    "classify_relation",
    "classify_structure",
    "is_schaefer",
    "nontrivial_classes",
    "TRIVIAL_CLASSES",
    "NONTRIVIAL_CLASSES",
]


class SchaeferClass(Flag):
    """The six Schaefer classes, as combinable flags.

    A relation (or structure) typically belongs to several classes at once —
    e.g. the edge relation of K₂ is both bijunctive and affine
    (Example 3.7) — hence a Flag rather than a plain Enum.
    """

    NONE = 0
    ZERO_VALID = auto()
    ONE_VALID = auto()
    HORN = auto()
    DUAL_HORN = auto()
    BIJUNCTIVE = auto()
    AFFINE = auto()


TRIVIAL_CLASSES = SchaeferClass.ZERO_VALID | SchaeferClass.ONE_VALID
NONTRIVIAL_CLASSES = (
    SchaeferClass.HORN
    | SchaeferClass.DUAL_HORN
    | SchaeferClass.BIJUNCTIVE
    | SchaeferClass.AFFINE
)


def classify_relation(relation: BooleanRelation) -> SchaeferClass:
    """All Schaefer classes the relation belongs to.

    Uses the closure criteria from the proof of Theorem 3.1:
    AND-closure (Horn), OR-closure (dual Horn), majority-closure
    (bijunctive), XOR-closure (affine), and direct membership of the
    constant tuples (0/1-valid).  Each test is polynomial in ``|R|``.
    """
    result = SchaeferClass.NONE
    if relation.is_zero_valid:
        result |= SchaeferClass.ZERO_VALID
    if relation.is_one_valid:
        result |= SchaeferClass.ONE_VALID
    if relation.is_horn:
        result |= SchaeferClass.HORN
    if relation.is_dual_horn:
        result |= SchaeferClass.DUAL_HORN
    if relation.is_bijunctive:
        result |= SchaeferClass.BIJUNCTIVE
    if relation.is_affine:
        result |= SchaeferClass.AFFINE
    return result


def classify_structure(structure: Structure) -> SchaeferClass:
    """The classes *all* relations of a Boolean structure share.

    The result is the intersection over relations; a structure is a
    Schaefer structure when the result is non-empty (Theorem 3.1: the
    class SC is recognizable in polynomial time).
    """
    relations = boolean_relations_of(structure)
    result = (
        TRIVIAL_CLASSES | NONTRIVIAL_CLASSES
    )
    for relation in relations.values():
        result &= classify_relation(relation)
        if result is SchaeferClass.NONE:
            break
    return result


def is_schaefer(structure: Structure) -> bool:
    """Membership in Schaefer's class SC (Theorem 3.1)."""
    return classify_structure(structure) is not SchaeferClass.NONE


def nontrivial_classes(structure: Structure) -> SchaeferClass:
    """The nontrivial Schaefer classes of a structure (may be NONE)."""
    return classify_structure(structure) & NONTRIVIAL_CLASSES
