"""Polymorphisms of Boolean relations — the paper's concluding direction.

The concluding remarks point at the algebraic programme of Jeavons et al.
[JC95, JCG95, JCG96]: tractability of CSP(B) is governed by the functions
under which the relations of B are *closed* (its polymorphisms).  The
Schaefer criteria used in Section 3 are exactly four instances:

================  ======================================
class             witnessing polymorphism
================  ======================================
0-valid           the constant 0 operation
1-valid           the constant 1 operation
Horn              binary AND
dual Horn         binary OR
bijunctive        ternary majority
affine            ternary minority  x ⊕ y ⊕ z
================  ======================================

This module makes the connection executable: a small algebra of Boolean
operations, the closure (polymorphism) test, enumeration of all
polymorphisms of bounded arity, and the derivation of the Schaefer
classification *from* the polymorphism lattice — which the test suite
checks against the direct closure recognizers of Theorem 3.1.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Iterator

from repro.boolean.relations import BooleanRelation
from repro.boolean.schaefer import SchaeferClass

__all__ = [
    "Operation",
    "CONSTANT_0",
    "CONSTANT_1",
    "AND",
    "OR",
    "MAJORITY",
    "MINORITY",
    "projection",
    "is_polymorphism",
    "polymorphisms",
    "schaefer_classes_from_polymorphisms",
]

Bit = int


class Operation:
    """A finitary operation on {0, 1}, given by its truth table.

    The table maps every input tuple (in ``itertools.product`` order over
    ``(0, 1)``) to an output bit.  Operations are hashable values so they
    can be enumerated and collected in sets.
    """

    __slots__ = ("name", "arity", "_table")

    def __init__(
        self, name: str, arity: int, table: Iterable[Bit]
    ) -> None:
        table = tuple(int(b) & 1 for b in table)
        if len(table) != 2**arity:
            raise ValueError(
                f"operation of arity {arity} needs a table of size "
                f"{2 ** arity}, got {len(table)}"
            )
        self.name = name
        self.arity = arity
        self._table = table

    @classmethod
    def from_function(
        cls, name: str, arity: int, fn: Callable[..., Bit]
    ) -> "Operation":
        table = [
            fn(*bits) for bits in product((0, 1), repeat=arity)
        ]
        return cls(name, arity, table)

    def __call__(self, *bits: Bit) -> Bit:
        if len(bits) != self.arity:
            raise ValueError(
                f"{self.name} has arity {self.arity}, got {len(bits)} args"
            )
        index = 0
        for bit in bits:
            index = (index << 1) | (int(bit) & 1)
        return self._table[index]

    def apply_to_tuples(
        self, rows: tuple[tuple[Bit, ...], ...]
    ) -> tuple[Bit, ...]:
        """Apply componentwise to ``arity`` equal-width tuples."""
        return tuple(self(*column) for column in zip(*rows))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self.arity == other.arity and self._table == other._table

    def __hash__(self) -> int:
        return hash((self.arity, self._table))

    def __repr__(self) -> str:
        return f"Operation({self.name!r}, arity={self.arity})"


CONSTANT_0 = Operation("const0", 1, (0, 0))
CONSTANT_1 = Operation("const1", 1, (1, 1))
NOT = Operation("not", 1, (1, 0))
AND = Operation.from_function("and", 2, lambda x, y: x & y)
OR = Operation.from_function("or", 2, lambda x, y: x | y)
MAJORITY = Operation.from_function(
    "majority", 3, lambda x, y, z: 1 if x + y + z >= 2 else 0
)
MINORITY = Operation.from_function(
    "minority", 3, lambda x, y, z: (x + y + z) % 2
)


def projection(arity: int, index: int) -> Operation:
    """The projection operation e_i^{(n)} (a trivial polymorphism)."""
    if not 0 <= index < arity:
        raise ValueError("projection index out of range")
    return Operation.from_function(
        f"proj{index}of{arity}", arity, lambda *bits: bits[index]
    )


def is_polymorphism(
    operation: Operation, relation: BooleanRelation
) -> bool:
    """Whether the relation is closed under the operation.

    ``f`` is a polymorphism of ``R`` when applying ``f`` componentwise to
    any ``arity(f)`` tuples of ``R`` lands back in ``R``.
    """
    rows = tuple(relation.tuples)
    return all(
        operation.apply_to_tuples(choice) in relation.tuples
        for choice in product(rows, repeat=operation.arity)
    )


def polymorphisms(
    relations: Iterable[BooleanRelation], arity: int
) -> Iterator[Operation]:
    """Enumerate every operation of the given arity preserving all
    ``relations``.

    Exponential in 2^arity (there are 2^{2^arity} candidate tables);
    intended for arity ≤ 3, which covers the whole Schaefer story.
    """
    relations = list(relations)
    table_size = 2**arity
    for code in range(2**table_size):
        table = tuple((code >> i) & 1 for i in range(table_size))
        operation = Operation(f"op{code}", arity, table)
        if all(is_polymorphism(operation, r) for r in relations):
            yield operation


def schaefer_classes_from_polymorphisms(
    relation: BooleanRelation,
) -> SchaeferClass:
    """Derive the Schaefer classification from witnessing polymorphisms.

    An independent route to Theorem 3.1's recognizer: check the six
    witnessing operations instead of the bespoke closure code.  The test
    suite asserts this always agrees with
    :func:`repro.boolean.schaefer.classify_relation`.

    Note the constant operations witness 0/1-validity only on non-empty
    relations (the empty relation is closed under everything but contains
    no constant tuple), matching Schaefer's definition via membership of
    the constant tuples.
    """
    result = SchaeferClass.NONE
    if relation.tuples and is_polymorphism(CONSTANT_0, relation):
        result |= SchaeferClass.ZERO_VALID
    if relation.tuples and is_polymorphism(CONSTANT_1, relation):
        result |= SchaeferClass.ONE_VALID
    if is_polymorphism(AND, relation):
        result |= SchaeferClass.HORN
    if is_polymorphism(OR, relation):
        result |= SchaeferClass.DUAL_HORN
    if is_polymorphism(MAJORITY, relation):
        result |= SchaeferClass.BIJUNCTIVE
    if is_polymorphism(MINORITY, relation):
        result |= SchaeferClass.AFFINE
    return result
