"""Boolean constraint satisfaction (Section 3 of the paper).

Schaefer classification (Theorem 3.1), defining formulas (Theorem 3.2),
the uniform formula-building solver (Theorem 3.3), the direct quadratic
solvers (Theorem 3.4), and Booleanization (Lemma 3.5).
"""

from repro.boolean.booleanize import Booleanization, booleanize, code_bits
from repro.boolean.direct import (
    solve_bijunctive_csp,
    solve_dual_horn_csp,
    solve_horn_csp,
)
from repro.boolean.formulas import (
    LinearEquation,
    affine_defining_formula,
    bijunctive_defining_formula,
    clauses_define,
    dual_horn_defining_formula,
    equations_define,
    horn_defining_formula,
)
from repro.boolean.polymorphisms import (
    AND,
    CONSTANT_0,
    CONSTANT_1,
    MAJORITY,
    MINORITY,
    OR,
    Operation,
    is_polymorphism,
    polymorphisms,
    projection,
    schaefer_classes_from_polymorphisms,
)
from repro.boolean.relations import (
    BooleanRelation,
    boolean_relations_of,
    tuple_and,
    tuple_majority,
    tuple_or,
    tuple_xor3,
)
from repro.boolean.schaefer import (
    NONTRIVIAL_CLASSES,
    TRIVIAL_CLASSES,
    SchaeferClass,
    classify_relation,
    classify_structure,
    is_schaefer,
    nontrivial_classes,
)
from repro.boolean.uniform import (
    build_instance_formula,
    pick_class,
    solve_schaefer_csp,
)

__all__ = [
    "BooleanRelation",
    "boolean_relations_of",
    "tuple_and",
    "tuple_or",
    "tuple_majority",
    "tuple_xor3",
    "SchaeferClass",
    "classify_relation",
    "classify_structure",
    "is_schaefer",
    "nontrivial_classes",
    "TRIVIAL_CLASSES",
    "NONTRIVIAL_CLASSES",
    "LinearEquation",
    "horn_defining_formula",
    "dual_horn_defining_formula",
    "bijunctive_defining_formula",
    "affine_defining_formula",
    "clauses_define",
    "equations_define",
    "solve_schaefer_csp",
    "build_instance_formula",
    "pick_class",
    "solve_horn_csp",
    "solve_dual_horn_csp",
    "solve_bijunctive_csp",
    "Booleanization",
    "booleanize",
    "code_bits",
    "Operation",
    "is_polymorphism",
    "polymorphisms",
    "projection",
    "schaefer_classes_from_polymorphisms",
    "CONSTANT_0",
    "CONSTANT_1",
    "AND",
    "OR",
    "MAJORITY",
    "MINORITY",
]
