"""Direct uniform algorithms that skip formula building (Theorem 3.4).

Theorem 3.3's route through defining formulas costs cubic time for the
Horn, dual-Horn, and bijunctive cases because the formulas themselves can
be quadratic in the size of B.  Theorem 3.4 removes the formula-building
stage and works on the structures directly, achieving O(‖A‖·‖B‖):

* **Horn** (:func:`solve_horn_csp`) — maintain a set ``One`` of elements of
  A that *must* map to 1.  A tuple ``t`` of a relation ``Q`` of A with
  ones-positions ``One(t)`` forces position ``j`` whenever the target
  relation ``Q′`` satisfies the implication ``One(t) → j``.  When ``One``
  stabilizes, a homomorphism exists iff every tuple ``t`` has a witness
  ``t′ ∈ Q′`` with ``One(t) ⊆ One(t′)``; the homomorphism maps ``One`` to 1
  and everything else to 0.  The element-occurrence index makes each
  element's additions touch each target tuple O(arity) times, matching the
  paper's O(‖A‖·‖B‖) bound.
* **dual Horn** (:func:`solve_dual_horn_csp`) — by bit-flip duality.
* **bijunctive** (:func:`solve_bijunctive_csp`) — the [LP97] 2-SAT phase
  algorithm emulated on the structures: guess a value for an unassigned
  element and propagate through the *implied* binary clauses, reading them
  off B on the fly (``T_{Q′,m,i}`` in the paper's notation) instead of
  materializing them.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.boolean.relations import boolean_relations_of
from repro.exceptions import NotSchaeferError, VocabularyError
from repro.structures.structure import Structure

__all__ = [
    "solve_horn_csp",
    "solve_dual_horn_csp",
    "solve_bijunctive_csp",
]

Element = Hashable


def _validate(source: Structure, target: Structure) -> None:
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")


def _normalize_boolean(target: Structure) -> Structure:
    """View the target as a structure with universe exactly {0, 1}.

    The paper defines a Boolean structure as one whose universe *is*
    {0, 1}; normalizing lets the solvers return {0, 1}-valued maps even
    when the given target happens to mention only one of the two values.
    """
    return Structure(
        target.vocabulary,
        {0, 1},
        {symbol.name: rel for symbol, rel in target.relations()},
    )


def solve_horn_csp(
    source: Structure, target: Structure
) -> dict[Element, int] | None:
    """Theorem 3.4, Horn case: O(‖A‖·‖B‖) homomorphism search.

    ``target`` must be a Horn Boolean structure (every relation closed
    under componentwise AND); :class:`NotSchaeferError` otherwise.
    """
    _validate(source, target)
    relations_b = boolean_relations_of(_normalize_boolean(target))
    if not all(rel.is_horn for rel in relations_b.values()):
        raise NotSchaeferError("target structure is not Horn")

    facts = list(source.facts())
    # ones[f] = positions of fact index f currently known to map to 1.
    ones: list[set[int]] = [set() for _ in facts]
    occurrences: dict[Element, list[tuple[int, int]]] = {}
    for index, (_name, fact) in enumerate(facts):
        for position, element in enumerate(fact):
            occurrences.setdefault(element, []).append((index, position))

    one: set[Element] = set()
    queue: deque[Element] = deque()

    def force(element: Element) -> None:
        if element not in one:
            one.add(element)
            queue.append(element)

    def scan(index: int) -> None:
        """Re-derive forced positions of fact ``index`` from its ones-set."""
        name, fact = facts[index]
        relation = relations_b[name]
        body = ones[index]
        meet = relation.meet_above(frozenset(body))
        if meet is None:
            # No target tuple lies above the body: every implication
            # body → j holds vacuously, so all positions are forced (and
            # the final witness check will fail, correctly).
            for position in range(len(fact)):
                if position not in body:
                    force(fact[position])
            return
        for position, bit in enumerate(meet):
            if bit == 1 and position not in body:
                force(fact[position])

    # Initial pass with empty bodies (fires unconditional implications).
    for index in range(len(facts)):
        scan(index)
    while queue:
        element = queue.popleft()
        for index, position in occurrences.get(element, ()):
            if position in ones[index]:
                continue
            ones[index].add(position)
            scan(index)

    # Witness check: every fact needs a target tuple above its ones-set.
    for index, (name, fact) in enumerate(facts):
        if relations_b[name].meet_above(frozenset(ones[index])) is None:
            return None
    return {
        element: 1 if element in one else 0 for element in source.universe
    }


def solve_dual_horn_csp(
    source: Structure, target: Structure
) -> dict[Element, int] | None:
    """Theorem 3.4, dual-Horn case, via the bit-flip duality.

    ``h`` is a homomorphism into ``B`` iff ``1−h`` is one into the
    bit-flipped structure, which is Horn exactly when ``B`` is dual Horn.
    """
    _validate(source, target)
    relations_b = boolean_relations_of(_normalize_boolean(target))
    if not all(rel.is_dual_horn for rel in relations_b.values()):
        raise NotSchaeferError("target structure is not dual Horn")
    flipped = Structure(
        target.vocabulary,
        {0, 1},
        {
            name: {tuple(1 - b for b in t) for t in rel.tuples}
            for name, rel in relations_b.items()
        },
    )
    hom = solve_horn_csp(source, flipped)
    if hom is None:
        return None
    return {element: 1 - value for element, value in hom.items()}


def solve_bijunctive_csp(
    source: Structure, target: Structure
) -> dict[Element, int] | None:
    """Theorem 3.4, bijunctive case: phase propagation on the structures.

    Emulates the linear-time 2-SAT algorithm of [LP97] without building the
    2-CNF: when element ``a`` (at position ``m`` of a fact of relation
    ``Q``) is assigned ``i``, the compatible target tuples are
    ``T_{Q′,m,i} = {t′ ∈ Q′ : t′_m = i}``; if they all agree on position
    ``l`` the element at ``l`` is forced.  Conflicts undo the phase and
    retry the opposite guess; two failures mean no homomorphism.
    """
    _validate(source, target)
    relations_b = boolean_relations_of(_normalize_boolean(target))
    if not all(rel.is_bijunctive for rel in relations_b.values()):
        raise NotSchaeferError("target structure is not bijunctive")

    facts = list(source.facts())
    occurrences: dict[Element, list[tuple[int, int]]] = {}
    for index, (_name, fact) in enumerate(facts):
        for position, element in enumerate(fact):
            occurrences.setdefault(element, []).append((index, position))

    assignment: dict[Element, int] = {}

    def propagate(start: Element, value: int, trail: list[Element]) -> bool:
        """Assign and cascade; returns False on conflict."""
        pending: deque[tuple[Element, int]] = deque([(start, value)])
        while pending:
            element, bit = pending.popleft()
            if element in assignment:
                if assignment[element] != bit:
                    return False
                continue
            assignment[element] = bit
            trail.append(element)
            for index, position in occurrences.get(element, ()):
                name, fact = facts[index]
                compatible = [
                    t
                    for t in relations_b[name].tuples
                    if t[position] == bit
                ]
                if not compatible:
                    return False
                for other_position, other in enumerate(fact):
                    values = {t[other_position] for t in compatible}
                    if len(values) == 1:
                        pending.append((other, values.pop()))
        return True

    # Mandatory pre-phase: positions whose target column is constant.  A
    # unary implied clause has no alternative guess, so conflicts here are
    # final.
    trail: list[Element] = []
    for index, (name, fact) in enumerate(facts):
        relation = relations_b[name]
        if not relation.tuples:
            return None
        for position, element in enumerate(fact):
            column = {t[position] for t in relation.tuples}
            if len(column) == 1:
                if not propagate(element, column.pop(), trail):
                    return None

    # Phases: guess each remaining element, retrying the opposite value on
    # conflict.
    for element in source.sorted_universe:
        if element in assignment:
            continue
        committed = False
        for guess in (0, 1):
            trail = []
            if propagate(element, guess, trail):
                committed = True
                break
            for assigned in trail:
                del assignment[assigned]
        if not committed:
            return None

    hom = {
        element: assignment.get(element, 0) for element in source.universe
    }
    # The 2-SAT theory guarantees this is a homomorphism; the O(‖A‖) check
    # below turns any latent implementation bug into a loud failure.
    for name, fact in facts:
        if tuple(hom[e] for e in fact) not in relations_b[name].tuples:
            raise AssertionError(
                "bijunctive propagation produced a non-homomorphism; "
                "this is a bug"
            )
    return hom
