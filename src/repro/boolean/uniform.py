"""The uniform Schaefer-CSP algorithm via formula building (Theorem 3.3).

Given structures ``A`` and ``B`` with ``B`` in Schaefer's class SC, decide
whether ``A → B`` in polynomial time:

1. classify ``B`` (Theorem 3.1);
2. if ``B`` is trivially 0-valid (resp. 1-valid), the constant-0 (resp. 1)
   map is a homomorphism;
3. otherwise construct the defining formula δ_{Q′} of each relation of B
   (Theorem 3.2), instantiate it on every tuple of the corresponding
   relation of A — elements of A act as propositional variables — and
   solve the resulting conjunction φ_A with the matching satisfiability
   algorithm (Horn-SAT, dual-Horn-SAT, 2-SAT, or GF(2) elimination).

The satisfying assignment *is* the homomorphism: h(a) = τ(a).

This is the paper's "cubic" algorithm; the direct quadratic algorithms that
skip formula building (Theorem 3.4) live in :mod:`repro.boolean.direct` and
are benchmarked against this one in experiment E3/E4.
"""

from __future__ import annotations

from typing import Hashable

from repro.boolean.formulas import (
    affine_defining_formula,
    bijunctive_defining_formula,
    dual_horn_defining_formula,
    horn_defining_formula,
)
from repro.boolean.relations import boolean_relations_of
from repro.boolean.schaefer import (
    SchaeferClass,
    classify_structure,
)
from repro.exceptions import NotSchaeferError, VocabularyError
from repro.sat.affine import LinearSystemGF2, solve_gf2
from repro.sat.cnf import CNF, Clause
from repro.sat.horn import solve_dual_horn, solve_horn
from repro.sat.two_sat import solve_2sat
from repro.structures.structure import Structure

__all__ = ["solve_schaefer_csp", "build_instance_formula", "pick_class"]

Element = Hashable

# Preference order used when B belongs to several nontrivial classes; any
# choice is correct, this one favours the cheapest satisfiability routine.
_CLASS_ORDER = (
    SchaeferClass.HORN,
    SchaeferClass.DUAL_HORN,
    SchaeferClass.BIJUNCTIVE,
    SchaeferClass.AFFINE,
)


def pick_class(classes: SchaeferClass) -> SchaeferClass:
    """Choose one concrete class out of a classification result.

    Trivial classes win outright (a constant map is a homomorphism for any
    left-hand side); otherwise the first nontrivial class in preference
    order is picked.  Raises :class:`NotSchaeferError` on NONE.
    """
    if classes & SchaeferClass.ZERO_VALID:
        return SchaeferClass.ZERO_VALID
    if classes & SchaeferClass.ONE_VALID:
        return SchaeferClass.ONE_VALID
    for candidate in _CLASS_ORDER:
        if classes & candidate:
            return candidate
    raise NotSchaeferError("structure is outside Schaefer's class SC")


def build_instance_formula(
    source: Structure,
    target: Structure,
    schaefer_class: SchaeferClass,
) -> tuple[CNF | LinearSystemGF2, dict[Element, int]]:
    """Construct φ_A: the instantiated defining formulas of Theorem 3.3.

    Returns the formula (a CNF, or a GF(2) system for the affine case)
    together with the variable numbering ``{element of A: variable}``
    (1-based for CNF, 0-based for the linear system).
    """
    relations_b = boolean_relations_of(target)
    elements = source.sorted_universe
    if schaefer_class is SchaeferClass.AFFINE:
        var_of = {element: i for i, element in enumerate(elements)}
        system = LinearSystemGF2(len(elements))
        for symbol, rel in source.relations():
            equations = affine_defining_formula(relations_b[symbol.name])
            for fact in rel:
                for equation in equations:
                    system.add_equation(
                        (var_of[fact[i]] for i in equation.positions),
                        equation.rhs,
                    )
        return system, var_of

    if schaefer_class is SchaeferClass.HORN:
        build = horn_defining_formula
    elif schaefer_class is SchaeferClass.DUAL_HORN:
        build = dual_horn_defining_formula
    elif schaefer_class is SchaeferClass.BIJUNCTIVE:
        build = bijunctive_defining_formula
    else:
        raise NotSchaeferError(
            f"no formula construction for class {schaefer_class!r}"
        )
    var_of = {element: i + 1 for i, element in enumerate(elements)}
    formula = CNF(num_vars=len(elements))
    for symbol, rel in source.relations():
        clauses: list[Clause] = build(relations_b[symbol.name])
        for fact in rel:
            for clause in clauses:
                formula.add_clause(
                    (1 if lit > 0 else -1) * var_of[fact[abs(lit) - 1]]
                    for lit in clause
                )
    return formula, var_of


def solve_schaefer_csp(
    source: Structure, target: Structure
) -> dict[Element, int] | None:
    """Decide ``A → B`` for a Schaefer target, returning a homomorphism.

    Implements Theorem 3.3 end to end; raises :class:`NotSchaeferError`
    when ``target`` is not a Schaefer structure and
    :class:`VocabularyError` on vocabulary mismatch.  Returns ``None``
    when no homomorphism exists.
    """
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")
    classes = classify_structure(target)
    chosen = pick_class(classes)

    if chosen is SchaeferClass.ZERO_VALID:
        return {element: 0 for element in source.universe}
    if chosen is SchaeferClass.ONE_VALID:
        return {element: 1 for element in source.universe}

    formula, var_of = build_instance_formula(source, target, chosen)
    if chosen is SchaeferClass.AFFINE:
        assert isinstance(formula, LinearSystemGF2)
        solution = solve_gf2(formula)
        if solution is None:
            return None
        return {element: solution[var] for element, var in var_of.items()}

    assert isinstance(formula, CNF)
    if chosen is SchaeferClass.HORN:
        model = solve_horn(formula)
    elif chosen is SchaeferClass.DUAL_HORN:
        model = solve_dual_horn(formula)
    else:
        model = solve_2sat(formula)
    if model is None:
        return None
    return {element: int(model[var]) for element, var in var_of.items()}
