"""``python -m repro.edge`` — run one edge process until SIGTERM.

Example::

    python -m repro.edge --port 8080 --shards 4 --store /var/lib/repro

The process prints one JSON line (``{"listening": ...}``) once the
listening socket is bound and every shard has warmed.  SIGTERM (or
Ctrl-C) drains: new work is answered 503 + Retry-After while in-flight
requests complete, each shard's service drains and flushes its store
partition, and only then does the process exit.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.edge.server import EdgeConfig, serve_forever


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.edge",
        description="Serve solve/containment/datalog over HTTP, sharded "
        "by instance fingerprint across worker processes.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="SolveService worker processes"
    )
    parser.add_argument(
        "--store",
        default=None,
        help="shared artifact-store root; each shard warms from its own "
        "<store>/shard-<i> partition",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="per-shard in-flight window before 429",
    )
    parser.add_argument(
        "--max-open",
        type=int,
        default=256,
        help="edge-global open-request ceiling before 429",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="grace period for in-flight work on SIGTERM",
    )
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    config = EdgeConfig(
        host=args.host,
        port=args.port,
        num_shards=args.shards,
        store_path=args.store,
        queue_limit=args.queue_limit,
        max_open_requests=args.max_open,
        drain_timeout=args.drain_timeout,
    )
    asyncio.run(serve_forever(config))


if __name__ == "__main__":
    main()
