"""The network edge: HTTP/JSON + binary batch in front of sharded services.

``repro.edge`` turns the in-process :class:`~repro.service.SolveService`
into an actual service (ROADMAP item 1): an asyncio HTTP/1.1 front end
(:mod:`~repro.edge.server`) routes requests by instance fingerprint
across N service worker processes (:mod:`~repro.edge.router`), each
owning its shard of the cache keyspace and warming from its partition
of a shared artifact store.  Same fingerprint → same shard, so the
in-flight coalescing of PR 3 holds fleet-wide.  The wire protocol lives
in :mod:`~repro.edge.protocol`, the framing in :mod:`~repro.edge.http`,
and :class:`~repro.edge.client.EdgeClient` is the reference consumer.

Run one with ``python -m repro.edge`` (SIGTERM drains gracefully).
"""

from repro.edge.client import EdgeClient
from repro.edge.protocol import ERROR_STATUS
from repro.edge.router import RouterConfig, ShardRouter, shard_for
from repro.edge.server import BATCH_CONTENT_TYPE, EdgeConfig, EdgeServer

__all__ = [
    "BATCH_CONTENT_TYPE",
    "ERROR_STATUS",
    "EdgeClient",
    "EdgeConfig",
    "EdgeServer",
    "RouterConfig",
    "ShardRouter",
    "shard_for",
]
