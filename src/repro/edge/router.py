"""The fingerprint-sharded router: N ``SolveService`` worker processes.

The edge partitions traffic by instance fingerprint across ``N`` shard
processes, each running one :class:`~repro.service.SolveService` that
owns its shard of the structure-cache keyspace and warms from its own
partition of a shared artifact-store directory (``<root>/shard-<i>`` —
partitioned because the store is single-writer, and partitioning keeps
every warm artifact owned by exactly the process that will be asked for
it again).  The routing rule is the cache's own:

    ``shard = int(fingerprint[:8], 16) % num_shards``

— the same function :class:`repro.service.cache.ShardedStructureCache`
uses internally, so "same fingerprint → same shard" holds fleet-wide and
the per-process in-flight coalescing of PR 3 becomes fleet-wide
coalescing for free.

Supervision mirrors :mod:`repro.service.supervision`: a reader thread
per shard turns pipe EOF into a crash signal on the event loop, in-flight
requests fail with a typed :class:`~repro.exceptions.ShardCrashedError`
(retried within the router's budget), and a single-flight respawn with
exponential backoff brings the shard back *warm* — the replacement
process re-opens the dead shard's store partition, whose per-record
flushes survive SIGKILL, and seeds its caches before answering.

IPC is deliberately boring: a duplex pipe per shard carrying
``(request_id, op, payload)`` down and ``(request_id, ok, result)`` up,
with errors crossing as ``(class_name, message)`` pairs — exception
*instances* are never pickled across the boundary (a crashed shard
can't be trusted to produce picklable ones).  Spawn context, not fork:
the edge process runs an event loop and reader threads, and forking a
threaded process is how you inherit locks in undefined states.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import multiprocessing
import multiprocessing.connection
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import (
    ReproError,
    ServiceOverloadedError,
    ShardCrashedError,
)
from repro.structures.fingerprint import instance_fingerprint
from repro.edge.protocol import rebuild_error

logger = logging.getLogger("repro.edge.router")

__all__ = ["RouterConfig", "ShardRouter", "shard_for", "shard_main"]


def shard_for(fingerprint: str, num_shards: int) -> int:
    """The routing rule — identical to ``ShardedStructureCache``'s."""
    return int(fingerprint[:8], 16) % num_shards


def containment_fingerprint(q1_text: str, q2_text: str) -> str:
    """The routing fingerprint for a containment pair.

    Hashes the *rule texts* — cheap enough for the edge process, and
    textually identical pairs (the coalescing case worth routing for)
    land on the same shard.  Semantically equivalent but differently
    written pairs may route to different shards; each still computes an
    exact answer, so this costs a cache hit, never correctness.
    """
    digest = hashlib.sha256()
    digest.update(q1_text.encode())
    digest.update(b"\x00\xe2\x8a\x86\x00")  # a ⊆ separator no rule text contains
    digest.update(q2_text.encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs of a :class:`ShardRouter`.

    ``queue_limit`` bounds each shard's *edge-side* in-flight window —
    requests sent down the pipe and not yet answered; beyond it the
    router raises :class:`ServiceOverloadedError` synchronously (the
    server answers 429 + Retry-After).  The shard's own
    ``SolveService`` admission control (``max_pending``) backstops it.
    ``retry_budget`` is the number of additional attempts a request gets
    after its shard crashes under it.  ``service_options`` passes
    through to each shard's :class:`~repro.service.ServiceConfig`
    (``plan=True`` unless overridden); ``store_path`` is the *shared
    root* — each shard derives its own partition.
    """

    num_shards: int = 2
    store_path: str | None = None
    queue_limit: int = 64
    retry_budget: int = 1
    spawn_timeout: float = 60.0
    respawn_backoff: float = 0.05
    respawn_backoff_cap: float = 2.0
    service_options: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# The shard process
# ---------------------------------------------------------------------------


def shard_main(index: int, conn, options: dict[str, Any]) -> None:
    """Entry point of one shard process (spawn target)."""
    logging.basicConfig(level=logging.WARNING)
    try:
        asyncio.run(_shard_serve(index, conn, options))
    except (KeyboardInterrupt, BrokenPipeError, EOFError):
        pass
    finally:
        conn.close()


async def _shard_serve(index: int, conn, options: dict[str, Any]) -> None:
    from repro.obs.metrics import KERNEL_COUNTERS, default_registry
    from repro.service import ServiceConfig, SolveService

    config = ServiceConfig(
        # One process per shard is the scaling unit; a nested process
        # pool per shard would oversubscribe the machine.
        process_workers=0,
        plan=bool(options.get("plan", True)),
        thread_workers=int(options.get("thread_workers", 2)),
        max_pending=int(options.get("max_pending", 256)),
        store_path=options.get("store_path"),
        store_warm=bool(options.get("store_warm", True)),
        retry_budget=int(options.get("retry_budget", 2)),
        drain_timeout=float(options.get("drain_timeout", 30.0)),
    )
    service = SolveService(config)
    await service.start()

    loop = asyncio.get_running_loop()
    send_lock = threading.Lock()
    send_pool = ThreadPoolExecutor(
        max_workers=1, thread_name_prefix=f"shard-{index}-send"
    )

    def _send(message: tuple) -> None:
        with send_lock:
            conn.send(message)

    async def reply(request_id, ok: bool, result) -> None:
        try:
            await loop.run_in_executor(send_pool, _send, (request_id, ok, result))
        except (BrokenPipeError, OSError):
            pass  # the edge died; the drain path below will notice EOF

    registry = default_registry()

    def _stats_payload() -> dict[str, Any]:
        return {
            "index": index,
            "pid": os.getpid(),
            "service": service.stats.snapshot(),
            "kernel": {
                key: registry.counter(family, help).value()
                for key, (family, help) in KERNEL_COUNTERS.items()
            },
        }

    async def handle(request_id, op: str, payload: dict[str, Any]) -> None:
        try:
            if op == "ping":
                await reply(request_id, True, {"pid": os.getpid()})
                return
            if op == "stats":
                await reply(request_id, True, _stats_payload())
                return
            result = await _execute(service, op, payload)
            await reply(request_id, True, result)
        except ReproError as exc:
            await reply(request_id, False, (type(exc).__name__, str(exc)))
        except Exception as exc:  # noqa: BLE001 — never let a request kill the shard
            logger.exception("shard %d: unexpected error in %s", index, op)
            await reply(
                request_id, False, ("ReproError", f"shard error: {exc!r}")
            )

    pending: set[asyncio.Task] = set()
    draining = False
    while not draining:
        try:
            message = await loop.run_in_executor(None, conn.recv)
        except (EOFError, OSError):
            break  # the edge process died; shut down quietly
        request_id, op, payload = message
        if op == "drain":
            draining = True
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            clean = await service.drain(payload.get("timeout"))
            await reply(request_id, True, {"clean": clean})
            break
        task = asyncio.ensure_future(handle(request_id, op, payload))
        pending.add(task)
        task.add_done_callback(pending.discard)

    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    if not draining:
        await service.drain(0.0)
    send_pool.shutdown(wait=True)


async def _execute(service, op: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Run one solve-family op on this shard's service.

    Coalescing is observed race-free: ``submit`` attaches coalesced
    waiters (and bumps ``stats.coalesce_hits``) synchronously on the
    loop thread, so a before/after read brackets exactly this request.
    """
    timeout = payload.get("timeout")
    kwargs = {} if timeout is None else {"timeout": timeout}
    before = service.stats.coalesce_hits
    if op == "solve":
        waiter = service.submit(payload["source"], payload["target"], **kwargs)
    elif op == "containment":
        from repro.cq.parser import parse_query

        q1 = parse_query(payload["q1"])
        q2 = parse_query(payload["q2"])
        waiter = service.submit_containment(q1, q2, **kwargs)
    elif op == "datalog":
        waiter = service.submit_datalog(
            payload["source"], payload["target"], k=payload["k"], **kwargs
        )
    else:
        raise ReproError(f"unknown shard op: {op!r}")
    coalesced = service.stats.coalesce_hits > before
    solution = await waiter
    return {
        "verdict": solution.exists,
        "witness": solution.homomorphism,
        "strategy": solution.strategy,
        "route": op,
        "coalesced": coalesced,
    }


# ---------------------------------------------------------------------------
# The edge side
# ---------------------------------------------------------------------------


class _ShardHandle:
    """One shard process as seen from the edge event loop.

    Owns the process, its pipe, a reader thread (blocking ``recv`` off
    the loop; EOF is the crash signal), and a single-thread send
    executor (``Connection.send`` can block on a full pipe — never on
    the event loop).  Respawn is single-flight behind ``_respawn_lock``
    with exponential backoff, and every pipe message carries through a
    generation check so a stale reader thread from a dead process can
    never touch the replacement's in-flight table.
    """

    def __init__(
        self,
        index: int,
        config: RouterConfig,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.index = index
        self.config = config
        self.loop = loop
        self.generation = 0
        self.crashes = 0
        self.process: multiprocessing.Process | None = None
        self.conn = None
        self.pid: int | None = None
        self._inflight: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._alive = asyncio.Event()
        self._respawn_lock = asyncio.Lock()
        self._respawn_streak = 0
        self._closing = False
        self._send_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"edge-shard-{index}-send"
        )
        options = dict(config.service_options)
        if config.store_path is not None:
            options["store_path"] = os.path.join(
                config.store_path, f"shard-{index}"
            )
        self._options = options

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        await self._spawn()

    async def _spawn(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=shard_main,
            args=(self.index, child_conn, self._options),
            name=f"repro-edge-shard-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.generation += 1
        self.process = process
        self.conn = parent_conn
        self.pid = process.pid
        threading.Thread(
            target=self._read_loop,
            args=(parent_conn, self.generation),
            name=f"edge-shard-{self.index}-reader",
            daemon=True,
        ).start()
        # The first ping doubles as the readiness barrier: the shard
        # answers only once its service has started (and warmed).
        pong = await asyncio.wait_for(
            self._call_raw("ping", {}), self.config.spawn_timeout
        )
        self.pid = pong["pid"]
        self._respawn_streak = 0
        self._alive.set()

    def _read_loop(self, conn, generation: int) -> None:
        try:
            while True:
                message = conn.recv()
                self.loop.call_soon_threadsafe(
                    self._deliver, generation, message
                )
        except (EOFError, OSError):
            pass
        self.loop.call_soon_threadsafe(self._on_disconnect, generation)

    def _deliver(self, generation: int, message: tuple) -> None:
        if generation != self.generation:
            return
        request_id, ok, result = message
        future = self._inflight.pop(request_id, None)
        if future is None or future.done():
            return
        if ok:
            future.set_result(result)
        else:
            name, text = result
            future.set_exception(rebuild_error(name, text))

    def _on_disconnect(self, generation: int) -> None:
        if generation != self.generation:
            return
        self._alive.clear()
        inflight, self._inflight = self._inflight, {}
        for future in inflight.values():
            if not future.done():
                future.set_exception(
                    ShardCrashedError(
                        f"shard {self.index} (pid {self.pid}) died with "
                        f"{len(inflight)} request(s) in flight"
                    )
                )
        if self._closing:
            return
        self.crashes += 1
        logger.warning(
            "shard %d (pid %s) died; respawning warm", self.index, self.pid
        )
        self.loop.create_task(self._respawn())

    async def _respawn(self) -> None:
        async with self._respawn_lock:
            if self._alive.is_set() or self._closing:
                return  # another task already brought the shard back
            self._respawn_streak += 1
            backoff = min(
                self.config.respawn_backoff * 2 ** (self._respawn_streak - 1),
                self.config.respawn_backoff_cap,
            )
            await asyncio.sleep(backoff)
            if self._closing:
                return
            try:
                await self._spawn()
            except Exception:  # noqa: BLE001 — keep trying; shard stays down meanwhile
                logger.exception("shard %d respawn failed", self.index)
                if not self._closing:
                    self.loop.create_task(self._respawn())

    async def close(self, timeout: float) -> bool:
        """Drain the shard's service and let its process exit."""
        self._closing = True
        clean = True
        if self._alive.is_set():
            try:
                result = await asyncio.wait_for(
                    self._call_raw("drain", {"timeout": timeout}),
                    timeout + self.config.spawn_timeout,
                )
                clean = bool(result.get("clean", False))
            except (ShardCrashedError, asyncio.TimeoutError):
                clean = False
        process = self.process
        if process is not None:
            await self.loop.run_in_executor(None, process.join, 10.0)
            if process.is_alive():
                process.kill()
                clean = False
        self._send_pool.shutdown(wait=False)
        return clean

    # -- requests ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive.is_set()

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def admit(self) -> None:
        """Synchronous admission: bounded edge-side in-flight window."""
        if len(self._inflight) >= self.config.queue_limit:
            raise ServiceOverloadedError(
                f"shard {self.index} has {len(self._inflight)} requests "
                f"in flight (limit {self.config.queue_limit})"
            )

    async def _call_raw(self, op: str, payload: dict[str, Any]):
        """Send one op and await its reply (no admission, no retry)."""
        request_id = self._next_id
        self._next_id += 1
        future = self.loop.create_future()
        self._inflight[request_id] = future
        conn = self.conn
        try:
            await self.loop.run_in_executor(
                self._send_pool, conn.send, (request_id, op, payload)
            )
        except (BrokenPipeError, OSError):
            self._inflight.pop(request_id, None)
            raise ShardCrashedError(
                f"shard {self.index} pipe is broken"
            ) from None
        try:
            return await future
        finally:
            self._inflight.pop(request_id, None)

    async def call(self, op: str, payload: dict[str, Any]):
        self.admit()
        return await self._call_raw(op, payload)


class ShardRouter:
    """Routes requests to shards by fingerprint, with crash retries."""

    def __init__(
        self,
        config: RouterConfig | None = None,
        *,
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> None:
        self.config = config or RouterConfig()
        if self.config.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._loop = loop or asyncio.get_event_loop()
        self._handles = [
            _ShardHandle(index, self.config, self._loop)
            for index in range(self.config.num_shards)
        ]
        self._started = False

    async def start(self) -> "ShardRouter":
        if not self._started:
            await asyncio.gather(
                *(handle.start() for handle in self._handles)
            )
            self._started = True
        return self

    async def drain(self, timeout: float = 30.0) -> bool:
        """Drain every shard; ``True`` when no shard cut work short."""
        results = await asyncio.gather(
            *(handle.close(timeout) for handle in self._handles)
        )
        self._started = False
        return all(results)

    # -- routing -------------------------------------------------------------

    def shard_for(self, fingerprint: str) -> int:
        return shard_for(fingerprint, self.config.num_shards)

    async def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        fingerprint = instance_fingerprint(
            payload["source"], payload["target"]
        )
        return await self._request(self.shard_for(fingerprint), "solve", payload)

    async def containment(self, payload: dict[str, Any]) -> dict[str, Any]:
        fingerprint = containment_fingerprint(payload["q1"], payload["q2"])
        return await self._request(
            self.shard_for(fingerprint), "containment", payload
        )

    async def datalog(self, payload: dict[str, Any]) -> dict[str, Any]:
        fingerprint = instance_fingerprint(
            payload["source"], payload["target"]
        )
        return await self._request(
            self.shard_for(fingerprint), "datalog", payload
        )

    async def dispatch(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Route one batch item by its ``op`` field."""
        op = payload["op"]
        body = {k: v for k, v in payload.items() if k != "op"}
        if op == "solve":
            return await self.solve(body)
        if op == "containment":
            return await self.containment(body)
        return await self.datalog(body)

    async def _request(
        self, shard_index: int, op: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        handle = self._handles[shard_index]
        attempts = self.config.retry_budget + 1
        for attempt in range(attempts):
            if not handle.alive:
                # A dead shard sheds load instead of queueing blind: the
                # respawn takes ~a backoff; clients retry after it.
                if attempt == attempts - 1:
                    raise ShardCrashedError(
                        f"shard {shard_index} is down (respawning)"
                    )
                await self._await_respawn(handle)
                continue
            try:
                result = await handle.call(op, payload)
            except ShardCrashedError:
                if attempt == attempts - 1:
                    raise
                await self._await_respawn(handle)
                continue
            result["shard"] = shard_index
            return result
        raise AssertionError("unreachable")

    async def _await_respawn(self, handle: _ShardHandle) -> None:
        try:
            await asyncio.wait_for(
                handle._alive.wait(), self.config.spawn_timeout
            )
        except asyncio.TimeoutError:
            raise ShardCrashedError(
                f"shard {handle.index} did not respawn in time"
            ) from None

    # -- introspection -------------------------------------------------------

    def shard_states(self) -> list[dict[str, Any]]:
        """Cheap per-shard health (no pipe round-trip) for ``/v1/healthz``."""
        return [
            {
                "index": handle.index,
                "pid": handle.pid,
                "alive": handle.alive,
                "generation": handle.generation,
                "crashes": handle.crashes,
                "inflight": handle.inflight,
            }
            for handle in self._handles
        ]

    async def shard_stats(self) -> list[dict[str, Any]]:
        """Full per-shard stats (pipe round-trip to each live shard)."""
        async def one(handle: _ShardHandle):
            if not handle.alive:
                return {"index": handle.index, "alive": False}
            try:
                stats = await handle._call_raw("stats", {})
            except ShardCrashedError:
                return {"index": handle.index, "alive": False}
            stats["alive"] = True
            stats["generation"] = handle.generation
            return stats

        return list(
            await asyncio.gather(*(one(handle) for handle in self._handles))
        )
