"""Minimal HTTP/1.1 framing over asyncio streams — the edge's front door.

The edge speaks just enough HTTP/1.1 for its five endpoints: request
line + headers + ``Content-Length`` bodies in, status + headers + body
out, with keep-alive.  The framing layer is deliberately small and
strict — every way a peer can violate it maps to a *typed*
:class:`~repro.exceptions.EdgeProtocolError` carrying the 4xx status the
server answers with, so a malformed frame can never surface as an
unhandled exception (the conformance suite fuzzes exactly these paths):

==================================== ======
violation                            status
==================================== ======
garbage / overlong request line       400
malformed header line                 400
non-integer or negative length        400
body larger than ``max_body_bytes``   413
body bytes that never arrive          408
``Transfer-Encoding: chunked``        501
missing ``Content-Length`` on POST    411
==================================== ======

Responses are byte-deterministic on purpose: lowercase header names in a
fixed order (``server``, ``content-type``, ``content-length``, then any
extras, then ``connection``), no ``Date`` header, compact JSON bodies —
so the protocol conformance suite can pin golden request/response byte
pairs instead of parsing its own server's output.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.exceptions import EdgeProtocolError

__all__ = [
    "HttpRequest",
    "MAX_HEADER_BYTES",
    "MAX_REQUEST_LINE",
    "REASONS",
    "read_request",
    "response_bytes",
]

#: Upper bound on the request line; longer lines are refused with 400.
MAX_REQUEST_LINE = 8192
#: Upper bound on the header block as a whole.
MAX_HEADER_BYTES = 32768
#: Upper bound on the number of header lines.
MAX_HEADER_COUNT = 100

#: The reason phrases the edge emits (fixed — golden fixtures pin them).
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, body."""

    method: str
    path: str
    query: str
    headers: dict[str, str]
    body: bytes
    #: Set when the peer asked for ``Connection: close``.
    close: bool = field(default=False)

    def content_type(self) -> str:
        """The media type, parameters stripped, lowercased."""
        return self.headers.get("content-type", "").split(";")[0].strip().lower()


async def _read_line(
    reader: asyncio.StreamReader, limit: int, what: str
) -> bytes:
    """One CRLF (or bare-LF) terminated line, bounded by ``limit``."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.LimitOverrunError:
        raise EdgeProtocolError(400, f"{what} exceeds the line limit") from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise _PeerClosed() from None
        raise EdgeProtocolError(400, f"truncated {what}") from None
    if len(line) > limit:
        raise EdgeProtocolError(400, f"{what} exceeds {limit} bytes")
    return line.rstrip(b"\r\n")


class _PeerClosed(Exception):
    """The peer closed the connection cleanly between requests."""


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int,
    read_timeout: float | None = None,
) -> HttpRequest | None:
    """Parse one request; ``None`` when the peer closed between requests.

    ``read_timeout`` bounds each read *within* a request (a started
    request whose bytes stop arriving fails typed with 408, freeing the
    connection handler) — the wait for the *first* byte of the next
    keep-alive request is unbounded by design.

    Raises :class:`EdgeProtocolError` for every framing violation; the
    caller answers with the carried status and, for violations that
    leave the stream position unknowable, closes the connection.
    """
    try:
        request_line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    except _PeerClosed:
        return None
    if not request_line:
        # Tolerate one stray CRLF between keep-alive requests (RFC 9112).
        try:
            request_line = await _read_line(
                reader, MAX_REQUEST_LINE, "request line"
            )
        except _PeerClosed:
            return None
    try:
        return await asyncio.wait_for(
            _read_rest(reader, request_line, max_body_bytes), read_timeout
        )
    except asyncio.TimeoutError:
        raise EdgeProtocolError(
            408, "request was not completed in time"
        ) from None


async def _read_rest(
    reader: asyncio.StreamReader, request_line: bytes, max_body_bytes: int
) -> HttpRequest:
    try:
        text = request_line.decode("ascii")
    except UnicodeDecodeError:
        raise EdgeProtocolError(400, "request line is not ASCII") from None
    parts = text.split(" ")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        raise EdgeProtocolError(400, f"malformed request line: {text!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise EdgeProtocolError(400, f"unsupported protocol: {version!r}")
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await _read_line(reader, MAX_HEADER_BYTES, "header line")
        except _PeerClosed:
            raise EdgeProtocolError(400, "truncated header block") from None
        if not line:
            break
        total += len(line)
        if total > MAX_HEADER_BYTES or len(headers) >= MAX_HEADER_COUNT:
            raise EdgeProtocolError(400, "header block too large")
        name, sep, value = line.partition(b":")
        if not sep or not name.strip():
            raise EdgeProtocolError(
                400, f"malformed header line: {line[:80]!r}"
            )
        try:
            headers[name.decode("ascii").strip().lower()] = value.decode(
                "latin-1"
            ).strip()
        except UnicodeDecodeError:
            raise EdgeProtocolError(400, "header name is not ASCII") from None

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise EdgeProtocolError(501, "chunked transfer encoding not supported")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        if not raw_length.isdigit():
            raise EdgeProtocolError(
                400, f"invalid content-length: {raw_length!r}"
            )
        length = int(raw_length)
        if length > max_body_bytes:
            raise EdgeProtocolError(
                413, f"body of {length} bytes exceeds {max_body_bytes}"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise EdgeProtocolError(
                    400,
                    f"truncated body: got {len(exc.partial)} of "
                    f"{length} bytes",
                ) from None
    elif method in ("POST", "PUT", "PATCH"):
        raise EdgeProtocolError(411, f"{method} requires a content-length")

    close = headers.get("connection", "").strip().lower() == "close"
    return HttpRequest(
        method=method,
        path=path,
        query=query,
        headers=headers,
        body=body,
        close=close,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
    close: bool = False,
) -> bytes:
    """Serialize one deterministic response (see module docstring)."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "server: repro-edge",
        f"content-type: {content_type}",
        f"content-length: {len(body)}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    if close:
        lines.append("connection: close")
    head = "\r\n".join(lines).encode("ascii") + b"\r\n\r\n"
    return head + body
