"""A blocking stdlib client for the edge (``http.client`` underneath).

The reference consumer of the wire protocol: the parity suite, the
chaos suite, and the load benchmark all talk to the edge through this —
if the protocol drifts, the client drifts with it or a test fails.
Non-2xx responses re-raise the *typed* error named in the JSON
envelope (a 429 raises :class:`~repro.exceptions.ServiceOverloadedError`
on the client, exactly as it would have in-process), so code written
against :class:`~repro.service.SolveService` ports across the network
boundary without changing its ``except`` clauses.

One client wraps one keep-alive connection and is not thread-safe;
concurrent callers (the benchmark's closed-loop workers) hold one each.
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from repro.edge import protocol
from repro.edge.server import BATCH_CONTENT_TYPE
from repro.exceptions import EdgeProtocolError
from repro.structures.io import structure_to_dict
from repro.structures.structure import Structure

__all__ = ["EdgeClient"]


class EdgeClient:
    """Blocking calls against one edge server."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "EdgeClient":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- the JSON endpoints --------------------------------------------------

    def solve(
        self,
        source: Structure,
        target: Structure,
        *,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/solve``; returns the decoded response body."""
        body: dict[str, Any] = {
            "source": structure_to_dict(source),
            "target": structure_to_dict(target),
        }
        if timeout is not None:
            body["timeout"] = timeout
        return self._post_json("/v1/solve", body)

    def containment(
        self, q1: str, q2: str, *, timeout: float | None = None
    ) -> dict[str, Any]:
        """``POST /v1/containment`` with two rule texts (``Q1 ⊆ Q2``?)."""
        body: dict[str, Any] = {"q1": q1, "q2": q2}
        if timeout is not None:
            body["timeout"] = timeout
        return self._post_json("/v1/containment", body)

    def datalog(
        self,
        source: Structure,
        target: Structure,
        *,
        k: int = 2,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """``POST /v1/datalog`` (the Theorem 4.2 route)."""
        body: dict[str, Any] = {
            "source": structure_to_dict(source),
            "target": structure_to_dict(target),
            "k": k,
        }
        if timeout is not None:
            body["timeout"] = timeout
        return self._post_json("/v1/datalog", body)

    def batch(self, items: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """``POST /v1/batch``: a list of op dicts, answered in order.

        Items carry real :class:`Structure` objects (``{"op": "solve",
        "source": s, "target": t}``; containment items carry ``q1``/
        ``q2`` rule texts, datalog items an extra ``k``).  Each response
        slot is either a result dict or an ``{"error": ...}`` dict.
        """
        status, headers, body = self.request(
            "POST",
            "/v1/batch",
            protocol.encode_frames(items),
            content_type=BATCH_CONTENT_TYPE,
        )
        if status != 200:
            self._raise_typed(status, body)
        return protocol.decode_frames(
            body, max_items=1 << 20, max_item_bytes=1 << 30
        )

    # -- the GET endpoints -----------------------------------------------

    def healthz(self) -> dict[str, Any]:
        status, _headers, body = self.request("GET", "/v1/healthz", None)
        if status != 200:
            self._raise_typed(status, body)
        return json.loads(body)

    def metrics(self) -> str:
        status, _headers, body = self.request("GET", "/v1/metrics", None)
        if status != 200:
            self._raise_typed(status, body)
        return body.decode()

    # -- plumbing ----------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None,
        *,
        content_type: str = "application/json",
    ) -> tuple[int, dict[str, str], bytes]:
        """One raw round-trip: ``(status, lowercase headers, body)``.

        Reconnects once on a stale keep-alive connection (the server may
        have closed it between requests — normal HTTP/1.1 behaviour).
        """
        headers = {}
        if body is not None:
            headers["Content-Type"] = content_type
        for attempt in (0, 1):
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                payload = response.read()
                break
            except (
                http.client.NotConnected,
                http.client.BadStatusLine,
                ConnectionResetError,
                BrokenPipeError,
            ):
                self._conn.close()
                if attempt:
                    raise
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            payload,
        )

    def _post_json(self, path: str, payload: dict[str, Any]) -> dict[str, Any]:
        status, _headers, body = self.request(
            "POST", path, protocol.dumps(payload)
        )
        if status != 200:
            self._raise_typed(status, body)
        return json.loads(body)

    def _raise_typed(self, status: int, body: bytes) -> None:
        """Re-raise the typed error carried in an error envelope."""
        try:
            envelope = json.loads(body)["error"]
            name, message = envelope["type"], envelope["message"]
        except (json.JSONDecodeError, KeyError, TypeError):
            raise EdgeProtocolError(
                status, f"unparseable error response: {body[:200]!r}"
            ) from None
        raise rebuilt_error(name, message, status)


def rebuilt_error(name: str, message: str, status: int):
    error = protocol.rebuild_error(name, message)
    if isinstance(error, EdgeProtocolError):
        error.status = status
    return error
