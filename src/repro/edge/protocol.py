"""The edge wire protocol: JSON schemas, error mapping, batch framing.

One module owns everything that crosses the network boundary, so the
server, the client, the docs table, and the conformance suite all read
the same definitions:

* **JSON requests** (:func:`decode_solve`, :func:`decode_containment`,
  :func:`decode_datalog`) — structures travel in the
  :func:`repro.structures.io.structure_to_dict` shape, queries as their
  parsable rule text.  Malformed bodies raise a typed
  :class:`~repro.exceptions.EdgeProtocolError` (400), never a bare
  ``KeyError``.
* **JSON responses** (:func:`encode_result`, :func:`error_body`) — byte
  deterministic: ``sort_keys`` + compact separators, and no wall-clock
  fields, so the conformance suite pins golden response bytes.
* **Error mapping** (:data:`ERROR_STATUS`, :func:`status_for`) — the PR 7
  error taxonomy folded onto HTTP statuses.  Exception *names* cross the
  shard pipe (exception objects may not pickle after a crash), so the
  table is keyed by class name and :func:`rebuild_error` re-raises the
  typed class on the edge side.
* **Binary batch framing** (:func:`encode_frames`, :func:`decode_frames`)
  — the ``/v1/batch`` endpoint's length-prefixed layout: a 4-byte magic
  (``REB1``), a ``u32`` item count, then per item a ``u32`` length and a
  pickle payload serialized at the *store's* pickle protocol
  (:data:`repro.persist.codec.PICKLE_PROTOCOL` — one serializer fleet
  wide, the same rule the artifact store pins).  Like the process-pool
  boundary it mirrors, the batch endpoint trusts its callers: it is a
  fleet-internal protocol, not an Internet-facing one.
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Any, Iterable

from repro.exceptions import (
    EdgeProtocolError,
    ParseError,
    ReproError,
)
from repro.persist.codec import PICKLE_PROTOCOL
from repro.structures.io import structure_from_dict, structure_to_dict
from repro.structures.structure import Structure

__all__ = [
    "BATCH_MAGIC",
    "ERROR_STATUS",
    "decode_containment",
    "decode_datalog",
    "decode_frames",
    "decode_solve",
    "dumps",
    "encode_frames",
    "encode_result",
    "error_body",
    "rebuild_error",
    "status_for",
]

BATCH_MAGIC = b"REB1"
_COUNT = struct.Struct("!I")
_LENGTH = struct.Struct("!I")

#: Exception class name → HTTP status.  The single source of truth for
#: the backpressure/error table in ``docs/architecture.md``; anything
#: absent here maps to 500 (a typed body is still emitted).
ERROR_STATUS: dict[str, int] = {
    # the request itself is bad — do not retry as-is
    "EdgeProtocolError": 400,
    "ParseError": 400,
    "VocabularyError": 400,
    "DatalogError": 400,
    "NotBooleanError": 400,
    "NotSchaeferError": 400,
    "DecompositionError": 400,
    # admission control refused — retry after backing off
    "ServiceOverloadedError": 429,
    # the service is winding down — retry against another edge
    "ServiceClosedError": 503,
    # a shard died under the request and the retry budget ran out
    "ShardCrashedError": 503,
    "WorkerCrashedError": 503,
    # the kernel refused a table its cost model says will not fit
    "ResourceBudgetError": 503,
    # the request's deadline elapsed inside the fleet
    "SolveTimeoutError": 504,
    # deterministic fault injection (chaos runs only)
    "FaultInjectedError": 500,
}

#: Statuses that should carry a ``retry-after`` header.
RETRYABLE_STATUSES = frozenset({429, 503})


def status_for(error_name: str) -> int:
    """The HTTP status for a typed error's class name (default 500)."""
    return ERROR_STATUS.get(error_name, 500)


def rebuild_error(error_name: str, message: str) -> ReproError:
    """Reconstruct a typed error from the (name, message) pipe form."""
    import repro.exceptions as exceptions

    cls = getattr(exceptions, error_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        if cls is EdgeProtocolError:
            return EdgeProtocolError(400, message)
        return cls(message)
    return ReproError(f"{error_name}: {message}")


def dumps(payload: dict) -> bytes:
    """Deterministic JSON bytes (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _loads(body: bytes) -> dict:
    try:
        data = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise EdgeProtocolError(400, f"invalid JSON body: {exc}") from None
    if not isinstance(data, dict):
        raise EdgeProtocolError(400, "request body must be a JSON object")
    return data


def _structure(data: dict, key: str) -> Structure:
    raw = data.get(key)
    if not isinstance(raw, dict):
        raise EdgeProtocolError(
            400, f"missing or non-object {key!r} structure"
        )
    try:
        return structure_from_dict(raw)
    except ParseError as exc:
        raise EdgeProtocolError(400, f"bad {key!r} structure: {exc}") from None


def _timeout(data: dict) -> float | None:
    raw = data.get("timeout")
    if raw is None:
        return None
    if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
        raise EdgeProtocolError(
            400, f"timeout must be a positive number, got {raw!r}"
        )
    return float(raw)


def decode_solve(body: bytes) -> dict[str, Any]:
    """``/v1/solve`` body → a router payload (source/target/timeout)."""
    data = _loads(body)
    return {
        "source": _structure(data, "source"),
        "target": _structure(data, "target"),
        "timeout": _timeout(data),
    }


def decode_containment(body: bytes) -> dict[str, Any]:
    """``/v1/containment`` body → a router payload (query texts)."""
    data = _loads(body)
    q1, q2 = data.get("q1"), data.get("q2")
    if not isinstance(q1, str) or not isinstance(q2, str):
        raise EdgeProtocolError(
            400, "containment needs 'q1' and 'q2' rule-text strings"
        )
    return {"q1": q1, "q2": q2, "timeout": _timeout(data)}


def decode_datalog(body: bytes) -> dict[str, Any]:
    """``/v1/datalog`` body → a router payload (source/target/k)."""
    data = _loads(body)
    k = data.get("k", 2)
    if not isinstance(k, int) or isinstance(k, bool) or not 1 <= k <= 8:
        raise EdgeProtocolError(400, f"k must be an int in [1, 8], got {k!r}")
    return {
        "source": _structure(data, "source"),
        "target": _structure(data, "target"),
        "k": k,
        "timeout": _timeout(data),
    }


def _element_out(value: Any) -> Any:
    """A witness element in JSON-safe form (scalars as-is, else repr)."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def encode_result(result: dict[str, Any]) -> dict[str, Any]:
    """A shard result → the JSON response body (deterministic).

    ``witness`` is a sorted list of ``[source_element, target_element]``
    pairs (JSON objects cannot key on non-strings); non-scalar elements
    are repr-encoded.  No wall-clock fields — latency lives in
    ``/v1/metrics``, keeping response bytes reproducible.
    """
    witness = result.get("witness")
    pairs = None
    if witness is not None:
        pairs = sorted(
            ([_element_out(key), _element_out(value)] for key, value in witness.items()),
            key=repr,
        )
    return {
        "verdict": result["verdict"],
        "witness": pairs,
        "strategy": result["strategy"],
        "route": result["route"],
        "shard": result["shard"],
        "coalesced": result["coalesced"],
    }


def error_body(error_name: str, message: str, status: int) -> bytes:
    """The JSON error envelope every non-2xx response carries."""
    return dumps(
        {"error": {"type": error_name, "status": status, "message": message}}
    )


# -- the binary batch framing ----------------------------------------------


def encode_frames(items: Iterable[object]) -> bytes:
    """Pickle each item and frame the lot (magic, count, length-prefixed)."""
    payloads = [
        pickle.dumps(item, protocol=PICKLE_PROTOCOL) for item in items
    ]
    parts = [BATCH_MAGIC, _COUNT.pack(len(payloads))]
    for payload in payloads:
        parts.append(_LENGTH.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_frames(
    body: bytes, *, max_items: int, max_item_bytes: int
) -> list[object]:
    """Parse a batch body; every violation is a typed 400.

    The framing is validated *before* any payload is unpickled: magic,
    declared count against the caps, every length prefix against the
    remaining bytes — a truncated or lying frame fails fast and typed.
    """
    if len(body) < len(BATCH_MAGIC) + _COUNT.size:
        raise EdgeProtocolError(400, "batch body shorter than its header")
    if body[: len(BATCH_MAGIC)] != BATCH_MAGIC:
        raise EdgeProtocolError(
            400, f"bad batch magic: {body[:4]!r} (expected {BATCH_MAGIC!r})"
        )
    (count,) = _COUNT.unpack_from(body, len(BATCH_MAGIC))
    if count > max_items:
        raise EdgeProtocolError(
            400, f"batch of {count} items exceeds the {max_items} cap"
        )
    offset = len(BATCH_MAGIC) + _COUNT.size
    items: list[object] = []
    for index in range(count):
        if offset + _LENGTH.size > len(body):
            raise EdgeProtocolError(
                400, f"batch truncated before item {index}'s length"
            )
        (length,) = _LENGTH.unpack_from(body, offset)
        offset += _LENGTH.size
        if length > max_item_bytes:
            raise EdgeProtocolError(
                400,
                f"batch item {index} of {length} bytes exceeds "
                f"{max_item_bytes}",
            )
        if offset + length > len(body):
            raise EdgeProtocolError(
                400,
                f"batch truncated inside item {index}: "
                f"{len(body) - offset} of {length} bytes",
            )
        try:
            items.append(pickle.loads(body[offset : offset + length]))
        except Exception as exc:  # noqa: BLE001 — any unpickle failure is a bad frame
            raise EdgeProtocolError(
                400, f"batch item {index} failed to decode: {exc!r}"
            ) from None
        offset += length
    if offset != len(body):
        raise EdgeProtocolError(
            400, f"{len(body) - offset} trailing bytes after the batch"
        )
    return items


def batch_request_payload(item: object, index: int) -> dict[str, Any]:
    """Validate one decoded batch item into a router (op, payload) pair.

    Items are plain dicts — ``{"op": "solve", "source": Structure,
    "target": Structure, "timeout": ...}``, containment carrying query
    rule texts under ``q1``/``q2`` and datalog an extra ``k`` — i.e. the
    JSON schema with real :class:`Structure` objects in place of their
    dict forms.
    """
    if not isinstance(item, dict) or "op" not in item:
        raise EdgeProtocolError(
            400, f"batch item {index} is not an op dict"
        )
    op = item["op"]
    if op not in ("solve", "containment", "datalog"):
        raise EdgeProtocolError(
            400, f"batch item {index} has unknown op {op!r}"
        )
    timeout = item.get("timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float)) or timeout <= 0
    ):
        raise EdgeProtocolError(
            400, f"batch item {index} has a bad timeout: {timeout!r}"
        )
    if op == "containment":
        q1, q2 = item.get("q1"), item.get("q2")
        if not isinstance(q1, str) or not isinstance(q2, str):
            raise EdgeProtocolError(
                400,
                f"batch item {index}: containment needs q1/q2 rule texts",
            )
        return {"op": op, "q1": q1, "q2": q2, "timeout": timeout}
    source, target = item.get("source"), item.get("target")
    if not isinstance(source, Structure) or not isinstance(target, Structure):
        raise EdgeProtocolError(
            400, f"batch item {index} needs Structure source/target"
        )
    payload: dict[str, Any] = {
        "op": op,
        "source": source,
        "target": target,
        "timeout": timeout,
    }
    if op == "datalog":
        k = item.get("k", 2)
        if not isinstance(k, int) or isinstance(k, bool) or not 1 <= k <= 8:
            raise EdgeProtocolError(
                400, f"batch item {index} has a bad k: {k!r}"
            )
        payload["k"] = k
    return payload
