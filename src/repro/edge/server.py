"""The edge server: five endpoints in front of the shard router.

================== ====== =====================================================
endpoint           method semantics
================== ====== =====================================================
``/v1/solve``       POST  JSON homomorphism instance → verdict + witness
``/v1/containment`` POST  JSON ``q1``/``q2`` rule texts → Theorem 2.1 verdict
``/v1/datalog``     POST  JSON instance + ``k`` → Theorem 4.2 verdict
``/v1/batch``       POST  length-prefixed binary batch (``REB1`` framing)
``/v1/metrics``     GET   Prometheus text: the edge's :mod:`repro.obs`
                          registry + the shards' kernel counters merged
                          in as ``shard``-labelled series
``/v1/healthz``     GET   liveness + per-shard states (pids, generations)
================== ====== =====================================================

Two layers of load shedding, both answering **429 + Retry-After**: a
global open-request ceiling on the edge process, and the router's
per-shard in-flight window.  A *draining* edge (SIGTERM, or
:meth:`EdgeServer.drain` directly) instead answers **503 + Retry-After**
on everything but ``/v1/metrics`` and ``/v1/healthz`` while in-flight
requests run to completion — the shutdown contract
``SolveService.drain`` promises, finally reachable from a signal.

Every error a request can hit leaves as a typed JSON envelope
(``{"error": {"type", "status", "message"}}``) with the status from
:data:`repro.edge.protocol.ERROR_STATUS` — a malformed frame, a crashed
shard, or an overload can never surface as an unhandled exception; the
conformance suite asserts the server log stays clean while it fuzzes.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.exceptions import (
    EdgeProtocolError,
    ReproError,
    ServiceOverloadedError,
)
from repro.edge import protocol
from repro.edge.http import HttpRequest, read_request, response_bytes
from repro.edge.router import RouterConfig, ShardRouter
from repro.obs.metrics import KERNEL_COUNTERS, default_registry

logger = logging.getLogger("repro.edge.server")

__all__ = ["EdgeConfig", "EdgeServer", "BATCH_CONTENT_TYPE"]

#: The media type of the binary batch endpoint.
BATCH_CONTENT_TYPE = "application/x-repro-batch"

_ROUTES = frozenset({"solve", "containment", "datalog", "batch"})


@dataclass(frozen=True)
class EdgeConfig:
    """Tuning knobs of an :class:`EdgeServer`.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.port`` — the tests do).  ``max_open_requests`` is the
    edge-global admission ceiling; ``queue_limit`` bounds each shard's
    in-flight window (see :class:`~repro.edge.router.RouterConfig`).
    ``retry_after`` is the hint sent with every 429/503.
    ``service_options`` passes through to each shard's service config.
    """

    host: str = "127.0.0.1"
    port: int = 0
    num_shards: int = 2
    store_path: str | None = None
    max_body_bytes: int = 8 * 1024 * 1024
    read_timeout: float = 30.0
    max_open_requests: int = 256
    queue_limit: int = 64
    retry_budget: int = 1
    retry_after: int = 1
    batch_max_items: int = 256
    batch_max_item_bytes: int = 4 * 1024 * 1024
    drain_timeout: float = 30.0
    service_options: dict[str, Any] = field(default_factory=dict)


class EdgeServer:
    """One edge process: HTTP front door + fingerprint-sharded router."""

    def __init__(self, config: EdgeConfig | None = None) -> None:
        self.config = config or EdgeConfig()
        self.router: ShardRouter | None = None
        self._server: asyncio.base_events.Server | None = None
        self._open_requests = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._drained.set()
        registry = default_registry()
        self._requests_total = registry.counter(
            "repro_edge_requests_total",
            "Requests answered by the edge, by route and status.",
            labelnames=("route", "status"),
        )
        self._latency = {
            route: registry.histogram(
                f"repro_edge_{route}_latency_ms",
                f"Edge-observed latency of /v1/{route} in milliseconds.",
            )
            for route in ("solve", "containment", "datalog", "batch")
        }
        self._open_gauge = registry.gauge(
            "repro_edge_open_requests",
            "Requests currently open on the edge.",
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "EdgeServer":
        router_config = RouterConfig(
            num_shards=self.config.num_shards,
            store_path=self.config.store_path,
            queue_limit=self.config.queue_limit,
            retry_budget=self.config.retry_budget,
            service_options=dict(self.config.service_options),
        )
        self.router = ShardRouter(
            router_config, loop=asyncio.get_running_loop()
        )
        await self.router.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        return self

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, finish in-flight work, drain every shard.

        New requests get 503 + Retry-After the moment this is called
        (``/v1/metrics`` and ``/v1/healthz`` keep answering, so an
        orchestrator can watch the drain); the listening socket closes
        only after the last in-flight request completes and the shards
        have drained their services.  Returns ``True`` when nothing was
        cut short.  Idempotent.
        """
        if timeout is None:
            timeout = self.config.drain_timeout
        if self._draining:
            await self._drained.wait()
            return True
        self._draining = True
        clean = True
        deadline = time.monotonic() + timeout
        while self._open_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self._open_requests > 0:
            clean = False
        if self.router is not None:
            clean = await self.router.drain(max(deadline - time.monotonic(), 0.0)) and clean
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()
        return clean

    async def stop(self) -> None:
        """Fast shutdown (tests): zero-grace drain."""
        await self.drain(0.0)

    async def __aenter__(self) -> "EdgeServer":
        return await self.start()

    async def __aexit__(self, *_exc_info) -> None:
        if not self._draining:
            await self.stop()

    # -- the connection loop ---------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_body_bytes=self.config.max_body_bytes,
                        read_timeout=self.config.read_timeout,
                    )
                except EdgeProtocolError as exc:
                    # The stream position after a framing violation is
                    # unknowable — answer typed, then close.
                    await self._write(
                        writer,
                        response_bytes(
                            exc.status,
                            protocol.error_body(
                                "EdgeProtocolError", str(exc), exc.status
                            ),
                            close=True,
                        ),
                    )
                    break
                if request is None:
                    break  # peer closed between requests
                payload = await self._respond(request)
                if request.close:
                    # Echo the close we are about to perform (RFC 9112
                    # §9.6); responses place ``connection`` last, so the
                    # splice keeps the deterministic header order.
                    head, sep, body = payload.partition(b"\r\n\r\n")
                    if b"\r\nconnection: close" not in head:
                        payload = head + b"\r\nconnection: close" + sep + body
                await self._write(writer, payload)
                if request.close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _write(self, writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _respond(self, request: HttpRequest) -> bytes:
        """One request → one deterministic response byte string."""
        route = request.path.removeprefix("/v1/")
        started = time.perf_counter()
        try:
            response = await self._dispatch(request, route)
        except EdgeProtocolError as exc:
            response = self._error_response(
                "EdgeProtocolError", str(exc), exc.status
            )
        except ReproError as exc:
            name = type(exc).__name__
            response = self._error_response(
                name, str(exc), protocol.status_for(name)
            )
        except Exception as exc:  # noqa: BLE001 — the wall: nothing unhandled escapes
            logger.exception("unhandled error on %s", request.path)
            response = self._error_response(
                "ReproError", f"internal error: {exc!r}", 500
            )
        if route in self._latency:
            self._latency[route].observe(
                (time.perf_counter() - started) * 1000.0
            )
        status = int(response.split(b" ", 2)[1])
        self._requests_total.inc(route=route, status=str(status))
        return response

    async def _dispatch(self, request: HttpRequest, route: str) -> bytes:
        if request.path == "/v1/healthz":
            self._expect_method(request, "GET")
            body = self._health_body()
            if "full" in request.query:
                # The expensive view: a stats round-trip to every live
                # shard — service-stats snapshot + kernel counters (the
                # chaos suite reads ``compile.targets`` here to prove a
                # respawned shard came back warm).
                assert self.router is not None
                body["shards"] = await self.router.shard_stats()
            return self._json_response(200, body)
        if request.path == "/v1/metrics":
            self._expect_method(request, "GET")
            text = default_registry().exposition() + await self._shard_exposition()
            return response_bytes(
                200,
                text.encode(),
                content_type="text/plain; version=0.0.4",
            )
        if route not in _ROUTES or request.path != f"/v1/{route}":
            raise EdgeProtocolError(404, f"no such endpoint: {request.path}")
        self._expect_method(request, "POST")
        if self._draining:
            return self._error_response(
                "ServiceClosedError", "edge is draining", 503
            )
        if self._open_requests >= self.config.max_open_requests:
            return self._error_response(
                "ServiceOverloadedError",
                f"{self._open_requests} requests open "
                f"(limit {self.config.max_open_requests})",
                429,
            )
        self._open_requests += 1
        self._open_gauge.set(self._open_requests)
        try:
            if route == "batch":
                return await self._handle_batch(request)
            return await self._handle_json(request, route)
        finally:
            self._open_requests -= 1
            self._open_gauge.set(self._open_requests)

    async def _shard_exposition(self) -> str:
        """The shards' kernel counters as ``shard``-labelled series.

        The kernel does its work in the shard processes, so their
        counters never appear in the edge process's own registry; this
        merges them into the scrape (one stats round-trip per live
        shard) so one ``/v1/metrics`` endpoint covers the fleet.  A
        shard mid-respawn is simply absent from the scrape.
        """
        assert self.router is not None
        try:
            shards = await self.router.shard_stats()
        except ReproError:
            return ""
        lines: list[str] = []
        for key, (family, help_text) in KERNEL_COUNTERS.items():
            samples = [
                (shard["index"], shard["kernel"][key])
                for shard in shards
                if shard.get("alive") and key in shard.get("kernel", {})
            ]
            if not samples:
                continue
            lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} counter")
            lines.extend(
                f'{family}{{shard="{index}"}} {value}'
                for index, value in samples
            )
        return "\n".join(lines) + "\n" if lines else ""

    def _expect_method(self, request: HttpRequest, method: str) -> None:
        if request.method != method:
            raise EdgeProtocolError(
                405, f"{request.path} only accepts {method}"
            )

    async def _handle_json(self, request: HttpRequest, route: str) -> bytes:
        content_type = request.content_type()
        if content_type != "application/json":
            raise EdgeProtocolError(
                415,
                f"/v1/{route} takes application/json, "
                f"not {content_type or '(none)'!r}",
            )
        assert self.router is not None
        decode: Callable[[bytes], dict]
        run: Callable[[dict], Awaitable[dict]]
        if route == "solve":
            decode, run = protocol.decode_solve, self.router.solve
        elif route == "containment":
            decode, run = protocol.decode_containment, self.router.containment
        else:
            decode, run = protocol.decode_datalog, self.router.datalog
        result = await run(decode(request.body))
        return self._json_response(200, protocol.encode_result(result))

    async def _handle_batch(self, request: HttpRequest) -> bytes:
        """The binary batch endpoint: decode frames, fan out, re-frame.

        Items fail *independently*: each slot of the response carries
        either the result dict or an ``{"error": ...}`` dict, in input
        order, so one malformed or overloaded item can't poison its
        batch-mates.  The HTTP status is 200 whenever the batch framing
        itself was sound.
        """
        if request.content_type() != BATCH_CONTENT_TYPE:
            raise EdgeProtocolError(
                415,
                f"/v1/batch takes {BATCH_CONTENT_TYPE}, "
                f"not {request.content_type() or '(none)'!r}",
            )
        items = protocol.decode_frames(
            request.body,
            max_items=self.config.batch_max_items,
            max_item_bytes=self.config.batch_max_item_bytes,
        )
        assert self.router is not None

        async def one(item: object, index: int) -> dict:
            try:
                payload = protocol.batch_request_payload(item, index)
                return await self.router.dispatch(payload)
            except ReproError as exc:
                name = type(exc).__name__
                status = (
                    exc.status
                    if isinstance(exc, EdgeProtocolError)
                    else protocol.status_for(name)
                )
                return {
                    "error": {
                        "type": name,
                        "status": status,
                        "message": str(exc),
                    }
                }

        results = await asyncio.gather(
            *(one(item, index) for index, item in enumerate(items))
        )
        body = protocol.encode_frames(results)
        return response_bytes(200, body, content_type=BATCH_CONTENT_TYPE)

    # -- response helpers --------------------------------------------------

    def _health_body(self) -> dict:
        assert self.router is not None
        return {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining,
            "num_shards": self.config.num_shards,
            "open_requests": self._open_requests,
            "shards": self.router.shard_states(),
        }

    def _json_response(self, status: int, payload: dict) -> bytes:
        return response_bytes(status, protocol.dumps(payload))

    def _error_response(self, name: str, message: str, status: int) -> bytes:
        extra = ()
        if status in protocol.RETRYABLE_STATUSES:
            extra = (("retry-after", str(self.config.retry_after)),)
        return response_bytes(
            status,
            protocol.error_body(name, message, status),
            extra_headers=extra,
        )


async def serve_forever(config: EdgeConfig) -> None:
    """Run an edge until SIGTERM/SIGINT, then drain and exit.

    This is the fix for "``SolveService.drain()`` is unreachable from
    any external signal": ``python -m repro.edge`` installs handlers
    that flip the server into draining mode — 503 on new work, in-flight
    requests completed, shard services drained and their stores flushed
    — before the process exits.
    """
    import signal

    server = EdgeServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    print(
        json.dumps(
            {
                "listening": f"{config.host}:{server.port}",
                "num_shards": config.num_shards,
                "store_path": config.store_path,
            }
        ),
        flush=True,
    )
    await stop.wait()
    logger.warning("signal received: draining edge")
    clean = await server.drain()
    logger.warning("edge drained (clean=%s)", clean)
