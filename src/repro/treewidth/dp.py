"""Homomorphisms by dynamic programming over a tree decomposition
(Theorem 5.4).

Given a structure ``A`` with a tree decomposition of width ``w`` and an
arbitrary structure ``B``, decide ``A → B`` in time O(#bags · |B|^{w+1} ·
poly): root the decomposition; for each node, the *table* holds every map
from its bag into B that satisfies the facts assigned to that node and is
extendable on every child bag (agreeing on the shared elements).  A
homomorphism exists iff the root's table is non-empty, and one is
reconstructed top-down.

This is the executable content of Theorem 5.4; the paper's alternative
route through ∃FO^{k+1} evaluation (Lemma 5.2) lives in :mod:`repro.fo`
and the tests check the two always agree.

Two engines implement the DP.  The default is the compiled bitset
kernel (:mod:`repro.kernel.decomp` — nice-decomposition specialization,
int-coded bag tables, support-bitset semijoins); the original
bag-map-enumeration implementation below stays as the parity oracle,
selectable per call with ``engine="legacy"`` or process-wide via
:func:`repro.kernel.set_default_engine` / the ``REPRO_ENGINE``
environment variable.  Both return the same existence verdict on every
instance and always a valid homomorphism (witness elements may differ).
"""

from __future__ import annotations

from itertools import product
from typing import Hashable

from repro.exceptions import VocabularyError
from repro.kernel.engine import LEGACY, resolve_engine
from repro.structures.structure import Structure, _sort_key
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import decompose

__all__ = ["solve_by_treewidth", "homomorphism_exists_by_treewidth"]

Element = Hashable
BagMap = tuple[tuple[Element, Element], ...]


def _bag_maps(
    bag: tuple[Element, ...],
    values: tuple[Element, ...],
    facts: list[tuple[str, tuple[Element, ...]]],
    target: Structure,
):
    """All maps bag → values satisfying the node's assigned facts."""
    for image in product(values, repeat=len(bag)):
        mapping = dict(zip(bag, image))
        if all(
            tuple(mapping[e] for e in fact) in target.relation(name)
            for name, fact in facts
        ):
            yield tuple(sorted(mapping.items(), key=lambda kv: _sort_key(kv[0])))


def solve_by_treewidth(
    source: Structure,
    target: Structure,
    decomposition: TreeDecomposition | None = None,
    *,
    engine: str | None = None,
) -> dict[Element, Element] | None:
    """Find a homomorphism ``source → target`` via bag-table DP.

    ``decomposition`` defaults to a min-fill heuristic decomposition of
    the source (validated either way).  Returns a full homomorphism or
    ``None``; worst-case time is exponential only in the decomposition
    width, polynomial for bounded-treewidth sources (Theorem 5.4).
    ``engine`` selects the compiled kernel DP (default) or the legacy
    bag-map enumeration below.
    """
    if resolve_engine(engine) != LEGACY:
        from repro.kernel.decomp import solve_decomposition

        return solve_decomposition(source, target, decomposition)
    if source.vocabulary != target.vocabulary:
        raise VocabularyError("instance structures must share a vocabulary")
    if decomposition is None:
        decomposition = decompose(source)
    else:
        decomposition.validate(source)
    if not source.universe:
        return {}
    if not target.universe:
        return None

    values = tuple(target.sorted_universe)
    facts_at = decomposition.assign_facts(source)
    order = decomposition.rooted(0)
    children: dict[int, list[int]] = {node: [] for node, _ in order}
    for node, parent in order:
        if parent is not None:
            children[parent].append(node)

    bags = {
        node: tuple(sorted(decomposition.bags[node], key=_sort_key))
        for node, _ in order
    }

    # Bottom-up: per node, the set of bag maps consistent with its subtree.
    tables: dict[int, set[BagMap]] = {}
    for node, _parent in reversed(order):
        bag = bags[node]
        bag_set = set(bag)
        table: set[BagMap] = set()
        child_views: list[tuple[int, tuple[Element, ...]]] = [
            (child, tuple(e for e in bags[child] if e in bag_set))
            for child in children[node]
        ]
        # Index child tables by their restriction to the shared elements.
        child_indexes = []
        for child, shared in child_views:
            index: set[tuple[tuple[Element, Element], ...]] = set()
            for child_map in tables[child]:
                lookup = dict(child_map)
                index.add(tuple((e, lookup[e]) for e in shared))
            child_indexes.append((shared, index))
        for candidate in _bag_maps(bag, values, facts_at[node], target):
            lookup = dict(candidate)
            if all(
                tuple((e, lookup[e]) for e in shared) in index
                for shared, index in child_indexes
            ):
                table.add(candidate)
        tables[node] = table
        if not table:
            return None

    # Top-down reconstruction.
    assignment: dict[Element, Element] = {}

    def choose(node: int, required: dict[Element, Element]) -> None:
        for candidate in sorted(tables[node], key=repr):
            lookup = dict(candidate)
            if all(lookup[e] == v for e, v in required.items()):
                assignment.update(lookup)
                for child in children[node]:
                    shared = {
                        e: assignment[e]
                        for e in bags[child]
                        if e in lookup
                    }
                    choose(child, shared)
                return
        raise AssertionError(
            "non-empty tables must admit a consistent choice; this is a bug"
        )

    choose(0, {})
    return assignment


def homomorphism_exists_by_treewidth(
    source: Structure,
    target: Structure,
    decomposition: TreeDecomposition | None = None,
    *,
    engine: str | None = None,
) -> bool:
    """Decision form of :func:`solve_by_treewidth`."""
    return (
        solve_by_treewidth(source, target, decomposition, engine=engine)
        is not None
    )
