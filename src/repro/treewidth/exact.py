"""Exact treewidth for small graphs.

The paper cites Bodlaender's linear-time algorithm for fixed k [Bod93]; its
constants make it purely theoretical, so — as in every practical treewidth
tool — we provide an exact dynamic program over vertex subsets (the
Bodlaender–Koster / Held–Karp-style recurrence, O(2ⁿ·n²)) for graphs up to
~18 vertices, used by the tests to certify the heuristic bounds.

``Q(S, v)`` = the number of vertices outside ``S ∪ {v}`` reachable from
``v`` through ``S``; a graph has treewidth ≤ w iff there is an elimination
order whose every prefix ``S`` extends by a vertex ``v`` with
``Q(S, v) ≤ w``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable

import networkx as nx

from repro.structures.gaifman import gaifman_graph
from repro.structures.structure import Structure

__all__ = ["exact_treewidth", "is_treewidth_at_most", "exact_treewidth_graph"]

Element = Hashable


def exact_treewidth_graph(graph: nx.Graph) -> int:
    """The exact treewidth of a graph (exponential-time DP).

    The treewidth of an edgeless (or empty) graph is conventionally 0
    here (single-vertex bags); the paper's convention of "width = max bag
    − 1" gives the same number.
    """
    nodes = sorted(graph.nodes, key=repr)
    n = len(nodes)
    if n == 0:
        return 0
    index_of = {v: i for i, v in enumerate(nodes)}
    adjacency = [0] * n
    for u, v in graph.edges:
        if u == v:
            continue
        adjacency[index_of[u]] |= 1 << index_of[v]
        adjacency[index_of[v]] |= 1 << index_of[u]

    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def q(eliminated: int, vertex: int) -> int:
        """|N(component of `vertex` in eliminated ∪ {vertex}) \\ eliminated|."""
        # Flood fill inside `eliminated` starting from vertex's neighbours.
        seen = 1 << vertex
        frontier = adjacency[vertex]
        boundary = 0
        while frontier:
            bit = frontier & -frontier
            frontier ^= bit
            if seen & bit:
                continue
            seen |= bit
            position = bit.bit_length() - 1
            if eliminated & bit:
                frontier |= adjacency[position] & ~seen
            else:
                boundary |= bit
        return bin(boundary).count("1")

    @lru_cache(maxsize=None)
    def feasible(eliminated: int, width: int) -> bool:
        if eliminated == full:
            return True
        remaining = full & ~eliminated
        scan = remaining
        while scan:
            bit = scan & -scan
            scan ^= bit
            vertex = bit.bit_length() - 1
            if q(eliminated, vertex) <= width:
                if feasible(eliminated | bit, width):
                    return True
        return False

    for width in range(n):
        feasible.cache_clear()
        if feasible(0, width):
            return width
    return n - 1


def exact_treewidth(structure: Structure) -> int:
    """Exact treewidth of a structure, via its Gaifman graph (Lemma 5.1)."""
    return exact_treewidth_graph(gaifman_graph(structure))


def is_treewidth_at_most(structure: Structure, width: int) -> bool:
    """Whether the structure's treewidth is at most ``width``."""
    return exact_treewidth(structure) <= width
