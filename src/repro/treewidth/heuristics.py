"""Tree-decomposition heuristics via elimination orderings.

The classical route: pick a vertex order on the Gaifman graph, eliminate
vertices one by one (connecting their remaining neighbours into a clique);
the bags ``{v} ∪ N(v)`` at elimination time form a tree decomposition whose
width is the largest bag minus one.  *Min-degree* and *min-fill* are the
standard greedy orders.  Bodlaender's linear-time exact algorithm [Bod93]
cited by the paper is galactic; greedy elimination plus the exact
branch-and-bound in :mod:`repro.treewidth.exact` for small inputs is what
practical systems use.
"""

from __future__ import annotations

from typing import Hashable, Literal, Sequence

import networkx as nx

from repro.structures.gaifman import gaifman_graph
from repro.structures.structure import Structure, _sort_key
from repro.treewidth.decomposition import TreeDecomposition

__all__ = [
    "elimination_order",
    "decomposition_from_order",
    "decompose",
    "cached_decomposition",
    "treewidth_upper_bound",
]

Element = Hashable


def elimination_order(
    graph: nx.Graph, heuristic: Literal["min_degree", "min_fill"] = "min_fill"
) -> list[Element]:
    """A greedy elimination order of the graph's vertices."""
    work = graph.copy()
    order: list[Element] = []

    def fill_in(vertex: Element) -> int:
        neighbours = list(work.neighbors(vertex))
        missing = 0
        for i, u in enumerate(neighbours):
            for v in neighbours[i + 1 :]:
                if not work.has_edge(u, v):
                    missing += 1
        return missing

    while work.number_of_nodes():
        if heuristic == "min_degree":
            vertex = min(
                work.nodes, key=lambda v: (work.degree(v), _sort_key(v))
            )
        elif heuristic == "min_fill":
            vertex = min(
                work.nodes, key=lambda v: (fill_in(v), _sort_key(v))
            )
        else:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        neighbours = list(work.neighbors(vertex))
        for i, u in enumerate(neighbours):
            for v in neighbours[i + 1 :]:
                work.add_edge(u, v)
        work.remove_node(vertex)
        order.append(vertex)
    return order


def decomposition_from_order(
    graph: nx.Graph, order: Sequence[Element]
) -> TreeDecomposition:
    """The tree decomposition induced by an elimination order.

    Bag of the i-th eliminated vertex v: {v} ∪ (neighbours of v among the
    not-yet-eliminated, in the fill-in graph); its parent is the bag of the
    earliest-eliminated vertex in that neighbourhood.
    """
    if not order:
        return TreeDecomposition([frozenset()], [])
    position = {v: i for i, v in enumerate(order)}
    work = graph.copy()
    work.add_nodes_from(order)
    bags: list[frozenset[Element]] = []
    later_neighbours: list[list[Element]] = []
    for vertex in order:
        neighbours = [
            u for u in work.neighbors(vertex) if position[u] > position[vertex]
        ]
        bags.append(frozenset([vertex, *neighbours]))
        later_neighbours.append(neighbours)
        for i, u in enumerate(neighbours):
            for v in neighbours[i + 1 :]:
                work.add_edge(u, v)
    edges = []
    for index, neighbours in enumerate(later_neighbours):
        if neighbours:
            parent_vertex = min(neighbours, key=lambda u: position[u])
            edges.append((index, position[parent_vertex]))
        elif index + 1 < len(order):
            # Disconnected component: chain the bag to the next one so the
            # decomposition graph stays a tree.
            edges.append((index, index + 1))
    return TreeDecomposition(bags, edges)


def decompose(
    structure: Structure,
    heuristic: Literal["min_degree", "min_fill"] = "min_fill",
) -> TreeDecomposition:
    """A (heuristic) tree decomposition of a structure via its Gaifman
    graph (Lemma 5.1)."""
    graph = gaifman_graph(structure)
    order = elimination_order(graph, heuristic)
    decomposition = decomposition_from_order(graph, order)
    decomposition.validate(structure)
    return decomposition


def cached_decomposition(structure: Structure) -> TreeDecomposition:
    """The default (min-fill) decomposition, memoized on the structure.

    The same pattern as the compiled-kernel memos: decompositions are
    deterministic functions of the (immutable) structure, so the solver
    pipeline, the width-aware planner, and the treewidth DP can all ask
    repeatedly and pay the greedy elimination once per structure object.
    Cross-object reuse (structurally equal rebuilds) is the job of the
    fingerprint-keyed :class:`repro.core.pipeline.StructureCache`, whose
    ``decomposition`` entry point funnels through here — and the memo is
    dropped on pickling so process-pool payloads stay lean.
    """
    memoized = structure._decomposition
    if memoized is None:
        memoized = decompose(structure)
        structure._decomposition = memoized
    return memoized  # type: ignore[return-value]


def treewidth_upper_bound(
    structure: Structure,
    heuristic: Literal["min_degree", "min_fill"] = "min_fill",
) -> int:
    """The width achieved by greedy elimination (an upper bound)."""
    return decompose(structure, heuristic).width
