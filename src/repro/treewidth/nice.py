"""Nice tree decompositions: the normalized form behind parse trees.

The proof of Lemma 5.2 builds parse trees out of k-boundaried structures
combined by small-arity operators; the modern formulation is a *nice*
tree decomposition, where every node is one of

* **leaf** — an empty bag;
* **introduce(v)** — the bag of its single child plus one new element;
* **forget(v)** — the bag of its single child minus one element;
* **join** — two children with identical bags, equal to the node's bag.

Every tree decomposition converts into a nice one of the same width with
O(width · #bags) nodes, and dynamic programs become one-rule-per-node-kind
simple.  This module provides the conversion, a validator, and an
alternative homomorphism DP over nice decompositions that the tests
cross-check against :mod:`repro.treewidth.dp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Literal

from repro.exceptions import DecompositionError
from repro.structures.structure import Structure, _sort_key
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import decompose

__all__ = ["NiceNode", "NiceDecomposition", "make_nice", "solve_by_nice_dp"]

Element = Hashable
Kind = Literal["leaf", "introduce", "forget", "join"]


@dataclass(frozen=True)
class NiceNode:
    """One node of a nice decomposition.

    ``children`` are node indices; ``element`` is the element introduced
    or forgotten (``None`` for leaf/join nodes).
    """

    kind: Kind
    bag: frozenset[Element]
    children: tuple[int, ...]
    element: Element | None = None


class NiceDecomposition:
    """A rooted nice tree decomposition (node 0 is the root)."""

    def __init__(self, nodes: list[NiceNode]) -> None:
        if not nodes:
            raise DecompositionError("a nice decomposition needs nodes")
        self.nodes = list(nodes)
        self._check_shape()

    def _check_shape(self) -> None:
        for index, node in enumerate(self.nodes):
            for child in node.children:
                if not 0 <= child < len(self.nodes):
                    raise DecompositionError(
                        f"node {index} has out-of-range child {child}"
                    )
            if node.kind == "leaf":
                if node.children or node.bag:
                    raise DecompositionError("leaf must be empty and childless")
            elif node.kind == "introduce":
                (child,) = node.children
                expected = self.nodes[child].bag | {node.element}
                if node.element in self.nodes[child].bag or node.bag != expected:
                    raise DecompositionError(
                        f"bad introduce node {index}"
                    )
            elif node.kind == "forget":
                (child,) = node.children
                expected = self.nodes[child].bag - {node.element}
                if (
                    node.element not in self.nodes[child].bag
                    or node.bag != expected
                ):
                    raise DecompositionError(f"bad forget node {index}")
            elif node.kind == "join":
                left, right = node.children
                if not (
                    node.bag
                    == self.nodes[left].bag
                    == self.nodes[right].bag
                ):
                    raise DecompositionError(f"bad join node {index}")
            else:
                raise DecompositionError(f"unknown node kind {node.kind!r}")

    @property
    def width(self) -> int:
        return max(len(node.bag) for node in self.nodes) - 1

    def __len__(self) -> int:
        return len(self.nodes)

    def to_tree_decomposition(self) -> TreeDecomposition:
        """Forget the node kinds; useful for re-validation."""
        edges = [
            (index, child)
            for index, node in enumerate(self.nodes)
            for child in node.children
        ]
        return TreeDecomposition(
            [node.bag for node in self.nodes], edges
        )


def make_nice(
    decomposition: TreeDecomposition, structure: Structure | None = None
) -> NiceDecomposition:
    """Convert a tree decomposition into an equivalent nice one.

    The result has the same width; if ``structure`` is given the converted
    decomposition is validated against it.
    """
    order = decomposition.rooted(0)
    children: dict[int, list[int]] = {node: [] for node, _ in order}
    for node, parent in order:
        if parent is not None:
            children[parent].append(node)

    nodes: list[NiceNode] = []

    def emit(node: NiceNode) -> int:
        nodes.append(node)
        return len(nodes) - 1

    def chain_to_bag(
        start_index: int,
        start_bag: frozenset[Element],
        goal_bag: frozenset[Element],
    ) -> int:
        """Forget then introduce, one element at a time."""
        index, bag = start_index, start_bag
        for element in sorted(start_bag - goal_bag, key=_sort_key):
            bag = bag - {element}
            index = emit(
                NiceNode("forget", bag, (index,), element)
            )
        for element in sorted(goal_bag - start_bag, key=_sort_key):
            bag = bag | {element}
            index = emit(
                NiceNode("introduce", bag, (index,), element)
            )
        return index

    def build(original: int) -> int:
        """Emit the nice subtree for an original node; returns its index."""
        bag = frozenset(decomposition.bags[original])
        kids = children[original]
        if not kids:
            leaf = emit(NiceNode("leaf", frozenset(), ()))
            return chain_to_bag(leaf, frozenset(), bag)
        branches = []
        for child in kids:
            child_top = build(child)
            child_bag = frozenset(decomposition.bags[child])
            branches.append(chain_to_bag(child_top, child_bag, bag))
        index = branches[0]
        for other in branches[1:]:
            index = emit(NiceNode("join", bag, (index, other)))
        return index

    root = build(0)
    # Root must come first by convention: rotate via a final index map.
    if root != 0:
        permutation = [root] + [i for i in range(len(nodes)) if i != root]
        position = {old: new for new, old in enumerate(permutation)}
        nodes = [
            NiceNode(
                node.kind,
                node.bag,
                tuple(position[c] for c in node.children),
                node.element,
            )
            for node in (nodes[old] for old in permutation)
        ]
    nice = NiceDecomposition(nodes)
    if structure is not None:
        nice.to_tree_decomposition().validate(structure)
    return nice


def solve_by_nice_dp(
    source: Structure,
    target: Structure,
    decomposition: TreeDecomposition | None = None,
) -> bool:
    """Homomorphism existence via the textbook nice-decomposition DP.

    One transfer rule per node kind:

    * leaf: the empty assignment;
    * introduce(v): extend each assignment by every image of ``v`` that
      satisfies the source facts now fully inside the bag;
    * forget(v): project ``v`` away;
    * join: intersect the children's assignment sets.

    An independent re-implementation of Theorem 5.4 used by the tests to
    cross-check :func:`repro.treewidth.dp.solve_by_treewidth`.
    """
    if decomposition is None:
        decomposition = decompose(source)
    else:
        decomposition.validate(source)
    facts = list(source.facts())
    # Nullary facts have no element to hang the introduce-time check on.
    for name, fact in facts:
        if not fact and fact not in target.relation(name):
            return False
    if not source.universe:
        return True
    nice = make_nice(decomposition, source)
    values = target.sorted_universe

    def facts_inside(bag: frozenset[Element], element: Element):
        """Facts fully inside ``bag`` that mention ``element``."""
        return [
            (name, fact)
            for name, fact in facts
            if element in fact and set(fact) <= bag
        ]

    tables: dict[int, set[tuple[tuple[Element, Element], ...]]] = {}

    ordered = sorted(
        range(len(nice.nodes)),
        key=lambda i: -_depth(nice, i),
    )
    for index in ordered:
        node = nice.nodes[index]
        if node.kind == "leaf":
            tables[index] = {()}
        elif node.kind == "introduce":
            (child,) = node.children
            relevant = facts_inside(node.bag, node.element)
            new_table = set()
            for assignment in tables[child]:
                mapping = dict(assignment)
                for value in values:
                    mapping[node.element] = value
                    if all(
                        tuple(mapping[e] for e in fact)
                        in target.relation(name)
                        for name, fact in relevant
                    ):
                        new_table.add(
                            tuple(sorted(mapping.items(), key=repr))
                        )
                del mapping[node.element]
            tables[index] = new_table
        elif node.kind == "forget":
            (child,) = node.children
            tables[index] = {
                tuple(
                    (e, v) for e, v in assignment if e != node.element
                )
                for assignment in tables[child]
            }
        else:  # join
            left, right = node.children
            tables[index] = tables[left] & tables[right]
        if not tables[index]:
            return False
    return bool(tables[0])


def _depth(nice: NiceDecomposition, index: int) -> int:
    """Distance from the root (node 0); memo-free, fine for small trees."""
    parents = {}
    for i, node in enumerate(nice.nodes):
        for child in node.children:
            parents[child] = i
    depth = 0
    while index in parents:
        index = parents[index]
        depth += 1
    return depth
