"""Bounded treewidth and constraint satisfaction (Section 5).

Tree decompositions, elimination-order heuristics, exact treewidth for
small inputs, and the width-parameterized homomorphism DP of Theorem 5.4.
"""

from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.dp import (
    homomorphism_exists_by_treewidth,
    solve_by_treewidth,
)
from repro.treewidth.exact import (
    exact_treewidth,
    exact_treewidth_graph,
    is_treewidth_at_most,
)
from repro.treewidth.nice import (
    NiceDecomposition,
    NiceNode,
    make_nice,
    solve_by_nice_dp,
)
from repro.treewidth.heuristics import (
    decompose,
    decomposition_from_order,
    elimination_order,
    treewidth_upper_bound,
)

__all__ = [
    "TreeDecomposition",
    "decompose",
    "decomposition_from_order",
    "elimination_order",
    "treewidth_upper_bound",
    "exact_treewidth",
    "exact_treewidth_graph",
    "is_treewidth_at_most",
    "solve_by_treewidth",
    "homomorphism_exists_by_treewidth",
    "NiceDecomposition",
    "NiceNode",
    "make_nice",
    "solve_by_nice_dp",
]
