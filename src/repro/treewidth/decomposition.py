"""Tree decompositions of relational structures (Section 5).

A tree decomposition of a structure ``A`` is a tree whose nodes are labeled
by bags of elements such that (1) every fact's elements lie together in
some bag, (2) the bags containing any given element form a subtree, and —
implicitly — every element occurs in some bag.  Its *width* is the maximum
bag size minus one.  Lemma 5.1: tree decompositions of ``A`` and of its
Gaifman graph coincide, so all graph-theoretic machinery applies verbatim.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.exceptions import DecompositionError
from repro.structures.structure import Structure

__all__ = ["TreeDecomposition"]

Element = Hashable


class TreeDecomposition:
    """An immutable tree decomposition: bags plus tree edges.

    ``bags`` is a sequence of element sets; ``edges`` connects bag indices.
    A single-bag decomposition needs no edges.  Validity with respect to a
    structure is checked by :meth:`validate`.
    """

    def __init__(
        self,
        bags: Sequence[Iterable[Element]],
        edges: Iterable[tuple[int, int]] = (),
    ) -> None:
        self.bags: tuple[frozenset[Element], ...] = tuple(
            frozenset(bag) for bag in bags
        )
        self.edges: tuple[tuple[int, int], ...] = tuple(
            (min(i, j), max(i, j)) for i, j in edges
        )
        if not self.bags:
            raise DecompositionError("a decomposition needs at least one bag")
        count = len(self.bags)
        for i, j in self.edges:
            if not (0 <= i < count and 0 <= j < count):
                raise DecompositionError(f"edge ({i}, {j}) out of range")
            if i == j:
                raise DecompositionError("self-loop in the decomposition tree")
        tree = self.tree()
        if not nx.is_tree(tree):
            raise DecompositionError("decomposition graph is not a tree")

    # -- basic views ------------------------------------------------------------

    def tree(self) -> nx.Graph:
        """The decomposition tree as a networkx graph over bag indices."""
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.bags)))
        graph.add_edges_from(self.edges)
        return graph

    @property
    def width(self) -> int:
        """Maximum bag size minus one."""
        return max(len(bag) for bag in self.bags) - 1

    def __len__(self) -> int:
        return len(self.bags)

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(bags={len(self.bags)}, width={self.width})"
        )

    # -- validity -----------------------------------------------------------------

    def covers_fact(self, fact: tuple[Element, ...]) -> bool:
        needed = set(fact)
        return any(needed <= bag for bag in self.bags)

    def validate(self, structure: Structure) -> None:
        """Raise :class:`DecompositionError` unless this is a valid tree
        decomposition of ``structure``."""
        covered: set[Element] = set()
        for bag in self.bags:
            covered.update(bag)
        missing = structure.universe - covered
        if missing:
            raise DecompositionError(
                f"elements missing from every bag: {sorted(map(repr, missing))}"
            )
        for name, fact in structure.facts():
            if not self.covers_fact(fact):
                raise DecompositionError(
                    f"fact {name}{fact!r} is not inside any bag"
                )
        # Connectivity: the bags containing each element form a subtree.
        tree = self.tree()
        for element in covered:
            nodes = [
                index
                for index, bag in enumerate(self.bags)
                if element in bag
            ]
            induced = tree.subgraph(nodes)
            if not nx.is_connected(induced):
                raise DecompositionError(
                    f"bags containing {element!r} are not connected"
                )

    def is_valid_for(self, structure: Structure) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(structure)
        except DecompositionError:
            return False
        return True

    # -- traversal --------------------------------------------------------------

    def rooted(self, root: int = 0) -> list[tuple[int, int | None]]:
        """Nodes in BFS order as ``(node, parent)`` pairs (root first)."""
        tree = self.tree()
        order: list[tuple[int, int | None]] = [(root, None)]
        seen = {root}
        frontier = [root]
        while frontier:
            new_frontier = []
            for node in frontier:
                for neighbour in sorted(tree.neighbors(node)):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        order.append((neighbour, node))
                        new_frontier.append(neighbour)
            frontier = new_frontier
        if len(seen) != len(self.bags):
            raise DecompositionError("decomposition tree is disconnected")
        return order

    def assign_facts(
        self, structure: Structure
    ) -> dict[int, list[tuple[str, tuple[Element, ...]]]]:
        """Assign every fact to one node whose bag covers it.

        Used by the dynamic-programming solver; raises on uncovered facts.
        """
        assignment: dict[int, list[tuple[str, tuple[Element, ...]]]] = {
            index: [] for index in range(len(self.bags))
        }
        for name, fact in structure.facts():
            needed = set(fact)
            for index, bag in enumerate(self.bags):
                if needed <= bag:
                    assignment[index].append((name, fact))
                    break
            else:
                raise DecompositionError(
                    f"fact {name}{fact!r} is not inside any bag"
                )
        return assignment
