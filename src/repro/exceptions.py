"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by the library derives from :class:`ReproError`,
so callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class VocabularyError(ReproError):
    """A structure, query, or program uses relation symbols inconsistently.

    Raised when arities clash, when two structures over supposedly the same
    vocabulary disagree on a symbol, or when a fact's width does not match
    its relation symbol.
    """


class ParseError(ReproError):
    """A textual query, program, or structure description is malformed."""


class NotBooleanError(ReproError):
    """An operation requiring a Boolean structure got a non-Boolean one.

    Boolean structures are structures whose universe is exactly ``{0, 1}``
    (Section 3 of the paper).
    """


class NotSchaeferError(ReproError):
    """A Schaefer-only algorithm was applied to a non-Schaefer structure."""


class DecompositionError(ReproError):
    """A tree decomposition is invalid or does not match its structure."""


class DatalogError(ReproError):
    """A Datalog program is malformed (unsafe in an unsupported way,
    inconsistent arities, undefined goal, ...)."""


class ServiceError(ReproError):
    """Base class for solve-service failures (:mod:`repro.service`)."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is not running."""


class ServiceOverloadedError(ServiceError):
    """Admission control refused a request: too many open requests.

    Raised synchronously by ``SolveService.submit`` so callers can shed
    load at the front door instead of queueing without bound.
    """


class SolveTimeoutError(ServiceError):
    """A request's per-request timeout elapsed before its solve finished.

    Only the *waiter* gives up: the underlying computation keeps running
    for any coalesced duplicates, and nothing about the timeout is
    cached, so a retry gets a correct answer.
    """
