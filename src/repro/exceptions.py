"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by the library derives from :class:`ReproError`,
so callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class VocabularyError(ReproError):
    """A structure, query, or program uses relation symbols inconsistently.

    Raised when arities clash, when two structures over supposedly the same
    vocabulary disagree on a symbol, or when a fact's width does not match
    its relation symbol.
    """


class ParseError(ReproError):
    """A textual query, program, or structure description is malformed."""


class NotBooleanError(ReproError):
    """An operation requiring a Boolean structure got a non-Boolean one.

    Boolean structures are structures whose universe is exactly ``{0, 1}``
    (Section 3 of the paper).
    """


class NotSchaeferError(ReproError):
    """A Schaefer-only algorithm was applied to a non-Schaefer structure."""


class DecompositionError(ReproError):
    """A tree decomposition is invalid or does not match its structure."""


class DatalogError(ReproError):
    """A Datalog program is malformed (unsafe in an unsupported way,
    inconsistent arities, undefined goal, ...)."""


class ResourceBudgetError(ReproError):
    """A computation refused to allocate a table its cost model says won't fit.

    Raised by the kernel's table-building engines (the ``n^v`` binding
    spaces of :mod:`repro.kernel.datalogk`, the bag tables of
    :mod:`repro.kernel.decomp`) *before* the allocation happens, so a
    planner or serving layer can degrade to a semantically equivalent
    route (search) instead of letting a worker process OOM.  Never
    retryable as-is: the same request hits the same bound.
    """


class FaultInjectedError(ReproError):
    """A deterministic fault-injection point fired (:mod:`repro.faultinject`).

    Only ever raised when a fault plan is installed — production traffic
    cannot see it.  The service treats it like any transient kernel
    failure: retryable, counted against the kernel circuit breaker.
    """


class ServiceError(ReproError):
    """Base class for solve-service failures (:mod:`repro.service`)."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is not running."""


class ServiceOverloadedError(ServiceError):
    """Admission control refused a request: too many open requests.

    Raised synchronously by ``SolveService.submit`` so callers can shed
    load at the front door instead of queueing without bound.
    """


class SolveTimeoutError(ServiceError):
    """A request's deadline elapsed before its solve finished.

    Raised on two paths that look identical to the caller: the *waiter's*
    ``asyncio.wait_for`` firing, and — with deadline propagation — the
    computation itself observing an expired
    :class:`repro.core.cancellation.Deadline` at a kernel checkpoint and
    unwinding, which frees the worker instead of abandoning it.  Nothing
    about a timeout is cached, so a retry gets a correct answer.
    """


class WorkerCrashedError(ServiceError):
    """A process-pool worker died while executing (or awaiting) a solve.

    The typed wrapper around a mid-flight ``BrokenProcessPool``: the
    supervisor respawns the pool and re-dispatches in-flight requests,
    and only raises this when the retry budget, the request deadline, or
    the pool's restart budget is exhausted.  Retryable by construction —
    the crash says nothing about the instance being solved.
    """


class EdgeError(ServiceError):
    """Base class for network-edge failures (:mod:`repro.edge`)."""


class EdgeProtocolError(EdgeError):
    """A request violated the edge wire protocol.

    Carries the HTTP ``status`` the edge answers with (400 for malformed
    framing or bodies, 404/405 for unroutable requests, 408 for a body
    that never arrived, 413 for an oversized payload, 415 for a wrong
    content type, ...).  Always a *request*-level failure: the
    connection that sent it is answered and — except where the framing
    itself is unrecoverable — kept open, and the server keeps serving.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ShardCrashedError(EdgeError):
    """A shard worker process died with requests in flight.

    The edge analogue of :class:`WorkerCrashedError`: the router fails
    the shard's in-flight requests with this, respawns the shard
    (single-flight, backed off, warm from the shard's store partition),
    and retries within the request's budget.  Only surfaces to a client
    — as a typed 503 — when the retry budget is exhausted.
    """


class ArtifactStoreError(ReproError):
    """The persistent artifact store cannot be opened or written.

    Raised for environment-level problems — another writer holds the
    single-writer lock, the directory is not writable — never for
    corrupted content, which the store recovers from silently (see
    :class:`StoreCorruptionError` for the read-side contract).
    """


class StoreCorruptionError(ArtifactStoreError):
    """A store record failed its integrity check.

    Raised internally when a record is torn, fails its SHA-256, or
    decodes to the wrong artifact type.  Callers of the public store API
    never see it: ``ArtifactStore.get`` converts it to a miss (the
    record is dropped and quarantined; the caller recompiles), which is
    exactly the "never serve a record that fails its checksum" rule.
    """
