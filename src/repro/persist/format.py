"""The on-disk format of the artifact store: header, records, scanning.

The store file is a versioned header followed by a flat sequence of
self-checking records — the simplest layout that is *append-friendly*
(publishing an artifact is one positioned write at the tail) while still
letting recovery decide, byte by byte, where the trustworthy prefix
ends::

    ┌──────────────────────────── header (16 bytes) ───────────────────┐
    │ magic "RPRSTORE" │ version u16 │ flags u16 │ reserved (4 bytes)  │
    ├──────────────────────────── record  (repeated) ──────────────────┤
    │ kind_len u16 │ key_len u16 │ payload_len u32                     │
    │ sha256(kind ‖ key ‖ payload)                  (32 bytes)         │
    │ kind (utf-8) │ key (utf-8) │ payload (opaque bytes)              │
    └──────────────────────────────────────────────────────────────────┘

All integers are big-endian.  Two failure modes are distinguishable and
both are recoverable by truncating to the last good record boundary:

* **torn write** — the file ends mid-record (a writer was SIGKILLed
  between the length prefix and the last payload byte).  Detected by a
  promised-length shortfall against EOF.
* **bit flip / overwrite** — the record is complete but its SHA-256
  does not match.  Detected before a single payload byte is decoded;
  a record failing its checksum is *never* served.

Resynchronisation past a corrupt record is deliberately not attempted:
a flipped bit inside a length field would make every later "record
boundary" a guess, and a store that serves guessed artifacts is worse
than a cold cache.  Recovery keeps the verified prefix (warm) and
quarantines the tail (cold — recompilation covers it).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import BinaryIO

from repro.exceptions import StoreCorruptionError

__all__ = [
    "HEADER",
    "HEADER_SIZE",
    "MAGIC",
    "RECORD_PREFIX",
    "VERSION",
    "RecordInfo",
    "ScanReport",
    "encode_record",
    "read_record_at",
    "scan_log",
]

MAGIC = b"RPRSTORE"
VERSION = 1

_HEADER_STRUCT = struct.Struct("!8sHH4x")
HEADER_SIZE = _HEADER_STRUCT.size  # 16
HEADER = _HEADER_STRUCT.pack(MAGIC, VERSION, 0)

_PREFIX_STRUCT = struct.Struct("!HHI")
_DIGEST_SIZE = 32
#: Fixed bytes in front of every record's variable part.
RECORD_PREFIX = _PREFIX_STRUCT.size + _DIGEST_SIZE  # 40

#: Sanity bounds applied before trusting a length prefix: a corrupt
#: prefix must not send the scanner on a gigabyte-sized goose chase.
MAX_KIND_LEN = 64
MAX_KEY_LEN = 1024
MAX_PAYLOAD_LEN = 1 << 31


@dataclass(frozen=True)
class RecordInfo:
    """One verified record's coordinates inside the log."""

    offset: int
    kind: str
    key: str
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class ScanReport:
    """What a full scan of the log found.

    ``good_end`` is the offset one past the last verified record — the
    truncation point recovery uses.  ``failure`` is ``None`` for a clean
    log, else one of ``"bad-header"``, ``"torn-record"``,
    ``"bad-length"``, or ``"checksum"`` with ``failure_offset`` naming
    where trust ended.
    """

    records: tuple[RecordInfo, ...]
    good_end: int
    failure: str | None = None
    failure_offset: int | None = None

    @property
    def clean(self) -> bool:
        return self.failure is None


def encode_record(kind: str, key: str, payload: bytes) -> bytes:
    """One self-checking record, ready to append."""
    kind_b = kind.encode()
    key_b = key.encode()
    if len(kind_b) > MAX_KIND_LEN:
        raise ValueError(f"artifact kind too long: {kind!r}")
    if len(key_b) > MAX_KEY_LEN:
        raise ValueError(f"artifact key too long ({len(key_b)} bytes)")
    if len(payload) > MAX_PAYLOAD_LEN:
        raise ValueError(f"artifact payload too large ({len(payload)} bytes)")
    digest = hashlib.sha256(kind_b + key_b + payload).digest()
    return (
        _PREFIX_STRUCT.pack(len(kind_b), len(key_b), len(payload))
        + digest
        + kind_b
        + key_b
        + payload
    )


def _parse_record(
    blob: bytes, offset: int
) -> tuple[str, str, bytes, int] | str:
    """Parse one record starting at ``offset`` of ``blob``.

    Returns ``(kind, key, payload, end_offset)``, or a failure label
    (the :class:`ScanReport` vocabulary) when the bytes cannot be a
    trustworthy record.
    """
    if offset + RECORD_PREFIX > len(blob):
        return "torn-record"
    kind_len, key_len, payload_len = _PREFIX_STRUCT.unpack_from(blob, offset)
    if (
        kind_len == 0
        or kind_len > MAX_KIND_LEN
        or key_len > MAX_KEY_LEN
        or payload_len > MAX_PAYLOAD_LEN
    ):
        return "bad-length"
    body_start = offset + RECORD_PREFIX
    end = body_start + kind_len + key_len + payload_len
    if end > len(blob):
        return "torn-record"
    digest = blob[offset + _PREFIX_STRUCT.size : body_start]
    body = blob[body_start:end]
    if hashlib.sha256(body).digest() != digest:
        return "checksum"
    kind_b = body[:kind_len]
    key_b = body[kind_len : kind_len + key_len]
    try:
        kind = kind_b.decode()
        key = key_b.decode()
    except UnicodeDecodeError:
        return "checksum"
    return kind, key, bytes(body[kind_len + key_len :]), end


def scan_log(blob: bytes) -> ScanReport:
    """Verify ``blob`` record by record; stop at the first broken one."""
    if len(blob) < HEADER_SIZE or blob[:HEADER_SIZE] != HEADER:
        return ScanReport((), HEADER_SIZE, "bad-header", 0)
    records: list[RecordInfo] = []
    offset = HEADER_SIZE
    while offset < len(blob):
        parsed = _parse_record(blob, offset)
        if isinstance(parsed, str):
            return ScanReport(tuple(records), offset, parsed, offset)
        kind, key, payload, end = parsed
        records.append(RecordInfo(offset, kind, key, end - offset))
        offset = end
    return ScanReport(tuple(records), offset)


def read_record_at(fh: BinaryIO, offset: int) -> tuple[str, str, bytes]:
    """Re-read and re-verify one record (the serving path).

    The scan at open time verified this offset once, but the file can
    rot *after* open — the contract is that a record failing its
    checksum is never served, so the digest is checked again on every
    read.  Raises :class:`StoreCorruptionError` on any mismatch.
    """
    fh.seek(offset)
    prefix = fh.read(RECORD_PREFIX)
    if len(prefix) < RECORD_PREFIX:
        raise StoreCorruptionError(f"record at offset {offset} is torn")
    kind_len, key_len, payload_len = _PREFIX_STRUCT.unpack_from(prefix, 0)
    if (
        kind_len == 0
        or kind_len > MAX_KIND_LEN
        or key_len > MAX_KEY_LEN
        or payload_len > MAX_PAYLOAD_LEN
    ):
        raise StoreCorruptionError(
            f"record at offset {offset} has an implausible length prefix"
        )
    digest = prefix[_PREFIX_STRUCT.size :]
    body = fh.read(kind_len + key_len + payload_len)
    if len(body) < kind_len + key_len + payload_len:
        raise StoreCorruptionError(f"record at offset {offset} is torn")
    if hashlib.sha256(body).digest() != digest:
        raise StoreCorruptionError(
            f"record at offset {offset} fails its checksum"
        )
    kind = body[:kind_len].decode()
    key = body[kind_len : kind_len + key_len].decode()
    return kind, key, bytes(body[kind_len + key_len :])
