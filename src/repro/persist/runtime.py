"""The process-wide default store handle.

Plane-level read-through sites that have no service object in scope —
the canonical-Datalog ``lru_cache`` in
:mod:`repro.datalog.canonical_program` is the one today — consult this
handle.  The solve service installs its store here on ``start()`` and
restores the previous value on ``stop()``; pool workers install their
read-only store in ``worker_initializer``.  Nothing in the library
*requires* a default store: every consumer treats ``None`` as "compute
as before".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.persist.store import ArtifactStore

__all__ = ["default_store", "set_default_store"]

_default: "ArtifactStore | None" = None


def default_store() -> "ArtifactStore | None":
    """The store ambient consumers read through, or ``None``."""
    return _default


def set_default_store(
    store: "ArtifactStore | None",
) -> "ArtifactStore | None":
    """Install ``store`` as the process default; returns the previous one.

    Callers that install a store for a bounded lifetime (the service,
    tests) should restore the returned previous value when done.
    """
    global _default
    previous = _default
    _default = store
    return previous
