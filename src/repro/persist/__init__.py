"""Crash-safe persistence of compiled artifacts (``repro.persist``).

Everything expensive the solve path produces is a pure function of a
canonical fingerprint — compiled bitset targets, Schaefer
classifications, tree decompositions, compiled queries, canonical
Datalog programs.  This package persists those artifacts across process
lifetimes so a restart (or a supervised worker respawn) warms from disk
instead of recompiling:

* :mod:`repro.persist.format` — the append-friendly on-disk format:
  versioned header, per-record length + SHA-256, scan/recovery
  primitives;
* :mod:`repro.persist.codec` — the one canonical serializer per
  artifact kind (plain pickle, shared with the process-pool payload
  path so the two cannot drift);
* :mod:`repro.persist.store` — :class:`ArtifactStore`: single-writer
  locking, atomic publish, quarantine-and-truncate recovery, bounded
  compaction, obs-plane telemetry;
* :mod:`repro.persist.runtime` — the process-wide default store handle
  ambient read-through sites consult.

The service integration lives in :mod:`repro.service`:
``ServiceConfig(store_path=...)`` / ``REPRO_STORE`` opens the store at
startup, warms the caches, hands the path to pool workers (read-only),
and ``SolveService.drain()`` flushes and closes it on the way out.
"""

from repro.persist.codec import (
    ARTIFACT_KINDS,
    datalog_key,
    decode_artifact,
    encode_artifact,
)
from repro.persist.runtime import default_store, set_default_store
from repro.persist.store import ArtifactStore, StoreStats

__all__ = [
    "ARTIFACT_KINDS",
    "ArtifactStore",
    "StoreStats",
    "datalog_key",
    "decode_artifact",
    "default_store",
    "encode_artifact",
    "set_default_store",
]
