"""One canonical serializer for every artifact kind.

The rule (and the bugfix this module pins): the bytes the store persists
are produced by the *same* serializer the process pool already uses —
plain pickle over the artifact object — so the two paths cannot drift.
``Structure.__getstate__`` keeps only the mathematical content plus the
fingerprint; the compiled classes add explicit ``__getstate__`` /
``__setstate__`` pairs (:class:`repro.kernel.compile.CompiledTarget`,
:class:`repro.cq.compiled.CompiledQuery`, …) that restore their slots
without re-running compilation and re-attach themselves to the carried
structure's / query's memo slot.  A second, store-private encoding would
have to replicate those invariants by hand and would silently diverge
the first time one side changed.

Kinds and their key spaces:

========== ============================== ===============================
kind       payload type                   key
========== ============================== ===============================
ctarget    CompiledTarget                 canonical_fingerprint(B)
classification SchaeferClass              canonical_fingerprint(B)
decomposition  TreeDecomposition          canonical_fingerprint(A)
query      CompiledQuery                  query_fingerprint(Q)
datalog    DatalogProgram                 fingerprint(B) + ":k=" + k
========== ============================== ===============================

Every key is a pure function of mathematical content (repr-based SHA-256
digests, never ``hash()``), so keys are stable across interpreter
restarts and ``PYTHONHASHSEED`` values — the property
``tests/test_fingerprint_stability.py`` pins, without which a persistent
store would silently never hit.
"""

from __future__ import annotations

import pickle

from repro.boolean.schaefer import SchaeferClass
from repro.cq.compiled import CompiledQuery
from repro.datalog.program import DatalogProgram
from repro.exceptions import StoreCorruptionError
from repro.kernel.compile import CompiledTarget
from repro.treewidth.decomposition import TreeDecomposition

__all__ = [
    "ARTIFACT_KINDS",
    "PICKLE_PROTOCOL",
    "datalog_key",
    "decode_artifact",
    "encode_artifact",
]

#: Fixed so two interpreter versions sharing one store agree on bytes.
PICKLE_PROTOCOL = 5

#: Artifact kind → the type its payload must decode to.  Decoding
#: enforces this: a record whose checksum matches but whose payload is
#: the wrong type (a kind/key mix-up, a code-version skew) is treated
#: exactly like corruption — dropped, never served.
ARTIFACT_KINDS: dict[str, type] = {
    "ctarget": CompiledTarget,
    "classification": SchaeferClass,
    "decomposition": TreeDecomposition,
    "query": CompiledQuery,
    "datalog": DatalogProgram,
}

#: The kinds the structure cache warms eagerly at service startup
#: (query artifacts warm the service-level memo instead, and Datalog
#: programs warm their ``lru_cache`` lazily through the runtime store).
STRUCTURE_KINDS = ("ctarget", "classification", "decomposition")


def datalog_key(target_fingerprint: str, k: int) -> str:
    """The store key of the canonical k-Datalog program ρ_B."""
    return f"{target_fingerprint}:k={k}"


def encode_artifact(kind: str, artifact: object) -> bytes:
    """Serialize ``artifact`` with the one canonical serializer."""
    expected = ARTIFACT_KINDS.get(kind)
    if expected is None:
        raise ValueError(f"unknown artifact kind: {kind!r}")
    if not isinstance(artifact, expected):
        raise TypeError(
            f"artifact kind {kind!r} expects {expected.__name__}, "
            f"got {type(artifact).__name__}"
        )
    return pickle.dumps(artifact, protocol=PICKLE_PROTOCOL)


def decode_artifact(kind: str, payload: bytes) -> object:
    """Deserialize a record payload, enforcing the kind's type.

    Raises :class:`StoreCorruptionError` for anything that does not
    round-trip cleanly — the store converts that to a miss plus a
    quarantine, so a bad record degrades to recompilation, never to a
    wrong answer.
    """
    expected = ARTIFACT_KINDS.get(kind)
    if expected is None:
        raise StoreCorruptionError(f"unknown artifact kind: {kind!r}")
    try:
        artifact = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 — any unpickle failure is corruption
        raise StoreCorruptionError(
            f"artifact of kind {kind!r} failed to decode: {exc!r}"
        ) from exc
    if not isinstance(artifact, expected):
        raise StoreCorruptionError(
            f"artifact of kind {kind!r} decoded to "
            f"{type(artifact).__name__}, expected {expected.__name__}"
        )
    return artifact
