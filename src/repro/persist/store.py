"""The crash-safe, fingerprint-keyed artifact store.

:class:`ArtifactStore` persists the expensive pure-function artifacts of
the solve path — kernel compilations, Schaefer classifications, tree
decompositions, compiled queries, canonical Datalog programs — keyed by
the same canonical fingerprints the in-memory caches use.  Because every
artifact is a deterministic function of its fingerprint (Kolaitis–
Vardi's canonical structures and cores are mathematical objects, not
session state), a record written by one process generation is valid for
every later one: a restart warms instead of recompiling.

Durability discipline, in order of paranoia:

* **Atomic creation** — a new store file is materialised as
  ``header → temp file → fsync → rename``, so no reader can ever
  observe a half-written header.
* **Single writer** — ``rw`` mode takes an ``fcntl`` lock on a sidecar
  lock file (``LOCK_EX | LOCK_NB``); a second writer fails fast with
  :class:`~repro.exceptions.ArtifactStoreError` instead of interleaving
  appends.  The kernel releases the lock when the holder dies — SIGKILL
  included — which is what makes crash-respawn cycles safe without a
  lease protocol.  ``ro`` mode (pool workers) takes no lock at all.
* **Self-checking records** — every append carries its own length
  prefix and SHA-256 (:mod:`repro.persist.format`); the digest is
  re-verified on *every* read, so a record that rots after open is
  still never served.
* **Recovery** — opening scans the log; the first torn or corrupt
  record ends the trusted prefix.  In ``rw`` mode the untrusted tail is
  copied into ``quarantine/`` (evidence for the operator), the log is
  truncated back to the last good boundary, and a structured WARNING is
  logged.  Served state is therefore *warm where possible, cold where
  not* — and the cold part falls back to recompilation transparently.
* **Bounded size** — past ``max_bytes`` the log is compacted: live
  records (one per key, oldest evicted first if still over budget) are
  rewritten through the same temp-file + fsync + rename dance.

Appends flush to the OS on every ``put`` (surviving a SIGKILL of the
writer, since the page cache outlives the process) and ``fsync`` on
:meth:`flush` / :meth:`close` (surviving power loss).  Telemetry rides
the existing obs plane: ``repro_store_*`` metric families through a
scrape-time collector, and ``store.hit`` / ``store.miss`` /
``store.corrupt`` / ``store.flush`` events on the flight recorder.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

try:  # pragma: no cover — POSIX everywhere we run; gate anyway
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.exceptions import ArtifactStoreError, StoreCorruptionError
from repro.obs.logs import get_logger
from repro.obs.metrics import Counter, Gauge, default_registry
from repro.obs.recorder import FlightRecorder, default_recorder
from repro.persist import format as _format
from repro.persist.codec import (
    STRUCTURE_KINDS,
    decode_artifact,
    encode_artifact,
)

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.cq.compiled import CompiledQuery

__all__ = ["ArtifactStore", "StoreStats"]

_log = get_logger("persist")


@dataclass(frozen=True)
class StoreStats:
    """Cumulative counters of one :class:`ArtifactStore` handle."""

    hits: int = 0
    misses: int = 0
    appends: int = 0
    corrupt_records: int = 0
    quarantined_bytes: int = 0
    flushes: int = 0
    compactions: int = 0
    #: Wall-clock milliseconds the opening scan + recovery took.
    load_ms: float = 0.0
    #: Artifacts seeded into caches by :meth:`ArtifactStore.warm_cache`.
    warmed: int = 0


class ArtifactStore:
    """A single-directory, append-only artifact store (see module doc).

    Parameters
    ----------
    path:
        The store *directory* (created in ``rw`` mode if missing); the
        log, the lock file, and the quarantine live inside it.
    mode:
        ``"rw"`` — the single writer: takes the lock, recovers the log
        (quarantine + truncate), appends.  ``"ro"`` — a reader: no
        lock, no mutation ever; a broken tail is simply not indexed, so
        a pool worker can open the file a live writer is appending to.
    max_bytes:
        Compaction threshold for the log file; ``None`` means unbounded.
    recorder:
        The flight recorder for ``store.*`` events (default: the
        process-wide one).
    register_metrics:
        Register a scrape-time collector for the ``repro_store_*``
        families on the default registry (unregistered on close).
    """

    LOG_NAME = "artifacts.log"
    LOCK_NAME = "store.lock"
    QUARANTINE_DIR = "quarantine"

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        mode: str = "rw",
        max_bytes: int | None = None,
        recorder: FlightRecorder | None = None,
        register_metrics: bool = True,
    ) -> None:
        if mode not in ("rw", "ro"):
            raise ValueError(f"mode must be 'rw' or 'ro', got {mode!r}")
        if max_bytes is not None and max_bytes < _format.HEADER_SIZE:
            raise ValueError("max_bytes is smaller than the store header")
        self.path = os.fspath(path)
        self.mode = mode
        self.max_bytes = max_bytes
        self.recorder = recorder if recorder is not None else default_recorder()
        self._lock = threading.RLock()
        self._fh = None
        self._lock_fh = None
        self._closed = False
        #: ``(kind, key) → (offset, length)`` of the *latest* record.
        self._index: dict[tuple[str, str], tuple[int, int]] = {}
        self._end = _format.HEADER_SIZE
        self._quarantine_seq = 0
        self._stats = StoreStats()
        self._registry = default_registry() if register_metrics else None
        started = time.perf_counter()
        try:
            self._open()
        except ArtifactStoreError:
            self._release()
            raise
        self._stats = replace(
            self._stats, load_ms=(time.perf_counter() - started) * 1000
        )
        if self._registry is not None:
            self._registry.register_collector(self._metrics_collector)

    # -- opening and recovery -------------------------------------------------

    @property
    def log_path(self) -> str:
        return os.path.join(self.path, self.LOG_NAME)

    @property
    def quarantine_path(self) -> str:
        return os.path.join(self.path, self.QUARANTINE_DIR)

    def _open(self) -> None:
        log_path = self.log_path
        if self.mode == "rw":
            try:
                os.makedirs(self.path, exist_ok=True)
                self._acquire_writer_lock()
                if not os.path.exists(log_path):
                    self._publish_atomically(log_path, _format.HEADER)
                self._fh = open(log_path, "r+b")
            except OSError as exc:
                raise ArtifactStoreError(
                    f"cannot open store at {self.path!r}: {exc}"
                ) from exc
        else:
            if not os.path.exists(log_path):
                return  # an empty read-only store: every get is a miss
            try:
                self._fh = open(log_path, "rb")
            except OSError as exc:
                raise ArtifactStoreError(
                    f"cannot open store at {self.path!r}: {exc}"
                ) from exc
        blob = self._fh.read()
        report = _format.scan_log(blob)
        if not report.clean:
            self._recover(blob, report)
        for record in report.records:
            # Later records win: the log is append-only, so replays of
            # the same key (rare — puts skip present keys) supersede.
            self._index[(record.kind, record.key)] = (
                record.offset,
                record.length,
            )
        self._end = report.good_end

    def _recover(self, blob: bytes, report: _format.ScanReport) -> None:
        """Quarantine and drop the untrusted tail (``rw``); log either way."""
        tail = blob[report.good_end :]
        quarantined = 0
        if self.mode == "rw" and tail:
            quarantined = len(tail)
            name = self._quarantine_name(report.failure or "tail")
            try:
                os.makedirs(self.quarantine_path, exist_ok=True)
                self._publish_atomically(name, tail)
            except OSError:  # pragma: no cover — quarantine is best-effort
                quarantined = 0
            self._fh.seek(report.good_end)
            self._fh.truncate(report.good_end)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._stats = replace(
            self._stats,
            corrupt_records=self._stats.corrupt_records + 1,
            quarantined_bytes=self._stats.quarantined_bytes + quarantined,
        )
        self.recorder.record(
            "store.corrupt",
            reason=report.failure,
            offset=report.failure_offset,
            quarantined_bytes=len(tail),
            recovered_records=len(report.records),
        )
        _log.warning(
            "store recovery at %s: %s at offset %s; kept %d records, "
            "quarantined %d bytes",
            self.path,
            report.failure,
            report.failure_offset,
            len(report.records),
            len(tail),
            extra={
                "event": "store.corrupt",
                "store": self.path,
                "reason": report.failure,
                "offset": report.failure_offset,
                "recovered_records": len(report.records),
                "quarantined_bytes": len(tail),
            },
        )

    def _quarantine_name(self, label: str) -> str:
        self._quarantine_seq += 1
        return os.path.join(
            self.quarantine_path,
            f"{label}-{os.getpid()}-{self._quarantine_seq}.bin",
        )

    def _publish_atomically(self, destination: str, payload: bytes) -> None:
        """temp file → fsync → rename: no reader sees a partial file."""
        directory = os.path.dirname(destination)
        temp = f"{destination}.tmp.{os.getpid()}"
        with open(temp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(temp, destination)
        self._fsync_dir(directory)

    @staticmethod
    def _fsync_dir(directory: str) -> None:
        try:  # pragma: no cover — platform-dependent
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _acquire_writer_lock(self) -> None:
        lock_path = os.path.join(self.path, self.LOCK_NAME)
        self._lock_fh = open(lock_path, "a+b")
        if fcntl is None:  # pragma: no cover — non-POSIX fallback
            return
        try:
            fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            self._lock_fh.close()
            self._lock_fh = None
            raise ArtifactStoreError(
                f"another writer holds the store lock at {lock_path!r}"
            ) from exc

    def _release(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover
                pass
            self._fh = None
        if self._lock_fh is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
            self._lock_fh.close()
            self._lock_fh = None

    # -- the key/value surface ------------------------------------------------

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return self._stats

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, kind_key: tuple[str, str]) -> bool:
        with self._lock:
            return kind_key in self._index

    def size_bytes(self) -> int:
        with self._lock:
            return self._end

    def keys(self, kind: str | None = None) -> list[tuple[str, str]]:
        """The indexed ``(kind, key)`` pairs, insertion-ordered."""
        with self._lock:
            pairs = list(self._index)
        if kind is None:
            return pairs
        return [pair for pair in pairs if pair[0] == kind]

    def get(self, kind: str, key: str) -> object | None:
        """The stored artifact, or ``None`` (miss *or* failed checksum).

        A record that fails verification on this read — even though the
        opening scan once accepted it — is dropped from the index,
        counted as corrupt, and reported; the caller recomputes.  The
        one hard rule: no artifact is ever returned from bytes that do
        not hash to their recorded digest.
        """
        with self._lock:
            located = self._index.get((kind, key))
            if located is None or self._fh is None or self._closed:
                self._stats = replace(
                    self._stats, misses=self._stats.misses + 1
                )
                self.recorder.record(
                    "store.miss", artifact=kind, key=key[:16]
                )
                return None
            offset, _length = located
            try:
                read_kind, read_key, payload = _format.read_record_at(
                    self._fh, offset
                )
                if (read_kind, read_key) != (kind, key):
                    raise StoreCorruptionError(
                        f"index points at a record for "
                        f"({read_kind!r}, {read_key[:16]!r}…)"
                    )
                artifact = decode_artifact(kind, payload)
            except StoreCorruptionError as exc:
                del self._index[(kind, key)]
                self._stats = replace(
                    self._stats,
                    corrupt_records=self._stats.corrupt_records + 1,
                )
                self.recorder.record(
                    "store.corrupt",
                    artifact=kind,
                    key=key[:16],
                    error=str(exc),
                )
                _log.warning(
                    "store record dropped at %s: %s",
                    self.path,
                    exc,
                    extra={
                        "event": "store.corrupt",
                        "store": self.path,
                        "kind": kind,
                        "key": key,
                    },
                )
                return None
            self._stats = replace(self._stats, hits=self._stats.hits + 1)
            self.recorder.record(
                "store.hit", artifact=kind, key=key[:16]
            )
            return artifact

    def put(self, kind: str, key: str, artifact: object) -> bool:
        """Append one artifact; ``True`` if a record was written.

        No-ops (returning ``False``) in ``ro`` mode, after close, and
        when the key is already present — artifacts are pure functions
        of their fingerprint keys, so a second write could only store
        the same mathematical content again.
        """
        with self._lock:
            if self.mode != "rw" or self._closed or self._fh is None:
                return False
            if (kind, key) in self._index:
                return False
            record = _format.encode_record(
                kind, key, encode_artifact(kind, artifact)
            )
            self._fh.seek(self._end)
            self._fh.write(record)
            # Reaches the OS page cache now: a SIGKILLed writer loses at
            # most the in-flight record, never an acknowledged one.
            self._fh.flush()
            self._index[(kind, key)] = (self._end, len(record))
            self._end += len(record)
            self._stats = replace(
                self._stats, appends=self._stats.appends + 1
            )
            if self.max_bytes is not None and self._end > self.max_bytes:
                self._compact()
            return True

    def flush(self) -> None:
        """fsync the log: acknowledged records survive power loss."""
        with self._lock:
            if self.mode != "rw" or self._closed or self._fh is None:
                return
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._stats = replace(
                self._stats, flushes=self._stats.flushes + 1
            )
            self.recorder.record(
                "store.flush", records=len(self._index), bytes=self._end
            )

    def close(self) -> None:
        """Flush, release the writer lock, unregister the collector."""
        with self._lock:
            if self._closed:
                return
            if self.mode == "rw" and self._fh is not None:
                self.flush()
            self._closed = True
            self._release()
        if self._registry is not None:
            self._registry.unregister_collector(self._metrics_collector)

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- compaction -----------------------------------------------------------

    def _compact(self) -> None:
        """Rewrite live records; evict oldest keys while over budget.

        Runs under the store lock.  The rewrite goes through the same
        temp-file + fsync + rename publish as creation, so a crash
        mid-compaction leaves the *old* log fully intact.
        """
        assert self._fh is not None and self.max_bytes is not None
        survivors: list[tuple[tuple[str, str], bytes]] = []
        total = _format.HEADER_SIZE
        # Newest-first keep, then restore insertion order: when even the
        # deduplicated log is over budget, the oldest artifacts go.
        for pair, (offset, length) in reversed(list(self._index.items())):
            if total + length > self.max_bytes:
                continue
            self._fh.seek(offset)
            survivors.append((pair, self._fh.read(length)))
            total += length
        survivors.reverse()
        payload = b"".join(
            [_format.HEADER] + [record for _, record in survivors]
        )
        self._publish_atomically(self.log_path, payload)
        self._fh.close()
        self._fh = open(self.log_path, "r+b")
        self._index.clear()
        offset = _format.HEADER_SIZE
        for pair, record in survivors:
            self._index[pair] = (offset, len(record))
            offset += len(record)
        self._end = offset
        self._stats = replace(
            self._stats,
            compactions=self._stats.compactions + 1,
            flushes=self._stats.flushes + 1,
        )
        self.recorder.record(
            "store.flush",
            records=len(self._index),
            bytes=self._end,
            compaction=True,
        )

    # -- cache warming --------------------------------------------------------

    def warm_cache(self, cache) -> int:
        """Eagerly seed a structure cache with every structure artifact.

        ``cache`` is anything with the ``seed(kind, fingerprint, value)``
        surface (:class:`repro.core.pipeline.StructureCache` and the
        service's sharded cache both qualify).  Returns the number of
        artifacts seeded; records that fail verification are skipped —
        they count as corrupt, and the cache simply stays cold there.
        """
        warmed = 0
        for kind, key in self.keys():
            if kind not in STRUCTURE_KINDS:
                continue
            artifact = self.get(kind, key)
            if artifact is None:
                continue
            cache.seed(kind, key, artifact)
            warmed += 1
        with self._lock:
            self._stats = replace(
                self._stats, warmed=self._stats.warmed + warmed
            )
        return warmed

    def query_artifacts(self) -> Iterator[tuple[str, "CompiledQuery"]]:
        """The stored compiled-query artifacts as ``(fingerprint, CQ)``."""
        for kind, key in self.keys("query"):
            artifact = self.get(kind, key)
            if artifact is not None:
                yield key, artifact  # type: ignore[misc]

    # -- telemetry ------------------------------------------------------------

    def _metrics_collector(self):
        """Scrape-time ``repro_store_*`` view of the counters."""
        stats = self.stats
        hits = Counter(
            "repro_store_hits_total",
            "Artifact-store reads served from a verified record.",
        )
        hits.inc(stats.hits)
        misses = Counter(
            "repro_store_misses_total",
            "Artifact-store reads that fell back to recomputation.",
        )
        misses.inc(stats.misses)
        corrupt = Counter(
            "repro_store_corrupt_records_total",
            "Records dropped for failing integrity verification.",
        )
        corrupt.inc(stats.corrupt_records)
        appends = Counter(
            "repro_store_appends_total",
            "Artifact records appended to the store log.",
        )
        appends.inc(stats.appends)
        flushes = Counter(
            "repro_store_flushes_total",
            "fsync flushes (explicit, close-time, and compactions).",
        )
        flushes.inc(stats.flushes)
        size = Gauge(
            "repro_store_bytes", "Current size of the store log in bytes."
        )
        size.set(self.size_bytes())
        records = Gauge(
            "repro_store_records", "Live records in the store index."
        )
        records.set(len(self))
        load = Gauge(
            "repro_store_load_ms",
            "Milliseconds the opening scan and recovery took.",
        )
        load.set(stats.load_ms)
        return (hits, misses, corrupt, appends, flushes, size, records, load)
