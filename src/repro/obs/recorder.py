"""Flight recorder: a bounded ring buffer of lifecycle events.

Black-box style: the service (and the resilience layer under it) calls
:meth:`FlightRecorder.record` at every interesting transition — request
admitted / completed / failed, retry scheduled, breaker flipped, worker
crashed, budget tripped — and the recorder keeps the most recent
``capacity`` events with a global sequence number and a monotonic
timestamp.  Nothing is formatted until someone asks (:meth:`dump` /
:meth:`to_json`), so the recording path is one lock and one ``dict``.

The chaos suite asserts against the recorder: every injected worker
crash and every breaker transition observed by :class:`ServiceStats`
must have a matching event, which is how we know the black box would
actually explain a real incident.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any

__all__ = ["FlightRecorder", "default_recorder"]

_ENV_CAPACITY = "REPRO_RECORDER_SIZE"


class FlightRecorder:
    """Thread-safe bounded log of structured lifecycle events."""

    DEFAULT_CAPACITY = 2048

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            raw = os.environ.get(_ENV_CAPACITY)
            capacity = int(raw) if raw else self.DEFAULT_CAPACITY
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    def record(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Append one event; returns the stored dict (already sequenced)."""
        event: dict[str, Any] = {
            "seq": 0,  # patched under the lock
            "ts": time.monotonic(),
            "kind": kind,
        }
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
        return event

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        """A snapshot of buffered events, optionally filtered by kind."""
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [event for event in snapshot if event["kind"] == kind]

    def counts(self) -> dict[str, int]:
        """Buffered events per kind (after ring eviction)."""
        out: dict[str, int] = {}
        for event in self.events():
            out[event["kind"]] = out.get(event["kind"], 0) + 1
        return out

    @property
    def dropped(self) -> int:
        """Events evicted by the ring since construction."""
        with self._lock:
            return self._dropped

    @property
    def total_recorded(self) -> int:
        with self._lock:
            return self._seq

    def dump(self) -> dict[str, Any]:
        """A JSON-ready snapshot — what gets attached to error reports."""
        with self._lock:
            events = list(self._events)
            return {
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self._dropped,
                "events": events,
            }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.dump(), indent=indent, default=str)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_DEFAULT_RECORDER = FlightRecorder()


def default_recorder() -> FlightRecorder:
    """The process-wide recorder (services may also carry their own)."""
    return _DEFAULT_RECORDER
