"""Observability plane: tracing, metrics, flight recorder, calibration.

This package is deliberately leaf-like — it imports only the standard
library, never :mod:`repro.service` or the kernel, so every layer of the
repo can instrument itself without import cycles:

* :mod:`repro.obs.trace` — request-scoped :class:`Span` trees with
  monotonic timings, ambient propagation across thread boundaries, and
  pickled ``(trace_id, parent_span_id)`` coordinates across the process
  pool;
* :mod:`repro.obs.metrics` — the unified :class:`MetricsRegistry`
  (counters / gauges / bucketed histograms, Prometheus text exposition,
  JSON snapshots), the :func:`kcount` kernel-counter hooks with their
  disabled-mode fast path, and :class:`LatencyHistogram` (moved here
  from ``repro.service.stats``, which keeps a re-export);
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder` ring buffer
  of lifecycle events the chaos suite asserts against;
* :mod:`repro.obs.logs` — the ``repro`` logger hierarchy
  (``NullHandler`` root, per-subsystem children);
* :mod:`repro.obs.calibration` — the plan-vs-actual
  :class:`CalibrationLog` behind ``benchmarks/bench_p07_obs.py``.
"""

from repro.obs.calibration import (
    CalibrationLog,
    default_calibration,
    observed_work,
)
from repro.obs.logs import get_logger, root_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    KERNEL_COUNTERS,
    LatencyHistogram,
    MetricsRegistry,
    collect_kernel_counters,
    default_registry,
    kcount,
    kernel_counter_name,
    kernel_metrics_enabled,
    set_kernel_metrics_enabled,
)
from repro.obs.recorder import FlightRecorder, default_recorder
from repro.obs.trace import (
    Span,
    TraceLog,
    child_scope,
    current_span,
    maybe_span,
    span_scope,
)

__all__ = [
    "CalibrationLog",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KERNEL_COUNTERS",
    "LatencyHistogram",
    "MetricsRegistry",
    "Span",
    "TraceLog",
    "child_scope",
    "collect_kernel_counters",
    "current_span",
    "default_calibration",
    "default_recorder",
    "default_registry",
    "get_logger",
    "kcount",
    "kernel_counter_name",
    "kernel_metrics_enabled",
    "maybe_span",
    "observed_work",
    "root_logger",
    "set_kernel_metrics_enabled",
    "span_scope",
]
