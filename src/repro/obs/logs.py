"""The ``repro`` logger hierarchy.

Library logging etiquette: the package root logger gets a
``logging.NullHandler`` so importing :mod:`repro` never configures or
spams the host application's logging; anything that wants the messages
attaches its own handler to ``"repro"`` (or a subsystem child).

Subsystems log through :func:`get_logger` children —
``repro.service``, ``repro.supervision``, ``repro.resilience``,
``repro.kernel`` — at WARNING for operational anomalies (worker
respawns, breaker transitions, budget trips) with machine-readable
context in ``extra`` fields (``event``, plus event-specific keys) so a
structured formatter can do better than parsing message strings.
"""

from __future__ import annotations

import logging

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "root_logger"]

ROOT_LOGGER_NAME = "repro"

_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())


def root_logger() -> logging.Logger:
    return _root


def get_logger(subsystem: str) -> logging.Logger:
    """The ``repro.<subsystem>`` child logger."""
    if not subsystem:
        return _root
    return _root.getChild(subsystem)
