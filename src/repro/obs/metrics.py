"""The unified metrics plane: counters, gauges, histograms, exposition.

One :class:`MetricsRegistry` holds every metric family the repo emits.
Two registration styles coexist:

* **Direct instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` created via the registry's get-or-create methods
  and mutated at the instrumentation site.  The kernel counters (search
  nodes, AC-2001 residual hits, DP bag cells, Datalog rounds, …) are
  direct instruments funneled through :func:`kcount`.
* **Collectors** — callables registered with
  :meth:`MetricsRegistry.register_collector` that *derive* samples at
  scrape time from pre-existing stat bags (:class:`ServiceStats`,
  :class:`CacheTally`, breaker states, the fault-injection plan).  This
  is how the existing APIs join the registry without changing shape.

Exposition is Prometheus text format (``exposition()``) or a JSON
snapshot (``snapshot()``).

The kernel hooks are built to vanish: :func:`kcount` first reads one
module-level boolean (``REPRO_OBS_METRICS=0`` turns it off), which is
what the ``bench_p07_obs.py`` overhead gate toggles to prove the
instrumented loops stay within 3% of the bare ones.  When enabled it
both bumps the process-wide counter and adds into an optional
thread-local per-solve dict installed by :func:`collect_kernel_counters`
— that dict is how a single solve's counters end up on its
``SolveStats.kernel``.
"""

from __future__ import annotations

import json
import math
import os
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "Sample",
    "collect_kernel_counters",
    "default_registry",
    "kcount",
    "kernel_counter_name",
    "kernel_metrics_enabled",
    "set_kernel_metrics_enabled",
]

LabelValues = tuple[str, ...]


class Sample:
    """One exposition sample: name suffix, label values, value."""

    __slots__ = ("suffix", "labels", "value")

    def __init__(
        self, suffix: str, labels: Mapping[str, str], value: float
    ) -> None:
        self.suffix = suffix
        self.labels = dict(labels)
        self.value = value


class _Instrument:
    """Shared base: a named family with per-label-tuple values."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        _check_metric_name(name)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[ln]) for ln in self.labelnames)

    def _labels_dict(self, key: LabelValues) -> dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Instrument):
    """A monotonically increasing counter family."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._values.items())
        for key, value in sorted(items):
            yield Sample("", self._labels_dict(key), value)


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._values.items())
        for key, value in sorted(items):
            yield Sample("", self._labels_dict(key), value)


#: Default histogram buckets (milliseconds-flavoured but unit-neutral).
DEFAULT_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Histogram(_Instrument):
    """A cumulative-bucket histogram family (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # per label tuple: (per-bound counts, total count, total sum)
        self._values: dict[LabelValues, tuple[list[int], int, float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        index = bisect_left(self.bounds, value)
        with self._lock:
            entry = self._values.get(key)
            if entry is None:
                entry = ([0] * len(self.bounds), 0, 0.0)
            counts, count, total = entry
            if index < len(counts):
                counts[index] += 1
            self._values[key] = (counts, count + 1, total + value)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            items = [
                (key, (list(counts), count, total))
                for key, (counts, count, total) in self._values.items()
            ]
        for key, (counts, count, total) in sorted(items):
            labels = self._labels_dict(key)
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, counts):
                cumulative += bucket_count
                yield Sample(
                    "_bucket", {**labels, "le": _format_value(bound)}, cumulative
                )
            yield Sample("_bucket", {**labels, "le": "+Inf"}, count)
            yield Sample("_sum", labels, total)
            yield Sample("_count", labels, count)


#: A collector yields ``(instrument-like)`` objects at scrape time; any
#: object with ``name``/``help``/``kind``/``samples()`` works, so
#: collectors may hand back throwaway Counter/Gauge instances.
Collector = Callable[[], Iterable[_Instrument]]


class MetricsRegistry:
    """Process-wide metric families plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Collector] = []

    # -- get-or-create instruments --------------------------------------

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            instrument = Histogram(name, help, labelnames, buckets)
            self._instruments[name] = instrument
            return instrument

    def _get_or_create(self, cls, name, help, labelnames):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            instrument = cls(name, help, labelnames)
            self._instruments[name] = instrument
            return instrument

    # -- collectors ------------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Collector) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    # -- scraping --------------------------------------------------------

    def _families(self) -> list[_Instrument]:
        with self._lock:
            families = list(self._instruments.values())
            collectors = list(self._collectors)
        for collector in collectors:
            families.extend(collector())
        return families

    def exposition(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self._families():
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample in family.samples():
                label_text = ""
                if sample.labels:
                    inner = ",".join(
                        f'{key}="{_escape_label(value)}"'
                        for key, value in sample.labels.items()
                    )
                    label_text = "{" + inner + "}"
                lines.append(
                    f"{family.name}{sample.suffix}{label_text} "
                    f"{_format_value(sample.value)}"
                )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view keyed by family name."""
        out: dict[str, Any] = {}
        for family in self._families():
            series = [
                {
                    "suffix": sample.suffix,
                    "labels": sample.labels,
                    "value": sample.value,
                }
                for sample in family.samples()
            ]
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": series,
            }
        return out

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the kernel counters report into."""
    return _DEFAULT_REGISTRY


def _fault_fires_collector() -> Iterable[_Instrument]:
    """Scrape-time view of the active fault plan's per-point fire counts.

    Imported lazily so :mod:`repro.obs` stays dependency-free at import
    time; when no plan is installed the family is simply absent.
    """
    from repro import faultinject

    plan = faultinject.current()
    if plan is None:
        return ()
    counter = Counter(
        "repro_fault_injection_fires_total",
        "Deterministic fault-injection points that fired.",
        ("point",),
    )
    for point, count in plan.fired.items():
        counter.inc(count, point=point)
    return (counter,)


_DEFAULT_REGISTRY.register_collector(_fault_fires_collector)


# -- kernel counters -----------------------------------------------------

#: Short kernel-counter keys → Prometheus family names.  The short keys
#: are what the instrumentation sites use (and what lands on
#: ``SolveStats.kernel``); the families carry the ``repro_kernel_``
#: prefix in exposition.
KERNEL_COUNTERS: dict[str, tuple[str, str]] = {
    "search.nodes": (
        "repro_kernel_search_nodes_total",
        "Assignments attempted by the bitset backtracking search.",
    ),
    "search.backtracks": (
        "repro_kernel_search_backtracks_total",
        "Dead ends undone by the bitset backtracking search.",
    ),
    "propagate.residual_hits": (
        "repro_kernel_ac_residual_hits_total",
        "AC-2001 support checks answered by the residual cache.",
    ),
    "propagate.revisions": (
        "repro_kernel_ac_revisions_total",
        "Variable-domain revisions performed by GAC propagation.",
    ),
    "dp.bag_cells": (
        "repro_kernel_dp_bag_cells_total",
        "Bag-table cells materialised by the treewidth DP.",
    ),
    "pebble.steps": (
        "repro_kernel_pebble_steps_total",
        "Worklist positions processed by the k-pebble game fixpoint.",
    ),
    "datalog.rounds": (
        "repro_kernel_datalog_rounds_total",
        "Semi-naive rounds executed by the compiled Datalog engine.",
    ),
    "datalog.delta_bits": (
        "repro_kernel_datalog_delta_bits_total",
        "Delta-table bits produced across semi-naive rounds.",
    ),
    "deadline.checks": (
        "repro_deadline_checks_total",
        "Cooperative cancellation checks performed inside kernel loops.",
    ),
    "compile.targets": (
        "repro_kernel_compile_targets_total",
        "Target structures compiled into bitset form (cache/store misses).",
    ),
    "compile.sources": (
        "repro_kernel_compile_sources_total",
        "Source structures compiled into constraint form.",
    ),
}


def kernel_counter_name(key: str) -> str:
    """The Prometheus family name for a short kernel-counter key."""
    return KERNEL_COUNTERS[key][0]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS_METRICS", "1") not in ("0", "false", "no")


_kernel_enabled: bool = _env_enabled()


def kernel_metrics_enabled() -> bool:
    return _kernel_enabled


def set_kernel_metrics_enabled(enabled: bool) -> bool:
    """Toggle the kernel-counter hooks; returns the previous setting.

    This is the A/B lever the overhead benchmark flips: with the hooks
    disabled every :func:`kcount` call is one boolean test.
    """
    global _kernel_enabled
    previous = _kernel_enabled
    _kernel_enabled = bool(enabled)
    return previous


class _SolveLocal(threading.local):
    counters: dict[str, int] | None = None


_SOLVE_LOCAL = _SolveLocal()

_KERNEL_FAMILIES: dict[str, Counter] = {}


def _kernel_family(key: str) -> Counter:
    counter = _KERNEL_FAMILIES.get(key)
    if counter is None:
        name, help_text = KERNEL_COUNTERS[key]
        counter = _DEFAULT_REGISTRY.counter(name, help_text)
        _KERNEL_FAMILIES[key] = counter
    return counter


def kcount(key: str, amount: int = 1) -> None:
    """Bump a kernel counter (process-wide + ambient per-solve dict).

    Hot-loop contract: instrumentation sites accumulate into a local
    int and flush once per phase, so this runs a handful of times per
    solve, not per node.  Disabled mode short-circuits on one boolean.
    """
    if not _kernel_enabled:
        return
    _kernel_family(key).inc(amount)
    bag = _SOLVE_LOCAL.counters
    if bag is not None:
        bag[key] = bag.get(key, 0) + amount


class collect_kernel_counters:
    """Collect this thread's kernel counters for one solve.

    ``with collect_kernel_counters() as bag:`` installs a fresh dict as
    the thread's per-solve sink; nested scopes shadow (the innermost
    wins), which is what makes the pipeline's deadline-recursion outer
    call harmless — the inner, real solve owns the dict that matters.
    """

    __slots__ = ("bag", "_previous")

    def __init__(self) -> None:
        self.bag: dict[str, int] = {}
        self._previous: dict[str, int] | None = None

    def __enter__(self) -> dict[str, int]:
        self._previous = _SOLVE_LOCAL.counters
        _SOLVE_LOCAL.counters = self.bag
        return self.bag

    def __exit__(self, *exc: object) -> None:
        _SOLVE_LOCAL.counters = self._previous


# -- formatting helpers --------------------------------------------------

def _check_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name: {name!r}")
    if name[0].isdigit():
        raise ValueError(f"invalid metric name: {name!r}")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# -- latency histogram (moved here from repro.service.stats) -------------

class LatencyHistogram:
    """Latency samples (milliseconds) with nearest-rank percentiles.

    Sample storage is capped: once ``max_samples`` is reached, new
    samples overwrite old ones round-robin, bounding memory while keeping
    the percentiles tracking recent traffic.  The total count keeps
    counting past the cap.
    """

    DEFAULT_MAX_SAMPLES = 65536

    __slots__ = ("_samples", "_max_samples", "_next", "count", "total_ms")

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be positive")
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._next = 0
        self.count = 0
        self.total_ms = 0.0

    def record(self, latency_ms: float) -> None:
        self.count += 1
        self.total_ms += latency_ms
        if len(self._samples) < self._max_samples:
            self._samples.append(latency_ms)
        else:
            self._samples[self._next] = latency_ms
            self._next = (self._next + 1) % self._max_samples

    def percentiles(self, *qs: float) -> tuple[float, ...]:
        """Nearest-rank percentiles (``0 < q <= 100``), one shared sort."""
        if not self._samples:
            return tuple(0.0 for _ in qs)
        ordered = sorted(self._samples)
        return tuple(
            ordered[max(1, math.ceil(q / 100.0 * len(ordered))) - 1]
            for q in qs
        )

    def percentile(self, q: float) -> float:
        """The nearest-rank ``q``-th percentile (``0 < q <= 100``)."""
        return self.percentiles(q)[0]

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        p50, p95, p99 = self.percentiles(50, 95, 99)
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(p50, 4),
            "p95_ms": round(p95, 4),
            "p99_ms": round(p99, 4),
        }
