"""Request-scoped tracing: a span tree with monotonic timings.

A trace is a tree of :class:`Span` records sharing one ``trace_id``.
The service opens a root span per admitted request; every layer the
request crosses (queue, retry loop, backend dispatch, planner decision,
kernel phase) hangs a child off whatever span is *ambient* on the
current thread.  Ambient propagation mirrors the cooperative-
cancellation design in :mod:`repro.core.cancellation`: a
``threading.local`` slot installed explicitly at each thread boundary
(:func:`span_scope`), never inherited implicitly, so the kernel loops
stay oblivious to where their work came from.

Crossing the *process* boundary cannot share objects, so the service
pickles only the coordinates — ``(trace_id, parent_span_id)`` — with the
job.  The worker builds a fresh root from them
(:meth:`Span.new_remote`), runs the solve under it, and ships the
finished subtree back as an exported dict inside ``SolveStats``; the
service grafts it under the dispatch span with :meth:`Span.add_exported`.
The result is one tree, one trace id, spans on both sides of the pickle.

Instrumentation points use :func:`maybe_span`, which is a shared no-op
context manager whenever no ambient span is installed — the disabled
path costs one ``threading.local`` attribute read.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from collections import deque
from collections.abc import Iterator, Mapping
from typing import Any

__all__ = [
    "Span",
    "TraceLog",
    "child_scope",
    "current_span",
    "maybe_span",
    "new_ids",
    "span_scope",
]


def _hex_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


def new_ids() -> tuple[str, str]:
    """A fresh ``(trace_id, span_id)`` pair (128-bit / 64-bit hex)."""
    return _hex_id(16), _hex_id(8)


class Span:
    """One timed node in a trace tree.

    Timings come from ``time.perf_counter()`` — they are durations and
    orderings *within* one process, never wall-clock timestamps, so
    spans from different processes carry their own clocks and only
    durations are comparable across the graft point.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end_time",
        "attributes",
        "children",
        "_exported_children",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str | None = None,
        parent_id: str | None = None,
        **attributes: Any,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else _hex_id(8)
        self.parent_id = parent_id
        self.name = name
        self.start = time.perf_counter()
        self.end_time: float | None = None
        self.attributes: dict[str, Any] = dict(attributes)
        self.children: list[Span] = []
        self._exported_children: list[dict[str, Any]] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def new_root(cls, name: str, **attributes: Any) -> Span:
        trace_id, span_id = new_ids()
        return cls(name, trace_id=trace_id, span_id=span_id, **attributes)

    @classmethod
    def new_remote(
        cls, name: str, trace_id: str, parent_id: str, **attributes: Any
    ) -> Span:
        """A root for a remote (out-of-process) subtree of ``trace_id``."""
        return cls(
            name, trace_id=trace_id, parent_id=parent_id, **attributes
        )

    def child(self, name: str, **attributes: Any) -> Span:
        span = Span(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            **attributes,
        )
        self.children.append(span)
        return span

    # -- mutation -------------------------------------------------------

    def set(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def end(self) -> None:
        if self.end_time is None:
            self.end_time = time.perf_counter()

    def add_exported(self, exported: Mapping[str, Any]) -> None:
        """Graft an already-exported subtree (e.g. from a worker)."""
        self._exported_children.append(dict(exported))

    # -- inspection -----------------------------------------------------

    @property
    def duration_ms(self) -> float:
        end = self.end_time if self.end_time is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def export(self) -> dict[str, Any]:
        """A JSON-ready nested dict of this span and its descendants."""
        node: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        children = [child.export() for child in self.children]
        children.extend(self._exported_children)
        if children:
            node["children"] = children
        return node

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.export(), indent=indent, default=str)

    def iter_spans(self) -> Iterator[dict[str, Any]]:
        """Flat iteration over the exported tree (local + grafted)."""
        stack = [self.export()]
        while stack:
            node = stack.pop()
            stack.extend(node.get("children", ()))
            yield node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"span={self.span_id})"
        )


# -- ambient span (thread-local, explicitly installed) -------------------

class _Ambient(threading.local):
    span: Span | None = None


_AMBIENT = _Ambient()


def current_span() -> Span | None:
    """The span installed on this thread, or ``None``."""
    return _AMBIENT.span


@contextlib.contextmanager
def span_scope(span: Span | None) -> Iterator[Span | None]:
    """Install ``span`` as this thread's ambient span for the block."""
    previous = _AMBIENT.span
    _AMBIENT.span = span
    try:
        yield span
    finally:
        _AMBIENT.span = previous


class _NullScope:
    """Shared no-op context manager for the tracing-disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attributes: Any) -> None:
        return None


_NULL_SCOPE = _NullScope()


def maybe_span(name: str, **attributes: Any):
    """Open a child span of the ambient span, or a shared no-op.

    The hot-path contract: when tracing is off (no ambient span) this
    returns a singleton whose ``__enter__``/``__exit__`` do nothing.
    """
    parent = _AMBIENT.span
    if parent is None:
        return _NULL_SCOPE
    return _RestoringScope(parent.child(name, **attributes), parent)


class _RestoringScope:
    """Child-span scope that restores the previous ambient span on exit."""

    __slots__ = ("span", "_previous")

    def __init__(self, span: Span, previous: Span | None) -> None:
        self.span = span
        self._previous = previous

    def __enter__(self) -> Span:
        _AMBIENT.span = self.span
        return self.span

    def __exit__(self, *exc: object) -> None:
        self.span.end()
        _AMBIENT.span = self._previous

    def set(self, **attributes: Any) -> None:
        self.span.set(**attributes)


@contextlib.contextmanager
def child_scope(
    parent: Span | None, name: str, **attributes: Any
) -> Iterator[Span | None]:
    """Open a child of an *explicit* parent and make it ambient.

    Used at thread boundaries where the parent span lives on another
    thread (the event loop) and must be threaded through by hand.
    Yields ``None`` (and installs nothing) when ``parent`` is ``None``.
    """
    if parent is None:
        yield None
        return
    span = parent.child(name, **attributes)
    with span_scope(span):
        try:
            yield span
        finally:
            span.end()


class TraceLog:
    """A bounded, thread-safe log of exported (finished) traces."""

    DEFAULT_CAPACITY = 256

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._traces: deque[dict[str, Any]] = deque(maxlen=capacity)

    def append(self, exported: Mapping[str, Any]) -> None:
        with self._lock:
            self._traces.append(dict(exported))

    def last(self) -> dict[str, Any] | None:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def find(self, trace_id: str) -> dict[str, Any] | None:
        with self._lock:
            for trace in reversed(self._traces):
                if trace.get("trace_id") == trace_id:
                    return dict(trace)
        return None

    def dump(self) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(trace) for trace in self._traces]

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.dump(), indent=indent, default=str)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)
