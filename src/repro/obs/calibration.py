"""Plan-vs-actual calibration: did the planner's cost guess hold up?

Every planned solve deposits one observation here: the route the
planner chose, the cost it predicted (:class:`repro.kernel.estimate.Plan`),
and what the kernel *actually did* — the work counter native to that
route (search nodes for backtracking, bag cells for the treewidth DP,
pebble steps / datalog rounds for the game engines) plus wall latency.
``benchmarks/bench_p07_obs.py`` turns the log into per-route
calibration tables (median predicted vs. median observed, ratio
spread); that report is the evidence base ROADMAP item 3 asks for
before replacing the heuristic cost model with theory-backed bounds.

The log is bounded and thread-safe; recording is two dict lookups and
an append, so the pipeline can call it unconditionally.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Mapping
from statistics import median
from typing import Any

__all__ = [
    "CalibrationLog",
    "default_calibration",
    "observe",
    "observed_work",
]

#: Which kernel counter measures the "work" a route predicted.
ROUTE_WORK_COUNTER: dict[str, str] = {
    "search": "search.nodes",
    "dp": "dp.bag_cells",
    "pebble": "pebble.steps",
    "datalog": "datalog.rounds",
}


def observed_work(route: str, kernel: Mapping[str, int] | None) -> int | None:
    """The route-native observed work counter, if the solve recorded one."""
    if not kernel:
        return None
    counter = ROUTE_WORK_COUNTER.get(route)
    if counter is None:
        return None
    value = kernel.get(counter)
    return int(value) if value is not None else None


class CalibrationLog:
    """Bounded, thread-safe log of (plan, observed) pairs."""

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._lock = threading.Lock()
        self._rows: deque[dict[str, Any]] = deque(maxlen=capacity)

    def observe(
        self,
        *,
        route: str,
        predicted_cost: float,
        observed: int | None,
        total_ms: float,
        fallback: bool = False,
    ) -> None:
        row = {
            "route": route,
            "predicted_cost": float(predicted_cost),
            "observed": observed,
            "total_ms": float(total_ms),
            "fallback": bool(fallback),
        }
        with self._lock:
            self._rows.append(row)

    def observe_solve(self, stats: Any) -> None:
        """Fold one finished ``SolveStats`` in, if it carries a plan."""
        plan = getattr(stats, "plan", None)
        if not plan:
            return
        route = plan.get("route")
        predicted = plan.get("predicted_cost")
        if route is None or predicted is None:
            return
        fallback = any(key.endswith("_fallback") for key in plan)
        timings = getattr(stats, "timings", None) or {}
        self.observe(
            route=route,
            predicted_cost=predicted,
            observed=observed_work(route, getattr(stats, "kernel", None)),
            total_ms=float(timings.get("total", 0.0)),  # already in ms
            fallback=fallback,
        )

    def rows(self, route: str | None = None) -> list[dict[str, Any]]:
        with self._lock:
            snapshot = list(self._rows)
        if route is None:
            return snapshot
        return [row for row in snapshot if row["route"] == route]

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def report(self) -> dict[str, Any]:
        """Per-route calibration summary (JSON-ready).

        ``ratio`` statistics are ``observed / predicted`` over rows
        where both sides are positive — a well-calibrated model keeps
        the median ratio stable across instance families even if its
        absolute scale is off.
        """
        by_route: dict[str, list[dict[str, Any]]] = {}
        for row in self.rows():
            by_route.setdefault(row["route"], []).append(row)
        report: dict[str, Any] = {}
        for route, rows in sorted(by_route.items()):
            predicted = [row["predicted_cost"] for row in rows]
            observed = [
                row["observed"] for row in rows if row["observed"] is not None
            ]
            latencies = [row["total_ms"] for row in rows]
            ratios = [
                row["observed"] / row["predicted_cost"]
                for row in rows
                if row["observed"] and row["predicted_cost"] > 0
            ]
            entry: dict[str, Any] = {
                "count": len(rows),
                "fallbacks": sum(1 for row in rows if row["fallback"]),
                "predicted_median": round(median(predicted), 2),
                "latency_median_ms": round(median(latencies), 4),
            }
            if observed:
                entry["observed_median"] = median(observed)
            if ratios:
                entry["ratio_median"] = round(median(ratios), 4)
                entry["ratio_min"] = round(min(ratios), 4)
                entry["ratio_max"] = round(max(ratios), 4)
            report[route] = entry
        return report

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.report(), indent=indent, sort_keys=True)


_DEFAULT_CALIBRATION = CalibrationLog()


def default_calibration() -> CalibrationLog:
    return _DEFAULT_CALIBRATION


def observe(stats: Any) -> None:
    """Record one finished solve into the default calibration log."""
    _DEFAULT_CALIBRATION.observe_solve(stats)
