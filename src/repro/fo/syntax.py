"""Syntax of ∃FOᵏ — existential positive first-order logic with k
variables (Sections 4.1 and 5 of the paper).

Formulas are built from atoms using conjunction, disjunction, and
existential quantification only, over a fixed supply of *variable slots*
``x₀, …, x_{k−1}``.  Reusing a quantified slot deeper in the formula is
exactly what makes the logic "k-variable": Lemma 5.2 shows a structure of
treewidth ``k`` translates into an ∃FO^{k+1} sentence, and Theorem 5.4
exploits the polynomial combined complexity of evaluating such sentences
[Var95].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Formula", "AtomF", "AndF", "OrF", "ExistsF", "TrueF", "num_slots"]


class Formula:
    """Base class of ∃FOᵏ formulas over integer variable slots."""

    def free_slots(self) -> frozenset[int]:
        raise NotImplementedError

    def subformulas(self) -> Iterator["Formula"]:
        """Depth-first iteration over all subformulas (self included)."""
        yield self

    def slots_used(self) -> frozenset[int]:
        """Every slot syntactically occurring (free or bound)."""
        used: set[int] = set()
        for sub in self.subformulas():
            if isinstance(sub, AtomF):
                used.update(sub.slots)
            elif isinstance(sub, ExistsF):
                used.add(sub.slot)
        return frozenset(used)


@dataclass(frozen=True)
class TrueF(Formula):
    """The empty conjunction (always true)."""

    def free_slots(self) -> frozenset[int]:
        return frozenset()

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class AtomF(Formula):
    """An atom ``R(x_{s₁}, …, x_{s_r})`` over variable slots."""

    relation: str
    slots: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "slots", tuple(self.slots))
        if any(s < 0 for s in self.slots):
            raise ValueError("variable slots must be non-negative")

    def free_slots(self) -> frozenset[int]:
        return frozenset(self.slots)

    def __str__(self) -> str:
        inner = ", ".join(f"x{s}" for s in self.slots)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class AndF(Formula):
    """A conjunction of subformulas."""

    parts: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def free_slots(self) -> frozenset[int]:
        free: set[int] = set()
        for part in self.parts:
            free |= part.free_slots()
        return frozenset(free)

    def subformulas(self) -> Iterator[Formula]:
        yield self
        for part in self.parts:
            yield from part.subformulas()

    def __str__(self) -> str:
        if not self.parts:
            return "⊤"
        return "(" + " ∧ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class OrF(Formula):
    """A disjunction of subformulas."""

    parts: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def free_slots(self) -> frozenset[int]:
        free: set[int] = set()
        for part in self.parts:
            free |= part.free_slots()
        return frozenset(free)

    def subformulas(self) -> Iterator[Formula]:
        yield self
        for part in self.parts:
            yield from part.subformulas()

    def __str__(self) -> str:
        if not self.parts:
            return "⊥"
        return "(" + " ∨ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class ExistsF(Formula):
    """Existential quantification of one slot: ``∃x_s φ``."""

    slot: int
    body: Formula

    def free_slots(self) -> frozenset[int]:
        return self.body.free_slots() - {self.slot}

    def subformulas(self) -> Iterator[Formula]:
        yield self
        yield from self.body.subformulas()

    def __str__(self) -> str:
        return f"∃x{self.slot} {self.body}"


def num_slots(formula: Formula) -> int:
    """The number of distinct variable slots used — the "k" of ∃FOᵏ."""
    return len(formula.slots_used())
