"""Bottom-up evaluation of ∃FOᵏ formulas over finite structures.

Theorem 5.4 rests on the fact that ∃FO^{k+1} has polynomial-time
*combined* complexity [Var95]: every subformula has at most k+1 free
variables, so each intermediate relation has at most |B|^{k+1} rows.  The
evaluator computes, per subformula, the set of satisfying assignments as a
relation over the subformula's free slots:

* atoms read the structure (handling repeated slots);
* conjunction is a natural join;
* disjunction is a union after padding each disjunct to the union of free
  slots (active-domain semantics);
* existential quantification is a projection.
"""

from __future__ import annotations

from typing import Hashable

from repro.fo.syntax import AndF, AtomF, ExistsF, Formula, OrF, TrueF
from repro.structures.structure import Structure, _sort_key

__all__ = ["evaluate_formula", "satisfies", "Relation"]

Element = Hashable


class Relation:
    """An intermediate result: a column list (slots) and a set of rows."""

    __slots__ = ("columns", "rows")

    def __init__(
        self, columns: tuple[int, ...], rows: set[tuple[Element, ...]]
    ) -> None:
        self.columns = columns
        self.rows = rows

    def __repr__(self) -> str:
        return f"Relation(columns={self.columns}, rows={len(self.rows)})"


def _join(left: Relation, right: Relation) -> Relation:
    shared = [c for c in left.columns if c in right.columns]
    right_only = [c for c in right.columns if c not in left.columns]
    left_pos = {c: i for i, c in enumerate(left.columns)}
    right_pos = {c: i for i, c in enumerate(right.columns)}
    index: dict[tuple, list[tuple]] = {}
    for row in right.rows:
        key = tuple(row[right_pos[c]] for c in shared)
        index.setdefault(key, []).append(
            tuple(row[right_pos[c]] for c in right_only)
        )
    columns = left.columns + tuple(right_only)
    rows: set[tuple[Element, ...]] = set()
    for row in left.rows:
        key = tuple(row[left_pos[c]] for c in shared)
        for extension in index.get(key, ()):
            rows.add(row + extension)
    return Relation(columns, rows)


def _pad(relation: Relation, columns: tuple[int, ...], domain) -> Relation:
    """Extend a relation to a wider column set (cross with the domain)."""
    missing = [c for c in columns if c not in relation.columns]
    pos = {c: i for i, c in enumerate(relation.columns)}
    rows: set[tuple[Element, ...]] = set()
    assignments: list[tuple[Element, ...]] = [()]
    for _c in missing:
        assignments = [a + (v,) for a in assignments for v in domain]
    for row in relation.rows:
        base = {c: row[pos[c]] for c in relation.columns}
        for extra in assignments:
            for c, v in zip(missing, extra):
                base[c] = v
            rows.add(tuple(base[c] for c in columns))
    return Relation(columns, rows)


def evaluate_formula(formula: Formula, structure: Structure) -> Relation:
    """The satisfying assignments of ``formula`` over its free slots."""
    domain = tuple(sorted(structure.universe, key=_sort_key))

    def recurse(node: Formula) -> Relation:
        if isinstance(node, TrueF):
            return Relation((), {()})
        if isinstance(node, AtomF):
            columns: list[int] = []
            for slot in node.slots:
                if slot not in columns:
                    columns.append(slot)
            rows: set[tuple[Element, ...]] = set()
            for fact in structure.relation(node.relation):
                values: dict[int, Element] = {}
                ok = True
                for slot, value in zip(node.slots, fact):
                    if values.setdefault(slot, value) != value:
                        ok = False
                        break
                if ok:
                    rows.add(tuple(values[c] for c in columns))
            return Relation(tuple(columns), rows)
        if isinstance(node, AndF):
            result = Relation((), {()})
            for part in node.parts:
                result = _join(result, recurse(part))
                if not result.rows:
                    # Short-circuit, but keep the full column set so the
                    # caller sees consistent arity.
                    free = tuple(sorted(node.free_slots()))
                    return Relation(free, set())
            # Re-order columns deterministically.
            free = tuple(sorted(node.free_slots()))
            pos = {c: i for i, c in enumerate(result.columns)}
            rows = {
                tuple(row[pos[c]] for c in free) for row in result.rows
            }
            return Relation(free, rows)
        if isinstance(node, OrF):
            free = tuple(sorted(node.free_slots()))
            rows: set[tuple[Element, ...]] = set()
            for part in node.parts:
                padded = _pad(recurse(part), free, domain)
                rows |= padded.rows
            return Relation(free, rows)
        if isinstance(node, ExistsF):
            inner = recurse(node.body)
            keep = tuple(c for c in inner.columns if c != node.slot)
            pos = {c: i for i, c in enumerate(inner.columns)}
            if node.slot not in pos:
                # Vacuous quantification still requires a witness element.
                if not domain:
                    return Relation(keep, set())
                return inner
            rows = {
                tuple(row[pos[c]] for c in keep) for row in inner.rows
            }
            return Relation(keep, rows)
        raise TypeError(f"unknown formula node {node!r}")

    return recurse(formula)


def satisfies(structure: Structure, formula: Formula) -> bool:
    """Truth of a sentence (or non-emptiness of an open formula)."""
    return bool(evaluate_formula(formula, structure).rows)
