"""Bounded-variable existential positive first-order logic (∃FOᵏ).

The logical side of Sections 4–5: k-variable syntax, a polynomial
bottom-up evaluator [Var95], and the Lemma 5.2 translation from
bounded-treewidth structures to ∃FO^{k+1} sentences.
"""

from repro.fo.evaluation import Relation, evaluate_formula, satisfies
from repro.fo.from_decomposition import (
    homomorphism_exists_by_fo,
    structure_to_formula,
)
from repro.fo.syntax import (
    AndF,
    AtomF,
    ExistsF,
    Formula,
    OrF,
    TrueF,
    num_slots,
)

__all__ = [
    "Formula",
    "AtomF",
    "AndF",
    "OrF",
    "ExistsF",
    "TrueF",
    "num_slots",
    "evaluate_formula",
    "satisfies",
    "Relation",
    "structure_to_formula",
    "homomorphism_exists_by_fo",
]
