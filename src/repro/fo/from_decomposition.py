"""Lemma 5.2: structures of treewidth k as ∃FO^{k+1} queries.

Given a structure ``A`` with a tree decomposition of width ``k``, build an
existential positive sentence with at most ``k+1`` distinct variables that
holds on ``B`` iff ``A → B``.

The construction follows the parse-tree idea of the paper's proof, phrased
on a rooted decomposition: elements of a bag are assigned *slots* from
``{0, …, k}``; a child keeps the parent's slots on shared elements and
recycles free slots for its new elements — the recycling is exactly the
variable reuse that keeps the total count at ``k+1`` (Lemma 4.2's renaming
in executable form).  The formula of a node conjoins its assigned facts
with, per child, the child formula existentially quantified on the child's
fresh slots; the root formula is closed by quantifying the root bag.

Because each element's bags form a subtree and shared elements inherit
slots downward, every element has a single slot throughout the scope of
its quantifier, so the sentence is equivalent to the canonical conjunctive
query ``Q_A`` — which the tests verify against three other solvers.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import DecompositionError
from repro.fo.evaluation import satisfies
from repro.fo.syntax import AndF, AtomF, ExistsF, Formula, TrueF
from repro.structures.structure import Structure, _sort_key
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import decompose

__all__ = ["structure_to_formula", "homomorphism_exists_by_fo"]

Element = Hashable


def structure_to_formula(
    source: Structure,
    decomposition: TreeDecomposition | None = None,
) -> Formula:
    """The ∃FO^{width+1} sentence of Lemma 5.2 for ``source``.

    The returned sentence uses at most ``decomposition.width + 1``
    distinct variable slots and holds on a structure ``B`` iff there is a
    homomorphism ``source → B``.
    """
    if decomposition is None:
        decomposition = decompose(source)
    else:
        decomposition.validate(source)
    if not source.universe:
        return TrueF()

    width = decomposition.width
    slots = list(range(width + 1))
    facts_at = decomposition.assign_facts(source)
    order = decomposition.rooted(0)
    children: dict[int, list[int]] = {node: [] for node, _ in order}
    for node, parent in order:
        if parent is not None:
            children[parent].append(node)

    def build(node: int, slot_of: dict[Element, int]) -> Formula:
        """Formula of the subtree at ``node``; ``slot_of`` covers its bag."""
        parts: list[Formula] = [
            AtomF(name, tuple(slot_of[e] for e in fact))
            for name, fact in facts_at[node]
        ]
        for child in children[node]:
            child_bag = decomposition.bags[child]
            shared = {
                e: slot_of[e] for e in child_bag if e in slot_of
            }
            taken = set(shared.values())
            free = [s for s in slots if s not in taken]
            fresh: dict[Element, int] = {}
            for element in sorted(child_bag - shared.keys(), key=_sort_key):
                if not free:
                    raise DecompositionError(
                        "bag larger than width+1; invalid decomposition"
                    )
                fresh[element] = free.pop(0)
            child_formula = build(child, {**shared, **fresh})
            for slot in sorted(fresh.values(), reverse=True):
                child_formula = ExistsF(slot, child_formula)
            parts.append(child_formula)
        if not parts:
            return TrueF()
        if len(parts) == 1:
            return parts[0]
        return AndF(tuple(parts))

    root_bag = sorted(decomposition.bags[0], key=_sort_key)
    root_slots = {element: i for i, element in enumerate(root_bag)}
    formula = build(0, root_slots)
    for slot in sorted(root_slots.values(), reverse=True):
        formula = ExistsF(slot, formula)
    return formula


def homomorphism_exists_by_fo(
    source: Structure,
    target: Structure,
    decomposition: TreeDecomposition | None = None,
) -> bool:
    """Theorem 5.4 via the paper's "new proof": translate ``source`` into
    an ∃FO^{k+1} sentence (Lemma 5.2) and evaluate it on ``target``."""
    formula = structure_to_formula(source, decomposition)
    return satisfies(target, formula)
