"""E12 — Lemma 5.5: the dual-graph binary encoding.

Measures (a) building binary(A) in both schemes and (b) solving through
the encoding vs directly, on ternary random structures.  Expected shape:
the encoding is polynomial; the chain scheme produces strictly fewer
tuples than the full scheme; decisions agree with the direct route.
"""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.csp.generators import random_structure
from repro.structures.binary_encoding import binary_encoding
from repro.structures.homomorphism import homomorphism_exists

from _workloads import TERNARY

SIZES = [4, 8, 16]


def _instance(n):
    source = random_structure(TERNARY, n, n, seed=n)
    target = random_structure(TERNARY, 3, 9, seed=n + 1)
    return source, target


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("scheme", ["full", "chain"])
def test_encoding_cost(benchmark, n, scheme):
    source, _target = _instance(n)
    encoded = benchmark(binary_encoding, source, scheme)
    assert len(encoded) == source.num_facts


@pytest.mark.parametrize("n", SIZES)
def test_solve_through_encoding(benchmark, n):
    source, target = _instance(n)
    encoded_source = binary_encoding(source)
    encoded_target = binary_encoding(target)
    got = benchmark(solve_backtracking, encoded_source, encoded_target)
    want = homomorphism_exists(source, target)
    if want:
        assert got is not None


@pytest.mark.parametrize("n", SIZES)
def test_solve_directly(benchmark, n):
    source, target = _instance(n)
    benchmark(solve_backtracking, source, target)
