"""E1 — Theorem 3.1: Schaefer-class recognition is polynomial.

Benchmarks ``classify_structure`` on Boolean targets whose relations have
a growing number of tuples.  Expected shape: time grows polynomially
(the closure tests are at most cubic in |R|), never combinatorially.
"""

import pytest

from repro.boolean.schaefer import classify_structure
from repro.csp.generators import random_boolean_target

from _workloads import TERNARY

SIZES = [4, 8, 16, 32]


@pytest.mark.parametrize("tuples", SIZES)
def test_recognition_scaling(benchmark, tuples):
    target = random_boolean_target(TERNARY, tuples, seed=tuples)
    result = benchmark(classify_structure, target)
    # sanity: classification is deterministic and total
    assert result == classify_structure(target)


@pytest.mark.parametrize(
    "closure", ["horn", "dual_horn", "bijunctive", "affine"]
)
def test_recognition_per_class(benchmark, closure):
    target = random_boolean_target(TERNARY, 8, closure=closure, seed=7)
    classes = benchmark(classify_structure, target)
    assert classes  # closed targets are recognized as Schaefer
