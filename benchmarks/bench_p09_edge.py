"""P9 — edge load: the sharded network edge under closed-loop traffic.

The P3 load shape (a duplicated mixed stream — many users, few distinct
queries) is pushed across the full network distance: JSON over real TCP
sockets into a ``python -m repro.edge`` process, through fingerprint
routing into N ``SolveService`` shard processes, and back.  The
benchmark runs the identical stream against a 1-shard edge and a
4-shard edge and reports aggregate throughput, client-side p50/p95/p99
latency per route, and the scaling ratio.

Gates (mirrors the PR's acceptance criteria):

- **Parity is always blocking**: every response verdict must equal the
  direct ``solve()`` verdict; one mismatch aborts with a non-zero exit.
- **Scaling is blocking only where it can hold**: the >= 2x aggregate
  throughput criterion at 4 shards needs >= 4 cores; on smaller boxes
  (this container has 1) the ratio is echoed and recorded with an
  ``insufficient cores`` note instead of failing the run.
- **The p99 SLO is never blocking**: it is echoed and recorded so the
  perf-smoke job can chart drift without flaking the build.

Run directly (writes ``BENCH_edge.json``)::

    python benchmarks/bench_p09_edge.py --duplication 4 --workers 8
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import queue
import random
import signal
import subprocess
import sys
import threading
import time

import _paths  # noqa: F401  (sys.path setup for a bare checkout)

import repro
from repro.core import solve
from repro.edge.client import EdgeClient
from repro.service.stats import LatencyHistogram

from _workloads import mixed_service_workload

SHARD_COUNTS = (1, 4)
SCALING_GATE = 2.0  # required 4-shard/1-shard throughput ratio
SCALING_MIN_CORES = 4  # the gate only binds where the cores exist
P99_SLO_MS = 5000.0  # echoed, never blocking


def build_request_stream(
    *, seed: int, variants: int, duplication: int, clique_sizes: tuple[int, ...]
) -> tuple[list[tuple[str, object, object, bool]], int]:
    """Each unique instance ``duplication`` times, shuffled, with its
    direct-``solve`` verdict attached (the parity oracle rides along so
    workers can check answers without a second lookup)."""
    unique = [
        (label, source, target, solve(source, target, plan=True).exists)
        for label, source, target in mixed_service_workload(
            seed=seed, variants=variants, clique_sizes=clique_sizes
        )
    ]
    stream = [instance for instance in unique for _ in range(duplication)]
    random.Random(seed).shuffle(stream)
    return stream, len(unique)


class EdgeProcess:
    """One ``python -m repro.edge`` subprocess on an ephemeral port."""

    def __init__(self, num_shards: int) -> None:
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.edge", "--port", "0",
             "--shards", str(num_shards)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        # serve_forever prints one JSON line once bound and warmed.
        line = self.process.stdout.readline()
        if not line:
            self.process.wait(timeout=10)
            raise SystemExit(
                f"edge ({num_shards} shard) exited rc={self.process.returncode} "
                "before binding"
            )
        listening = json.loads(line)["listening"]
        self.host, _, port = listening.rpartition(":")
        self.port = int(port)

    def shutdown(self) -> int:
        self.process.send_signal(signal.SIGTERM)
        try:
            return self.process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=10)


def run_edge_load(stream, *, num_shards: int, workers: int) -> dict:
    """Closed-loop load: ``workers`` threads, one keep-alive client each,
    draining a shared job queue as fast as responses come back."""
    edge = EdgeProcess(num_shards)
    jobs: queue.Queue = queue.Queue()
    for item in stream:
        jobs.put(item)
    histogram = LatencyHistogram()
    histogram_lock = threading.Lock()
    mismatches: list[str] = []
    errors: list[str] = []
    coalesce_hits = 0

    def worker() -> None:
        nonlocal coalesce_hits
        with EdgeClient(edge.host, edge.port, timeout=600.0) as client:
            while True:
                try:
                    label, source, target, expected = jobs.get_nowait()
                except queue.Empty:
                    return
                tick = time.perf_counter()
                try:
                    result = client.solve(source, target)
                except Exception as exc:  # noqa: BLE001 — tallied below
                    with histogram_lock:
                        errors.append(f"{label}: {type(exc).__name__}: {exc}")
                    continue
                latency_ms = (time.perf_counter() - tick) * 1000
                with histogram_lock:
                    histogram.record(latency_ms)
                    if result["verdict"] != expected:
                        mismatches.append(label)
                    if result["coalesced"]:
                        coalesce_hits += 1

    threads = [
        threading.Thread(target=worker, daemon=True) for _ in range(workers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    rc = edge.shutdown()
    return {
        "num_shards": num_shards,
        "seconds": elapsed,
        "throughput_rps": len(stream) / elapsed,
        "latency": histogram.snapshot(),
        "coalesce_hits": coalesce_hits,
        "mismatches": mismatches,
        "errors": errors,
        "drain_rc": rc,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--variants", type=int, default=2,
        help="seeded variants per workload family",
    )
    parser.add_argument(
        "--duplication", type=int, default=4,
        help="how many times each unique instance is requested",
    )
    parser.add_argument(
        "--max-clique", type=int, default=4,
        help="largest clique size in the backtracking-heavy part",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="closed-loop client threads",
    )
    parser.add_argument("--out", default="BENCH_edge.json")
    args = parser.parse_args()

    stream, unique = build_request_stream(
        seed=args.seed,
        variants=args.variants,
        duplication=args.duplication,
        clique_sizes=tuple(range(3, args.max_clique + 1)),
    )
    cores = os.cpu_count() or 1
    print(
        f"P9 edge load: {len(stream)} requests "
        f"({unique} unique x {args.duplication}), "
        f"{args.workers} closed-loop workers, {cores} cores"
    )

    runs = {}
    for num_shards in SHARD_COUNTS:
        run = run_edge_load(stream, num_shards=num_shards, workers=args.workers)
        runs[num_shards] = run
        latency = run["latency"]
        print(
            f"  shards={num_shards}: {run['seconds']:8.3f}s  "
            f"{run['throughput_rps']:7.1f} req/s  "
            f"p50={latency['p50_ms']:.1f}ms p95={latency['p95_ms']:.1f}ms "
            f"p99={latency['p99_ms']:.1f}ms  "
            f"(coalesce hits: {run['coalesce_hits']}, "
            f"drain rc: {run['drain_rc']})"
        )

    failures: list[str] = []
    for num_shards, run in runs.items():
        if run["errors"]:
            failures.append(
                f"{len(run['errors'])} request(s) errored at "
                f"{num_shards} shard(s): {run['errors'][:3]}"
            )
        if run["mismatches"]:
            failures.append(
                f"parity FAILED at {num_shards} shard(s): "
                f"{len(run['mismatches'])} verdict(s) differ from direct "
                f"solve ({run['mismatches'][:5]})"
            )
        if run["drain_rc"] != 0:
            failures.append(
                f"edge at {num_shards} shard(s) exited rc={run['drain_rc']} "
                "on SIGTERM drain"
            )
    if not failures:
        print("  parity : edge verdicts == direct solve verdicts (both runs)")

    ratio = (
        runs[SHARD_COUNTS[-1]]["throughput_rps"]
        / runs[SHARD_COUNTS[0]]["throughput_rps"]
    )
    scaling_binding = cores >= SCALING_MIN_CORES
    scaling_ok = ratio >= SCALING_GATE
    note = None
    if scaling_ok:
        print(f"  scaling: {ratio:.2f}x at {SHARD_COUNTS[-1]} shards (gate {SCALING_GATE}x: pass)")
    elif scaling_binding:
        failures.append(
            f"scaling gate FAILED: {ratio:.2f}x at {SHARD_COUNTS[-1]} shards "
            f"< required {SCALING_GATE}x with {cores} cores"
        )
    else:
        note = (
            f"insufficient cores: {cores} < {SCALING_MIN_CORES}; the "
            f"{SCALING_GATE}x scaling gate is reported but not enforced"
        )
        print(f"  scaling: {ratio:.2f}x at {SHARD_COUNTS[-1]} shards ({note})")

    p99 = runs[SHARD_COUNTS[-1]]["latency"]["p99_ms"]
    p99_ok = p99 <= P99_SLO_MS
    print(
        f"  p99 SLO: {p99:.1f}ms vs {P99_SLO_MS:.0f}ms "
        f"({'within' if p99_ok else 'EXCEEDED'} — non-blocking)"
    )

    report = {
        "report": "P9 edge load",
        "python": platform.python_version(),
        "cpu_count": cores,
        "requests": len(stream),
        "unique_instances": unique,
        "duplication": args.duplication,
        "workers": args.workers,
        "workload_families": sorted({label for label, _s, _t, _v in stream}),
        "runs": {
            str(num_shards): {
                "seconds": round(run["seconds"], 4),
                "throughput_rps": round(run["throughput_rps"], 2),
                "latency": run["latency"],
                "coalesce_hits": run["coalesce_hits"],
                "drain_rc": run["drain_rc"],
            }
            for num_shards, run in runs.items()
        },
        "scaling": {
            "ratio": round(ratio, 3),
            "gate": SCALING_GATE,
            "enforced": scaling_binding,
            "passed": scaling_ok,
            "note": note,
        },
        "p99_slo": {
            "p99_ms": p99,
            "slo_ms": P99_SLO_MS,
            "within": p99_ok,
            "blocking": False,
        },
        "parity": "ok" if not failures else "FAILED",
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"  wrote  : {args.out}")

    if failures:
        raise SystemExit("\n".join(failures))


if __name__ == "__main__":
    main()
