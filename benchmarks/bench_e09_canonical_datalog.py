"""E9 — Theorems 4.7.2/4.8: the canonical program ρ_B bottom-up.

Builds ρ_{K2} for k = 2 and evaluates it on growing graphs — under both
Datalog engines, with the verdict parity asserted inline on every row —
against the direct game solver on the same instances.  Expected shape:
all three agree on every instance and grow polynomially; the legacy
engine pays the generic-dict overhead (it materializes |B|^k IDB
relations over A^k as Python sets of tuples), the bitset kernel packs
the same relations into integers, and the direct game skips ρ_B
entirely.
"""

import pytest

from repro.datalog.canonical_program import canonical_program
from repro.datalog.evaluation import goal_holds
from repro.pebble.game import spoiler_wins
from repro.structures.graphs import clique

from _workloads import two_coloring_instance

SIZES = [3, 4, 5, 6]
K = 2
RHO = canonical_program(clique(2), K)


def test_program_construction(benchmark):
    program = benchmark(canonical_program, clique(2), K)
    assert program.is_k_datalog(K)


@pytest.mark.parametrize("engine", ["kernel", "legacy"])
@pytest.mark.parametrize("n", SIZES)
def test_rho_evaluation(benchmark, n, engine):
    source, target = two_coloring_instance(n, seed=n)
    datalog_says = benchmark(goal_holds, RHO, source, engine=engine)
    assert datalog_says == spoiler_wins(source, target, K)


@pytest.mark.parametrize("n", SIZES)
def test_direct_game_baseline(benchmark, n):
    source, target = two_coloring_instance(n, seed=n)
    benchmark(spoiler_wins, source, target, K)
