"""E6 — Lemma 3.5: Booleanization cost and preservation.

Measures (a) the encoding itself (expected: linear-with-log-factor in the
instance) and (b) end-to-end solving through the Boolean side vs solving
the original instance directly.
"""

import pytest

from repro.boolean.booleanize import booleanize
from repro.boolean.uniform import solve_schaefer_csp
from repro.csp.backtracking import solve_backtracking
from repro.structures.homomorphism import homomorphism_exists

from _workloads import c4_instance

SIZES = [8, 16, 32, 64]


@pytest.mark.parametrize("n", SIZES)
def test_encoding_cost(benchmark, n):
    source, target = c4_instance(n, seed=n)
    bz = benchmark(booleanize, source, target)
    assert bz.bits == 2  # |C4| = 4 elements -> 2 bits


@pytest.mark.parametrize("n", SIZES)
def test_end_to_end_boolean_route(benchmark, n):
    source, target = c4_instance(n, seed=n)

    def run():
        bz = booleanize(source, target)
        return solve_schaefer_csp(bz.source, bz.target)

    hom = benchmark(run)
    assert (hom is not None) == homomorphism_exists(source, target)


@pytest.mark.parametrize("n", SIZES)
def test_direct_route(benchmark, n):
    source, target = c4_instance(n, seed=n)
    benchmark(solve_backtracking, source, target)
