"""P7 — observability: plan-vs-actual calibration and the overhead gate.

Two tables:

1. **Calibration** — planned solves across the three routed instance
   families (bounded-width k-trees → dp, clique searches → search,
   dense two-colorings → pebble); each solve deposits the planner's
   predicted cost next to the kernel's *observed* route-native work
   counter (bag cells, search nodes, pebble steps) and wall latency,
   summarized per route as median prediction, median observation, and
   the observed/predicted ratio spread.  This report is the evidence
   base for replacing the heuristic cost model with theory-backed
   bounds (ROADMAP item 3).
2. **Overhead gate** — the same kernel workload timed with the
   :func:`repro.obs.metrics.kcount` hooks enabled and disabled
   (``set_kernel_metrics_enabled``), min-of-repeats, interleaved.  The
   gate **fails the run** (exit 1) if enabling metrics costs more than
   ``--gate-pct`` (default 3%) over the disabled baseline — the hooks
   must stay effectively free or they don't belong in the hot loops.

Run directly (writes ``BENCH_obs.json``)::

    python benchmarks/bench_p07_obs.py --repeat 5
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import _paths  # noqa: F401  (sys.path setup for a bare checkout)

from repro.core.pipeline import SolverPipeline
from repro.kernel.search import solve as kernel_solve
from repro.obs.calibration import CalibrationLog
from repro.obs.metrics import set_kernel_metrics_enabled
from repro.structures.graphs import clique, random_graph

from _workloads import (
    bounded_treewidth_family,
    pebble_two_coloring_instance,
    two_coloring_instance,
)

REPEAT = 5


def calibration_instances():
    """The P4.3 routed families: dp, search, and pebble traffic."""
    instances = []
    for seed in (0, 1):
        for label, source, target, _cert in bounded_treewidth_family(
            widths=(2, 3), n=36, seed=seed
        ):
            instances.append((f"{label} s={seed}", source, target))
        instances.append(
            (
                f"clique-5 s={seed}",
                clique(5),
                random_graph(16, 0.5, seed=seed),
            )
        )
        instances.append(
            (
                f"dense-2col s={seed}",
                *pebble_two_coloring_instance(40, seed=seed),
            )
        )
    return instances


def bench_calibration() -> dict:
    """Table 1: planner prediction vs kernel-observed work, per route."""
    pipeline = SolverPipeline()
    log = CalibrationLog()
    rows = []
    for label, source, target in calibration_instances():
        solution = pipeline.solve(source, target, plan=True)
        stats = solution.stats
        if stats is None or not stats.plan:
            # A pre-planner short-circuit (island/trivial case) — nothing
            # to calibrate; report the skip instead of hiding it.
            rows.append({"workload": label, "route": None, "skipped": True})
            continue
        log.observe_solve(stats)
        observation = log.rows()[-1]
        rows.append(
            {
                "workload": label,
                "route": observation["route"],
                "predicted_cost": round(observation["predicted_cost"], 1),
                "observed": observation["observed"],
                "ratio": (
                    round(
                        observation["observed"]
                        / observation["predicted_cost"],
                        4,
                    )
                    if observation["observed"]
                    and observation["predicted_cost"] > 0
                    else None
                ),
                "total_ms": round(observation["total_ms"], 3),
                "fallback": observation["fallback"],
            }
        )
    report = log.report()
    if len(report) < 3:
        raise SystemExit(
            f"calibration FAILED to cover three routes: {sorted(report)}"
        )
    return {
        "title": "P7.1 plan-vs-actual calibration (planned solves)",
        "rows": rows,
        "per_route": report,
    }


def make_kernel_workload():
    """The kernel aggregate the overhead gate times (search-heavy).

    Instances are built once, outside the timed region, so the samples
    measure kernel work (where the ``kcount`` hooks live), not graph
    generation.
    """
    graph = random_graph(18, 0.5, seed=99)
    coloring = two_coloring_instance(24, seed=24)

    def workload() -> None:
        kernel_solve(clique(5), graph)
        kernel_solve(clique(6), graph)
        kernel_solve(*coloring)

    return workload


def _sample_ms(fn, inner: int = 3) -> float:
    """One sample: wall time of ``inner`` back-to-back workload runs."""
    start = time.perf_counter()
    for _ in range(inner):
        fn()
    return (time.perf_counter() - start) * 1000


def bench_overhead(gate_pct: float) -> dict:
    """Table 2: kcount hooks enabled vs disabled on the same workload.

    Interleaved A/B with min-of-samples: the minimum is the least noisy
    estimator of the workload's true floor on a shared CI box, each
    sample batches several runs to swamp timer resolution, and the
    alternation direction flips every round so drift (thermal, cache,
    allocator growth) cannot systematically favour one mode.
    """
    workload = make_kernel_workload()
    previous = set_kernel_metrics_enabled(True)
    workload()  # warm-up: compile paths, allocator, branch caches
    enabled_ms = float("inf")
    disabled_ms = float("inf")
    try:
        for round_index in range(2 * REPEAT):
            modes = (False, True) if round_index % 2 == 0 else (True, False)
            for enabled in modes:
                set_kernel_metrics_enabled(enabled)
                sample = _sample_ms(workload)
                if enabled:
                    enabled_ms = min(enabled_ms, sample)
                else:
                    disabled_ms = min(disabled_ms, sample)
    finally:
        set_kernel_metrics_enabled(previous)
    overhead_pct = (enabled_ms - disabled_ms) / disabled_ms * 100.0
    return {
        "title": "P7.2 kernel-counter overhead gate",
        "rows": [
            {
                "workload": "kernel aggregate (2x clique search + 2-coloring)",
                "disabled_ms": round(disabled_ms, 3),
                "enabled_ms": round(enabled_ms, 3),
                "overhead_pct": round(overhead_pct, 3),
                "gate_pct": gate_pct,
                "passed": overhead_pct <= gate_pct,
            }
        ],
    }


def main() -> None:
    global REPEAT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument(
        "--gate-pct",
        type=float,
        default=3.0,
        help="fail if metrics-enabled overhead exceeds this percentage",
    )
    args = parser.parse_args()
    REPEAT = max(1, args.repeat)

    calibration = bench_calibration()
    overhead = bench_overhead(args.gate_pct)

    for bench_table in (calibration, overhead):
        print(f"\n### {bench_table['title']}")
        for row in bench_table["rows"]:
            print("  " + json.dumps(row))
    print("\nper-route calibration:")
    for route, entry in calibration["per_route"].items():
        print(f"  {route}: {json.dumps(entry)}")

    gate_row = overhead["rows"][0]
    headline = {
        "routes_calibrated": sorted(calibration["per_route"]),
        "ratio_median_by_route": {
            route: entry.get("ratio_median")
            for route, entry in calibration["per_route"].items()
        },
        "overhead_pct": gate_row["overhead_pct"],
        "gate_pct": gate_row["gate_pct"],
        "gate_passed": gate_row["passed"],
    }
    print("\nheadline:", json.dumps(headline))

    report = {
        "report": "P7 observability",
        "python": platform.python_version(),
        "repeat": REPEAT,
        "headline": headline,
        "tables": [calibration, overhead],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if not gate_row["passed"]:
        raise SystemExit(
            f"overhead gate FAILED: {gate_row['overhead_pct']}% > "
            f"{gate_row['gate_pct']}% (enabled {gate_row['enabled_ms']}ms "
            f"vs disabled {gate_row['disabled_ms']}ms)"
        )


if __name__ == "__main__":
    main()
