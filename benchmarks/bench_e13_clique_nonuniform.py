"""E13 — Section 2's negative example: CSP(cliques, graphs) does not
uniformize.

Finding K_k in a random graph is the clique problem; the backtracking
cost climbs steeply with k while every uniformized class elsewhere in
this suite stays polynomial.  This is the contrast experiment: the paper's
point is precisely that *some* nonuniform families (cliques here — each
CSP(·, G) is constant-time for fixed G) have no uniform polynomial
algorithm unless P = NP.
"""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.structures.graphs import clique, random_graph

SIZES = [3, 4, 5, 6]
GRAPH = random_graph(18, 0.5, seed=99)


@pytest.mark.parametrize("k", SIZES)
def test_clique_search(benchmark, k):
    benchmark(solve_backtracking, clique(k), GRAPH)


@pytest.mark.parametrize("k", SIZES)
def test_clique_search_no_preprocessing(benchmark, k):
    benchmark(
        solve_backtracking, clique(k), GRAPH, preprocess=False
    )
