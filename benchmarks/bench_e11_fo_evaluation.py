"""E11 — Lemma 5.2: the ∃FO^{k+1} route (the paper's "new proof").

Translates width-w sources into (w+1)-variable sentences and evaluates
them on K3, against the table-DP route of Theorem 5.4 on identical
instances.  Expected shape: the two polynomial routes agree everywhere
and scale alike (they do the same joins in different clothing).
"""

import pytest

from repro.fo.evaluation import satisfies
from repro.fo.from_decomposition import structure_to_formula
from repro.fo.syntax import num_slots
from repro.treewidth.dp import homomorphism_exists_by_treewidth

from _workloads import treewidth_instance

SIZES = [10, 20, 40]
WIDTH = 2


@pytest.mark.parametrize("n", SIZES)
def test_translation_cost(benchmark, n):
    source, _target, decomposition = treewidth_instance(n, WIDTH, seed=n)
    formula = benchmark(structure_to_formula, source, decomposition)
    assert num_slots(formula) <= WIDTH + 1


@pytest.mark.parametrize("n", SIZES)
def test_fo_route_end_to_end(benchmark, n):
    source, target, decomposition = treewidth_instance(n, WIDTH, seed=n)

    def run():
        formula = structure_to_formula(source, decomposition)
        return satisfies(target, formula)

    answer = benchmark(run)
    assert answer == homomorphism_exists_by_treewidth(
        source, target, decomposition
    )


@pytest.mark.parametrize("n", SIZES)
def test_dp_route_baseline(benchmark, n):
    source, target, decomposition = treewidth_instance(n, WIDTH, seed=n)
    benchmark(
        homomorphism_exists_by_treewidth, source, target, decomposition
    )
