"""Ablation experiments for the design choices DESIGN.md calls out.

A1 — elimination heuristic: min-fill vs min-degree (width quality and
     decomposition cost);
A2 — variable ordering in the backtracking baseline: dynamic MRV vs
     static degree order vs no preprocessing;
A3 — binary(A) scheme: chain vs full (tuple counts measured in E12; here,
     downstream solve cost);
A4 — Datalog evaluation: semi-naive vs naive rounds;
A5 — 2-SAT engine: implication-graph SCC vs [LP97] phase propagation.
"""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.csp.generators import random_structure
from repro.datalog.evaluation import evaluate_program
from repro.datalog.program import parse_program
from repro.sat.cnf import CNF
from repro.sat.two_sat import solve_2sat, solve_2sat_phases
from repro.structures.binary_encoding import binary_encoding
from repro.structures.graphs import clique, random_graph
from repro.treewidth.heuristics import decompose

from _workloads import TERNARY, treewidth_instance

# --------------------------------------------------------------------------
# A1: elimination heuristics
# --------------------------------------------------------------------------


@pytest.mark.parametrize("heuristic", ["min_fill", "min_degree"])
def test_a1_heuristic_cost(benchmark, heuristic):
    graph = random_graph(24, 0.2, seed=11)
    decomposition = benchmark(decompose, graph, heuristic)
    # min-fill should never be wildly worse than min-degree here; record
    # the achieved width as benchmark metadata.
    benchmark.extra_info["width"] = decomposition.width


# --------------------------------------------------------------------------
# A2: variable ordering
# --------------------------------------------------------------------------

_A2_SOURCE, _A2_TARGET, _A2_DEC = treewidth_instance(20, 2, seed=4)


@pytest.mark.parametrize(
    "options",
    [
        {"preprocess": True, "use_degree_order": False},   # MRV + AC
        {"preprocess": True, "use_degree_order": True},    # static + AC
        {"preprocess": False, "use_degree_order": False},  # MRV only
    ],
    ids=["mrv+ac", "degree+ac", "mrv-only"],
)
def test_a2_variable_ordering(benchmark, options):
    benchmark(solve_backtracking, _A2_SOURCE, _A2_TARGET, **options)


# --------------------------------------------------------------------------
# A3: binary-encoding schemes downstream
# --------------------------------------------------------------------------


@pytest.mark.parametrize("scheme", ["full", "chain"])
def test_a3_binary_scheme_solve(benchmark, scheme):
    source = random_structure(TERNARY, 6, 6, seed=3)
    target = random_structure(TERNARY, 3, 9, seed=4)
    encoded_source = binary_encoding(source, scheme)
    encoded_target = binary_encoding(target, "full")
    benchmark(solve_backtracking, encoded_source, encoded_target)


# --------------------------------------------------------------------------
# A4: semi-naive vs naive Datalog
# --------------------------------------------------------------------------

_TC = parse_program(
    "T(X, Y) :- E(X, Y)\nT(X, Y) :- T(X, Z), E(Z, Y)", goal="T"
)


@pytest.mark.parametrize("method", ["semi_naive", "naive"])
def test_a4_datalog_rounds(benchmark, method):
    graph = random_graph(12, 0.2, seed=8)
    result = benchmark(evaluate_program, _TC, graph, method=method)
    assert result == evaluate_program(_TC, graph)  # same fixpoint


# --------------------------------------------------------------------------
# A5: 2-SAT engines
# --------------------------------------------------------------------------


def _random_2cnf(n: int, m: int, seed: int) -> CNF:
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(m):
        a = rng.randint(1, n) * rng.choice([1, -1])
        b = rng.randint(1, n) * rng.choice([1, -1])
        clauses.append((a, b))
    return CNF(n, clauses)


@pytest.mark.parametrize("solver", [solve_2sat, solve_2sat_phases],
                         ids=["scc", "phases"])
def test_a5_two_sat_engines(benchmark, solver):
    formula = _random_2cnf(60, 140, seed=5)
    result = benchmark(solver, formula)
    other = solve_2sat(formula)
    assert (result is None) == (other is None)
