"""E15 — the introduction's lineage: Yannakakis acyclic evaluation.

Boolean chain queries of growing length evaluated by (a) GYO + semi-join
reduction and (b) the general homomorphism-based evaluator.  Expected
shape: both answer identically; the semi-join route grows linearly in the
query length while the general evaluator's cost depends on search.
"""

import pytest

from repro.cq.acyclic import yannakakis_holds
from repro.cq.evaluation import holds
from repro.cq.query import Atom, ConjunctiveQuery
from repro.structures.graphs import random_digraph

LENGTHS = [2, 4, 8, 16]
DATABASE = random_digraph(12, 0.2, seed=21)


def _chain(length: int) -> ConjunctiveQuery:
    atoms = [
        Atom("E", (f"X{i}", f"X{i + 1}")) for i in range(length)
    ]
    return ConjunctiveQuery((), atoms)


@pytest.mark.parametrize("length", LENGTHS)
def test_yannakakis(benchmark, length):
    query = _chain(length)
    result = benchmark(yannakakis_holds, query, DATABASE)
    assert result == holds(query, DATABASE)


@pytest.mark.parametrize("length", LENGTHS)
def test_general_evaluator(benchmark, length):
    query = _chain(length)
    benchmark(holds, query, DATABASE)
