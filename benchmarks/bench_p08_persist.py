"""P8 — the persistent artifact store: cold vs warm time-to-first-answer.

Two tables, parity asserted before anything is written:

1. **Pipeline TTFA** — a fresh cache generation solving a mixed corpus
   cold (computes + persists) vs warm (every structure artifact decodes
   from the store).  The warm run must report **zero** target
   compilations in its kernel counters — the decode path never runs
   ``CompiledTarget.__init__`` — with exact verdict parity per instance.
2. **Service TTFA** — wall-clock from ``SolveService.start()`` to the
   first answer of the batch, store-less vs warm-started from a
   populated store (eager cache seeding included).  This is the restart
   story in one number: how long until a respawned service gives its
   first useful answer.

Run directly (writes ``BENCH_persist.json``)::

    python benchmarks/bench_p08_persist.py --repeat 3
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import statistics
import tempfile
import time

import _paths  # noqa: F401  (sys.path setup for a bare checkout)

from repro.core.pipeline import SolverPipeline, StructureCache
from repro.csp.generators import random_schaefer_target, random_structure
from repro.datalog.canonical_program import _cached_canonical_program
from repro.persist import ArtifactStore
from repro.service import ServiceConfig, SolveService
from repro.structures.graphs import clique, random_graph
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"R": 2})

REPEAT = 3


def corpus():
    """Fresh structure objects every call — no memos ride along."""
    instances = [
        (
            random_structure(BINARY, 7, 12, seed=seed),
            random_schaefer_target(BINARY, 3, "horn", seed=seed + 1),
        )
        for seed in range(8)
    ]
    instances += [
        (clique(3), random_graph(14, 0.5, seed=seed)) for seed in range(4)
    ]
    instances += [
        (random_graph(10, 0.7, seed=seed), clique(3)) for seed in range(4)
    ]
    return instances


def rebuild(structure: Structure) -> Structure:
    return Structure(
        structure.vocabulary,
        structure.sorted_universe,
        {symbol.name: set(rel) for symbol, rel in structure.relations()},
    )


def timed_batch(pipeline, instances):
    """(total ms, time-to-first-answer ms, verdicts, compile counts)."""
    verdicts = []
    compiles = 0
    ttfa = None
    start = time.perf_counter()
    for source, target in instances:
        solution = pipeline.solve(source, target)
        if ttfa is None:
            ttfa = (time.perf_counter() - start) * 1000
        verdicts.append(solution.exists)
        compiles += (solution.stats.kernel or {}).get("compile.targets", 0)
    total = (time.perf_counter() - start) * 1000
    return total, ttfa, verdicts, compiles


def bench_pipeline(store_dir: str) -> dict:
    """Table 1: cold compute-and-persist vs warm decode-from-store."""
    cold_samples, warm_samples = [], []
    cold_verdicts = warm_verdicts = None
    warm_compiles = 0
    store_hits = 0
    for repeat in range(REPEAT):
        with tempfile.TemporaryDirectory() as tmp:
            with ArtifactStore(tmp, register_metrics=False) as store:
                instances = corpus()
                cold_total, cold_ttfa, cold_verdicts, cold_compiles = (
                    timed_batch(
                        SolverPipeline(cache=StructureCache(store=store)),
                        instances,
                    )
                )
                fresh = [
                    (rebuild(source), rebuild(target))
                    for source, target in instances
                ]
                warm_total, warm_ttfa, warm_verdicts, warm_compiles = (
                    timed_batch(
                        SolverPipeline(cache=StructureCache(store=store)),
                        fresh,
                    )
                )
                store_hits = store.stats.hits
        if cold_verdicts != warm_verdicts:
            raise SystemExit("parity FAILED: warm verdicts differ from cold")
        if warm_compiles != 0:
            raise SystemExit(
                f"warm run FAILED zero-recompilation: "
                f"{warm_compiles} targets compiled"
            )
        if cold_compiles < 1:
            raise SystemExit("cold run compiled nothing — corpus too warm")
        cold_samples.append((cold_total, cold_ttfa))
        warm_samples.append((warm_total, warm_ttfa))
    cold_total = statistics.median(s[0] for s in cold_samples)
    warm_total = statistics.median(s[0] for s in warm_samples)
    row = {
        "workload": f"{len(corpus())} mixed instances",
        "cold_total_ms": round(cold_total, 3),
        "warm_total_ms": round(warm_total, 3),
        "cold_ttfa_ms": round(
            statistics.median(s[1] for s in cold_samples), 3
        ),
        "warm_ttfa_ms": round(
            statistics.median(s[1] for s in warm_samples), 3
        ),
        "speedup_total": round(cold_total / warm_total, 2),
        "warm_target_compiles": warm_compiles,
        "warm_store_hits": store_hits,
    }
    return {
        "title": "P8.1 pipeline: cold compute-and-persist vs warm decode",
        "rows": [row],
    }


def bench_service(store_dir: str) -> dict:
    """Table 2: service restart TTFA, store-less vs warm-started."""
    instances = corpus()

    async def drive(config, batch):
        started = time.perf_counter()
        service = SolveService(config)
        await service.start()
        try:
            waiters = [
                service.submit(source, target) for source, target in batch
            ]
            first = await waiters[0]
            ttfa_ms = (time.perf_counter() - started) * 1000
            rest = await asyncio.gather(*waiters[1:])
            verdicts = [first.exists] + [s.exists for s in rest]
            total_ms = (time.perf_counter() - started) * 1000
        finally:
            await service.drain(timeout=30.0)
        return ttfa_ms, total_ms, verdicts

    # Populate the store once, through a service generation that exits
    # via drain (flush + close) like a production restart would.
    async def populate():
        config = ServiceConfig(process_workers=0, store_path=store_dir)
        service = SolveService(config)
        await service.start()
        try:
            await asyncio.gather(
                *[service.submit(s, t) for s, t in instances]
            )
        finally:
            await service.drain(timeout=30.0)

    asyncio.run(populate())

    cold_rows, warm_rows = [], []
    baseline = None
    for repeat in range(REPEAT):
        batch = [(rebuild(s), rebuild(t)) for s, t in corpus()]
        cold = asyncio.run(
            drive(ServiceConfig(process_workers=0), batch)
        )
        batch = [(rebuild(s), rebuild(t)) for s, t in corpus()]
        warm = asyncio.run(
            drive(
                ServiceConfig(process_workers=0, store_path=store_dir),
                batch,
            )
        )
        if cold[2] != warm[2]:
            raise SystemExit("parity FAILED: warm service differs from cold")
        baseline = cold[2]
        cold_rows.append(cold)
        warm_rows.append(warm)
    row = {
        "workload": f"start → {len(instances)} answers",
        "storeless_ttfa_ms": round(
            statistics.median(r[0] for r in cold_rows), 3
        ),
        "warm_ttfa_ms": round(
            statistics.median(r[0] for r in warm_rows), 3
        ),
        "storeless_total_ms": round(
            statistics.median(r[1] for r in cold_rows), 3
        ),
        "warm_total_ms": round(
            statistics.median(r[1] for r in warm_rows), 3
        ),
        "verdicts_sat": sum(1 for v in baseline if v),
    }
    return {
        "title": "P8.2 service restart: store-less vs warm-started",
        "rows": [row],
    }


def main() -> None:
    global REPEAT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default="BENCH_persist.json")
    args = parser.parse_args()
    REPEAT = max(1, args.repeat)

    _cached_canonical_program.cache_clear()
    with tempfile.TemporaryDirectory() as store_dir:
        pipeline_table = bench_pipeline(store_dir)
    with tempfile.TemporaryDirectory() as store_dir:
        service_table = bench_service(store_dir)

    for table in (pipeline_table, service_table):
        print(f"\n### {table['title']}")
        for row in table["rows"]:
            print("  " + json.dumps(row))

    headline = {
        "pipeline_speedup_total": pipeline_table["rows"][0]["speedup_total"],
        "warm_target_compiles": pipeline_table["rows"][0][
            "warm_target_compiles"
        ],
        "service_warm_ttfa_ms": service_table["rows"][0]["warm_ttfa_ms"],
        "service_storeless_ttfa_ms": service_table["rows"][0][
            "storeless_ttfa_ms"
        ],
    }
    print("\nheadline:", json.dumps(headline))

    report = {
        "report": "P8 persistent artifact store",
        "python": platform.python_version(),
        "repeat": REPEAT,
        "headline": headline,
        "tables": [pipeline_table, service_table],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
