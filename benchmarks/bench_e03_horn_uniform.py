"""E3 — Theorems 3.3 vs 3.4 (Horn): direct beats formula building.

Three uniform algorithms on the same random Horn instances:

* ``horn-direct``  — the O(‖A‖·‖B‖) algorithm of Theorem 3.4;
* ``horn-formula`` — the formula-building route of Theorem 3.3;
* ``backtracking`` — the generic NP baseline.

Expected shape: all three answer identically; the two polynomial routes
scale smoothly with ‖A‖; the direct route is at least as fast as the
formula route (it skips constructing δ and the CNF), and backtracking is
competitive only because Horn instances rarely force deep search.
"""

import pytest

from repro.boolean.direct import solve_horn_csp
from repro.boolean.uniform import solve_schaefer_csp
from repro.csp.backtracking import solve_backtracking

from _workloads import satisfiable_horn_instance

SIZES = [10, 20, 40, 80]


@pytest.mark.parametrize("n", SIZES)
def test_horn_direct(benchmark, n):
    source, target = satisfiable_horn_instance(n, seed=n)
    hom = benchmark(solve_horn_csp, source, target)
    assert hom is not None  # the target is 0-valid by construction


@pytest.mark.parametrize("n", SIZES)
def test_horn_formula_building(benchmark, n):
    source, target = satisfiable_horn_instance(n, seed=n)
    hom = benchmark(solve_schaefer_csp, source, target)
    assert hom is not None


@pytest.mark.parametrize("n", SIZES)
def test_backtracking_baseline(benchmark, n):
    source, target = satisfiable_horn_instance(n, seed=n)
    hom = benchmark(solve_backtracking, source, target)
    assert hom is not None
