"""P5 — the compiled query plane: batch containment, cores, planner.

Three tables, answers asserted identical before anything is written:

1. **Containment matrix vs legacy pairwise loop**: ``containment_matrix``
   (fingerprint-deduped compiles, one shared union vocabulary, planner
   routing) against the seed-era loop of one-shot ``contains`` calls that
   rebuilds both canonical databases per pair — on a mixed family of
   ≥ 40 seeded queries.  The acceptance floor is a 5x speedup with exact
   matrix parity.
2. **Minimization: compiled kernel vs legacy**: ``minimize`` on
   redundant chain queries — the kernel core engine (masked bitset
   endomorphism search) against the legacy materialize-a-substructure
   loop; identical minimized queries required.
3. **Containment planner routing**: route distribution and per-route
   verdict parity across three pair families (small/mixed → search,
   bounded-width → dp-eligible, large two-atom → saraiya-eligible).

Run directly (writes ``BENCH_query.json``)::

    python benchmarks/bench_p05_query.py --repeat 3
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import statistics
import time

import _paths  # noqa: F401  (sys.path setup for a bare checkout)

from repro.cq.containment import (
    containment_matrix,
    contains,
    equivalence_classes,
    plan_containment,
)
from repro.cq.minimize import minimize
from repro.cq.query import Atom, ConjunctiveQuery
from repro.csp.generators import (
    random_chain_query,
    random_query,
    random_star_query,
    random_two_atom_query,
)
from repro.structures.vocabulary import Vocabulary

REPEAT = 3

VOC = Vocabulary.from_arities({"E": 2, "T": 3})


def timed(fn, *args):
    """(median wall-clock ms over REPEAT runs, last result)."""
    result = None
    samples = []
    for _ in range(REPEAT):
        start = time.perf_counter()
        result = fn(*args)
        samples.append((time.perf_counter() - start) * 1000)
    return statistics.median(samples), result


def fresh(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """A structurally equal rebuild with cold memos (fair cold timing)."""
    return ConjunctiveQuery(query.head_variables, query.atoms, query.name)


def query_family(count: int, *, seed: int = 0) -> list[ConjunctiveQuery]:
    """A mixed family of unary-head queries (the matrix workload)."""
    queries: list[ConjunctiveQuery] = []
    for i in range(count):
        kind = i % 4
        s = seed * 1000 + i
        if kind == 0:
            queries.append(
                random_query(3, 4, VOC, head_width=1, seed=s)
            )
        elif kind == 1:
            queries.append(
                random_two_atom_query(2, 4, head_width=1, seed=s)
            )
        elif kind == 2:
            chain = random_chain_query(1 + i % 4)
            queries.append(
                ConjunctiveQuery((chain.head_variables[0],), chain.atoms)
            )
        else:
            queries.append(random_star_query(1 + i % 3))
    return queries


def redundant_chain(
    length: int, extra: int, *, seed: int = 0
) -> ConjunctiveQuery:
    """A chain query with ``extra`` dangling atoms its core folds away."""
    rng = random.Random(seed)
    atoms = [Atom("E", (f"X{i}", f"X{i + 1}")) for i in range(length)]
    for j in range(extra):
        start = rng.randint(0, length - 1)
        atoms.append(Atom("E", (f"X{start}", f"Y{j}")))
    return ConjunctiveQuery(("X0", f"X{length}"), atoms)


def bench_matrix(num_queries: int) -> dict:
    """Table 1: the batch matrix vs the legacy pairwise loop."""
    queries = query_family(num_queries)

    def legacy_loop(qs):
        return [[contains(a, b, engine="legacy") for b in qs] for a in qs]

    legacy_ms, legacy = timed(lambda: legacy_loop(query_family(num_queries)))
    cold_ms, cold = timed(
        lambda: containment_matrix(query_family(num_queries))
    )
    warm_ms, warm = timed(lambda: containment_matrix(queries))
    if cold != legacy or warm != legacy:
        raise SystemExit("parity FAILED: matrix differs from legacy loop")
    classes = equivalence_classes(queries)
    row = {
        "workload": f"mixed family n={num_queries} "
        f"({num_queries * num_queries} pairs)",
        "legacy_pairwise_ms": round(legacy_ms, 3),
        "matrix_cold_ms": round(cold_ms, 3),
        "matrix_warm_ms": round(warm_ms, 3),
        "speedup_cold": round(legacy_ms / cold_ms, 1),
        "speedup_warm": round(legacy_ms / warm_ms, 1),
        "equivalence_classes": len(classes),
    }
    return {
        "title": "P5.1 containment matrix vs legacy pairwise loop",
        "rows": [row],
    }


def bench_minimize() -> dict:
    """Table 2: kernel core engine vs legacy on redundant queries."""
    rows = []
    for length, extra in ((4, 3), (5, 4), (6, 5)):
        query = redundant_chain(length, extra, seed=length)
        kernel_ms, kernel = timed(lambda q=query: minimize(fresh(q)))
        legacy_ms, legacy = timed(
            lambda q=query: minimize(fresh(q), engine="legacy")
        )
        if kernel != legacy:
            raise SystemExit(
                f"parity FAILED: minimize differs on chain {length}+{extra}"
            )
        rows.append(
            {
                "workload": f"chain {length} + {extra} redundant atoms",
                "kernel_ms": round(kernel_ms, 3),
                "legacy_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / kernel_ms, 1),
                "atoms_removed": extra,
                "minimal_atoms": len(kernel.atoms),
            }
        )
    return {
        "title": "P5.2 minimization: kernel core engine vs legacy",
        "rows": rows,
    }


def bench_planner() -> dict:
    """Table 3: containment planner routing across three pair families."""
    wide_voc = Vocabulary.from_arities({f"R{i}": 2 for i in range(12)})
    pairs = []
    for seed in (0, 1, 2):
        a, b = query_family(2, seed=seed + 7)[:2]
        pairs.append((f"mixed s={seed}", a, b))
        length = 40 + 10 * seed
        pairs.append(
            (f"chain-4 ⊆ chain-{length}", random_chain_query(4),
             random_chain_query(length))
        )
        big1 = random_two_atom_query(12, 60, head_width=1, seed=seed)
        big2 = random_query(80, 60, wide_voc, head_width=1, seed=seed + 1)
        pairs.append((f"two-atom-big s={seed}", big1, big2))
    rows = []
    for label, q1, q2 in pairs:
        plan = plan_containment(q1, q2)
        tick = time.perf_counter()
        routed = contains(q1, q2, plan=True)
        elapsed_ms = (time.perf_counter() - tick) * 1000
        direct = contains(q1, q2)
        if routed != direct:
            raise SystemExit(f"parity FAILED on {label}: routed verdict")
        rows.append(
            {
                "workload": label,
                "route": plan.route,
                "saraiya_eligible": plan.saraiya_eligible,
                "search_cost": round(plan.search_cost, 1),
                "dp_cost": plan.dp_cost,
                "width": plan.width,
                "ms": round(elapsed_ms, 3),
                "contains": routed,
            }
        )
    routes = sorted({row["route"] for row in rows})
    return {
        "title": "P5.3 containment planner routing",
        "rows": rows,
        "distinct_routes": routes,
    }


def main() -> None:
    global REPEAT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--queries", type=int, default=48)
    parser.add_argument("--out", default="BENCH_query.json")
    args = parser.parse_args()
    REPEAT = max(1, args.repeat)

    matrix = bench_matrix(max(40, args.queries))
    minimization = bench_minimize()
    planner = bench_planner()

    for table in (matrix, minimization, planner):
        print(f"\n### {table['title']}")
        for row in table["rows"]:
            print("  " + json.dumps(row))

    minimize_speedups = [row["speedup"] for row in minimization["rows"]]
    headline = {
        "matrix_speedup_cold": matrix["rows"][0]["speedup_cold"],
        "matrix_speedup_warm": matrix["rows"][0]["speedup_warm"],
        "minimize_speedup_median": statistics.median(minimize_speedups),
        "minimize_speedup_min": min(minimize_speedups),
        "minimize_speedup_max": max(minimize_speedups),
        "planner_routes": planner["distinct_routes"],
    }
    print("\nheadline:", json.dumps(headline))
    if headline["matrix_speedup_cold"] < 5:
        raise SystemExit(
            "matrix FAILED the 5x acceptance floor over the legacy loop"
        )
    if len(planner["distinct_routes"]) < 3:
        raise SystemExit(
            "planner FAILED to route three pair families to three routes"
        )

    report = {
        "report": "P5 compiled query plane",
        "python": platform.python_version(),
        "repeat": REPEAT,
        "headline": headline,
        "tables": [matrix, minimization, planner],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
