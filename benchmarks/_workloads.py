"""Shared, deterministic workloads for the experiment suite.

Every experiment in EXPERIMENTS.md draws its inputs from here so that the
pytest-benchmark targets and the printable report (``run_all.py``) measure
exactly the same instances.
"""

from __future__ import annotations

import random

from repro.csp.generators import (
    bounded_treewidth_structure,
    random_chain_query,
    random_schaefer_target,
    random_structure,
    random_two_atom_query,
)
from repro.structures.graphs import random_digraph, random_graph
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"R": 2})
TERNARY = Vocabulary.from_arities({"T": 3})


def boolean_instance(
    n: int, schaefer_class: str, *, seed: int = 0
) -> tuple[Structure, Structure]:
    """A CSP instance with a Schaefer Boolean target.

    The source has ``n`` elements and ``2n`` binary facts; the target's
    relation is a random relation closed into ``schaefer_class``.
    """
    target = random_schaefer_target(BINARY, 3, schaefer_class, seed=seed)
    source = random_structure(BINARY, n, 2 * n, seed=seed + 1)
    return source, target


def satisfiable_horn_instance(
    n: int, *, seed: int = 0
) -> tuple[Structure, Structure]:
    """A Horn instance guaranteed solvable (target is also 0-valid)."""
    rng = random.Random(seed)
    tuples = {(0, 0)}
    for _ in range(3):
        tuples.add((rng.randint(0, 1), rng.randint(0, 1)))
    # close under AND
    closed = set(tuples)
    while True:
        new = {
            tuple(x & y for x, y in zip(a, b))
            for a in closed
            for b in closed
        }
        if new <= closed:
            break
        closed |= new
    target = Structure(BINARY, {0, 1}, {"R": closed})
    source = random_structure(BINARY, n, 2 * n, seed=seed + 1)
    return source, target


def two_coloring_instance(n: int, *, seed: int = 0):
    """A sparse random graph against K2 (the classic Datalog-expressible
    CSP)."""
    from repro.structures.graphs import clique

    return random_graph(n, 2.0 / max(n - 1, 1), seed=seed), clique(2)


def c4_instance(n: int, *, seed: int = 0):
    """A sparse random digraph against the directed 4-cycle of
    Example 3.8."""
    from repro.structures.graphs import directed_cycle

    return (
        random_digraph(n, 1.5 / max(n - 1, 1), seed=seed),
        directed_cycle(4),
    )


def treewidth_instance(n: int, width: int, *, seed: int = 0):
    """A width-bounded source with its certificate, against K3."""
    from repro.structures.graphs import clique
    from repro.treewidth.decomposition import TreeDecomposition

    structure, bags, tree_edges = bounded_treewidth_structure(
        n, width, edge_keep_probability=0.9, seed=seed
    )
    return structure, clique(3), TreeDecomposition(bags, tree_edges)


def bounded_treewidth_family(
    *,
    widths: tuple[int, ...] = (2, 3, 4),
    n: int = 36,
    seed: int = 0,
):
    """Seeded width-bounded instances with certificates, widths 2–4.

    Returns ``(label, source, target, decomposition)`` tuples — one
    instance per width, each a random partial k-tree against a clique
    one color larger than the width would need in the dense case, so
    both satisfiable and refutable instances occur across seeds.  This
    is the family the decomposition-kernel benchmarks (P4) and the
    service mix use to exercise the DP route at every supported width.
    """
    from repro.structures.graphs import clique
    from repro.treewidth.decomposition import TreeDecomposition

    family = []
    for width in widths:
        structure, bags, tree_edges = bounded_treewidth_structure(
            n, width, edge_keep_probability=0.9, seed=seed + width
        )
        family.append(
            (
                f"ktree-w{width}",
                structure,
                clique(min(width + 1, 4)),
                TreeDecomposition(bags, tree_edges),
            )
        )
    return family


def pebble_two_coloring_instance(n: int, p: float = 0.15, *, seed: int = 0):
    """A dense graph against a *non-Boolean* two-element clique.

    Relabeling K2's universe keeps the Schaefer islands from claiming
    the target, so the instance reaches the width-aware planner: the
    source's width blows past any threshold while the two-value target
    keeps the k-pebble closure cheap — the planner's pebble route, where
    the k=3 game refutes the (almost surely present) odd cycles.
    """
    from repro.structures.graphs import clique

    target = clique(2).rename_elements({0: "c0", 1: "c1"})
    return random_graph(n, p, seed=seed), target


def containment_pair(size: int, *, seed: int = 0):
    """A two-atom Q1 with a general Q2, both over ``size`` predicates."""
    q1 = random_two_atom_query(size, size + 2, seed=seed)
    q2 = random_two_atom_query(size, size + 2, seed=seed + 999)
    return q1, q2


def mixed_service_workload(
    *,
    seed: int = 0,
    variants: int = 2,
    clique_sizes: tuple[int, ...] = (4, 5),
    horn_n: int = 40,
    boolean_n: int = 30,
    coloring_n: int = 40,
    treewidth_n: int = 36,
    chain_length: int = 4,
    database_n: int = 12,
) -> list[tuple[str, Structure, Structure]]:
    """The P3 serving mix: every pipeline route, labelled, deterministic.

    Returns ``(label, source, target)`` triples covering the paper's
    islands (Horn / bijunctive / affine fast routes), the treewidth DP,
    CQ evaluation (chain query against a random database), 2-coloring
    (pebble territory), and the backtracking-heavy clique searches of
    E13.  ``variants`` controls how many seeded variants of each family
    are produced; both the service load benchmark and the service
    parity suite draw from here so they exercise the same traffic shape.
    """
    from repro.cq.canonical import body_structure
    from repro.structures.graphs import clique, random_digraph, random_graph

    instances: list[tuple[str, Structure, Structure]] = []
    for v in range(variants):
        s = seed + 101 * v
        instances.append(
            ("horn", *satisfiable_horn_instance(horn_n, seed=s))
        )
        instances.append(
            ("bijunctive", *boolean_instance(boolean_n, "bijunctive", seed=s))
        )
        instances.append(
            ("affine", *boolean_instance(boolean_n, "affine", seed=s))
        )
        instances.append(
            ("two-coloring", *two_coloring_instance(coloring_n, seed=s))
        )
        structure, target, _decomposition = treewidth_instance(
            treewidth_n, 2, seed=s
        )
        instances.append(("treewidth", structure, target))
        # The width 2-4 bounded-treewidth family: the service's DP route
        # at every width the default threshold admits (and one past it).
        for label, ktree, ktarget, _cert in bounded_treewidth_family(
            n=treewidth_n, seed=s
        ):
            instances.append((label, ktree, ktarget))
        instances.append(
            ("pebble-2col", *pebble_two_coloring_instance(40, seed=s))
        )
        query = random_chain_query(chain_length, seed=s)
        instances.append(
            (
                "cq-evaluation",
                body_structure(query),
                random_digraph(database_n, 0.3, seed=s),
            )
        )
        for k in clique_sizes:
            instances.append(
                (
                    f"clique-{k}",
                    clique(k),
                    random_graph(16, 0.5, seed=s + k),
                )
            )
    return instances
