"""E4 — Theorem 3.4 (bijunctive): phase propagation on structures.

Compares the direct bijunctive solver (emulated [LP97] phases), the
formula-building 2-SAT route of Theorem 3.3, and generic backtracking on
2-coloring instances (sparse random graph vs K2, Booleanized).

Expected shape: identical answers; both polynomial routes scale smoothly;
the direct route avoids materializing the quadratic 2-CNF.
"""

import pytest

from repro.boolean.booleanize import booleanize
from repro.boolean.direct import solve_bijunctive_csp
from repro.boolean.uniform import solve_schaefer_csp
from repro.csp.backtracking import solve_backtracking
from repro.structures.homomorphism import homomorphism_exists

from _workloads import two_coloring_instance

SIZES = [8, 16, 32, 64]


def _booleanized(n):
    source, target = two_coloring_instance(n, seed=n)
    bz = booleanize(source, target)
    return source, target, bz


@pytest.mark.parametrize("n", SIZES)
def test_bijunctive_direct(benchmark, n):
    source, target, bz = _booleanized(n)
    hom = benchmark(solve_bijunctive_csp, bz.source, bz.target)
    assert (hom is not None) == homomorphism_exists(source, target)


@pytest.mark.parametrize("n", SIZES)
def test_bijunctive_formula_building(benchmark, n):
    source, target, bz = _booleanized(n)
    hom = benchmark(solve_schaefer_csp, bz.source, bz.target)
    assert (hom is not None) == homomorphism_exists(source, target)


@pytest.mark.parametrize("n", SIZES)
def test_backtracking_baseline(benchmark, n):
    source, target, _bz = _booleanized(n)
    benchmark(solve_backtracking, source, target)
