"""E5 — Theorem 3.3 (affine): the GF(2) elimination route.

CSP(C4) instances (Example 3.8) Booleanize into affine structures; the
uniform solver reduces them to GF(2) linear systems.  Benchmarked against
generic backtracking on the original instances.

Expected shape: the affine route is polynomial (Gaussian elimination,
cubic worst case) and stays flat while the instances grow; both routes
agree on every instance.
"""

import pytest

from repro.boolean.booleanize import booleanize
from repro.boolean.uniform import solve_schaefer_csp
from repro.csp.backtracking import solve_backtracking
from repro.structures.homomorphism import homomorphism_exists

from _workloads import c4_instance

SIZES = [8, 16, 32, 64]


@pytest.mark.parametrize("n", SIZES)
def test_affine_gf2_route(benchmark, n):
    source, target = c4_instance(n, seed=n)
    bz = booleanize(source, target)

    def run():
        return solve_schaefer_csp(bz.source, bz.target)

    hom = benchmark(run)
    assert (hom is not None) == homomorphism_exists(source, target)


@pytest.mark.parametrize("n", SIZES)
def test_backtracking_baseline(benchmark, n):
    source, target = c4_instance(n, seed=n)
    benchmark(solve_backtracking, source, target)
