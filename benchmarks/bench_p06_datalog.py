"""P6 — the compiled Datalog plane: bitset semi-naive vs the legacy engine.

Three tables, answers asserted identical before anything is written:

1. **Evaluation: kernel vs legacy** on the extended E9 workload — the
   canonical program ρ_{K2} decided on growing 2-coloring sources
   (``goal_holds``, the early-exiting decision) and fully evaluated
   (``evaluate_program``, exact IDB parity required fact-for-fact), plus
   transitive-closure rows on random digraphs.  The acceptance floor is
   a 5x aggregate speedup across the table with exact parity on every
   row.
2. **Theorem 4.2 decision route**: ``canonical_refutes`` through the
   compiled pebble game (which never materializes ρ_B) vs the legacy
   route that builds ρ_B and evaluates it bottom-up — verdict parity on
   every instance, including against the reference game.
3. **Service route**: ``submit_datalog`` batches under coalescing —
   wall-clock for a duplicate-heavy batch plus the stats snapshot
   (datalog_requests, coalesce_hits, the "datalog" latency bucket).

Run directly (writes ``BENCH_datalog.json``)::

    python benchmarks/bench_p06_datalog.py --repeat 3
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import random
import statistics
import time

import _paths  # noqa: F401  (sys.path setup for a bare checkout)

from _workloads import two_coloring_instance
from repro.datalog.canonical_program import (
    canonical_program,
    canonical_refutes,
)
from repro.datalog.evaluation import evaluate_program, goal_holds
from repro.datalog.program import parse_program
from repro.pebble.game import spoiler_wins
from repro.service import ServiceConfig, SolveService
from repro.structures.graphs import clique, random_digraph

REPEAT = 3

RHO = canonical_program(clique(2), 2)
TC = parse_program(
    "T(X, Y) :- E(X, Y)\nT(X, Y) :- T(X, Z), E(Z, Y)", goal="T"
)


def timed(fn, *args):
    """(median wall-clock ms over REPEAT runs, last result)."""
    result = None
    samples = []
    for _ in range(REPEAT):
        start = time.perf_counter()
        result = fn(*args)
        samples.append((time.perf_counter() - start) * 1000)
    return statistics.median(samples), result


def bench_evaluation(max_n: int) -> dict:
    """Table 1: kernel vs legacy on the extended E9 workload."""
    rows = []
    kernel_total = legacy_total = 0.0
    for n in range(3, max_n + 1):
        source, _target = two_coloring_instance(n, seed=n)
        kernel_ms, kernel_says = timed(goal_holds, RHO, source)
        legacy_ms, legacy_says = timed(
            lambda: goal_holds(RHO, source, engine="legacy")
        )
        if kernel_says != legacy_says:
            raise SystemExit(f"parity FAILED: goal_holds differs at n={n}")
        kernel_total += kernel_ms
        legacy_total += legacy_ms
        rows.append(
            {
                "workload": f"rho_K2 goal_holds n={n}",
                "kernel_ms": round(kernel_ms, 3),
                "legacy_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / kernel_ms, 1),
                "refutes": kernel_says,
            }
        )
    for n in (6, 8, 10):
        source, _target = two_coloring_instance(n, seed=n)
        kernel_ms, kernel_db = timed(
            lambda: evaluate_program(RHO, source, engine="kernel")
        )
        legacy_ms, legacy_db = timed(
            lambda: evaluate_program(RHO, source, engine="legacy")
        )
        if kernel_db != legacy_db:
            raise SystemExit(f"parity FAILED: rho_K2 IDB differs at n={n}")
        kernel_total += kernel_ms
        legacy_total += legacy_ms
        rows.append(
            {
                "workload": f"rho_K2 full fixpoint n={n}",
                "kernel_ms": round(kernel_ms, 3),
                "legacy_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / kernel_ms, 1),
                "idb_facts": sum(len(f) for f in kernel_db.values()),
            }
        )
    for n in (12, 16, 20):
        graph = random_digraph(n, 0.3, seed=n)
        kernel_ms, kernel_db = timed(
            lambda: evaluate_program(TC, graph, engine="kernel")
        )
        legacy_ms, legacy_db = timed(
            lambda: evaluate_program(TC, graph, engine="legacy")
        )
        if kernel_db != legacy_db:
            raise SystemExit(f"parity FAILED: TC differs at n={n}")
        kernel_total += kernel_ms
        legacy_total += legacy_ms
        rows.append(
            {
                "workload": f"transitive closure n={n}",
                "kernel_ms": round(kernel_ms, 3),
                "legacy_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / kernel_ms, 1),
                "idb_facts": len(kernel_db["T"]),
            }
        )
    return {
        "title": "P6.1 Datalog evaluation: bitset kernel vs legacy",
        "rows": rows,
        "aggregate_speedup": round(legacy_total / kernel_total, 1),
    }


def bench_decision() -> dict:
    """Table 2: the Theorem 4.2 route vs materializing ρ_B."""
    rows = []
    for n, k in ((6, 2), (8, 2), (10, 2), (6, 3)):
        rng = random.Random(n * 31 + k)
        source = random_digraph(n, 0.3, seed=rng.randrange(10_000))
        target = clique(2) if k == 2 else clique(3)
        kernel_ms, kernel_says = timed(
            canonical_refutes, source, target, k
        )
        legacy_ms, legacy_says = timed(
            lambda: canonical_refutes(source, target, k, engine="legacy")
        )
        if kernel_says != legacy_says:
            raise SystemExit(
                f"parity FAILED: canonical_refutes differs at n={n} k={k}"
            )
        if kernel_says != spoiler_wins(source, target, k):
            raise SystemExit(
                f"parity FAILED: reference game differs at n={n} k={k}"
            )
        rows.append(
            {
                "workload": f"refute K{len(target.universe)} n={n} k={k}",
                "pebblek_ms": round(kernel_ms, 3),
                "materialized_rho_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / kernel_ms, 1),
                "refutes": kernel_says,
            }
        )
    return {
        "title": "P6.2 Theorem 4.2 decision: pebblek route vs materialized rho_B",
        "rows": rows,
    }


def bench_service() -> dict:
    """Table 3: submit_datalog batches under coalescing."""
    instances = []
    for seed in range(12):
        rng = random.Random(seed * 13 + 7)
        source = random_digraph(rng.randint(4, 7), 0.3, seed=seed)
        instances.append((source, clique(3)))
    batch = instances + instances[:6]  # 6 duplicate resubmissions

    async def drive():
        config = ServiceConfig(thread_workers=4, process_workers=0)
        async with SolveService(config) as service:
            waiters = [
                service.submit_datalog(source, target, k=2)
                for source, target in batch
            ]
            await asyncio.gather(*waiters)
            return service.stats.snapshot()

    start = time.perf_counter()
    snapshot = asyncio.run(drive())
    elapsed_ms = (time.perf_counter() - start) * 1000
    row = {
        "workload": f"{len(batch)} submits ({len(instances)} distinct)",
        "wall_ms": round(elapsed_ms, 3),
        "datalog_requests": snapshot["datalog_requests"],
        "coalesce_hits": snapshot["coalesce_hits"],
        "route_count": snapshot["routes"]["datalog"]["count"],
        "route_p95_ms": snapshot["routes"]["datalog"]["p95_ms"],
    }
    if row["datalog_requests"] != len(batch):
        raise SystemExit("service FAILED to count every datalog submit")
    if row["coalesce_hits"] < 1:
        raise SystemExit("service FAILED to coalesce duplicate submits")
    return {
        "title": "P6.3 service submit_datalog under coalescing",
        "rows": [row],
    }


def main() -> None:
    global REPEAT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--max-n", type=int, default=14)
    parser.add_argument("--out", default="BENCH_datalog.json")
    args = parser.parse_args()
    REPEAT = max(1, args.repeat)

    evaluation = bench_evaluation(args.max_n)
    decision = bench_decision()
    service = bench_service()

    for table in (evaluation, decision, service):
        print(f"\n### {table['title']}")
        for row in table["rows"]:
            print("  " + json.dumps(row))

    headline = {
        "evaluation_speedup_aggregate": evaluation["aggregate_speedup"],
        "evaluation_speedup_max": max(
            row["speedup"] for row in evaluation["rows"]
        ),
        "decision_speedup_median": statistics.median(
            row["speedup"] for row in decision["rows"]
        ),
        "service_coalesce_hits": service["rows"][0]["coalesce_hits"],
    }
    print("\nheadline:", json.dumps(headline))
    if headline["evaluation_speedup_aggregate"] < 5:
        raise SystemExit(
            "datalog kernel FAILED the 5x aggregate acceptance floor"
        )

    report = {
        "report": "P6 compiled Datalog plane",
        "python": platform.python_version(),
        "repeat": REPEAT,
        "headline": headline,
        "tables": [evaluation, decision, service],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
