"""E2 — Theorem 3.2: defining-formula construction is polynomial.

Benchmarks each of the four constructions on relations of growing arity.
Expected shape: bijunctive/affine stay comfortably polynomial; the
Horn/dual-Horn generators walk the truth table, so their cost scales with
2^arity — polynomial in the Booleanized instances they serve (see the
module docstring of repro.boolean.formulas).
"""

import pytest

from repro.boolean.formulas import (
    affine_defining_formula,
    bijunctive_defining_formula,
    dual_horn_defining_formula,
    horn_defining_formula,
)

from repro.csp.generators import random_boolean_target
from repro.structures.vocabulary import Vocabulary


def _relation(arity: int, closure: str, seed: int):
    from repro.boolean.relations import boolean_relations_of

    vocabulary = Vocabulary.from_arities({"R": arity})
    target = random_boolean_target(vocabulary, 4, closure=closure, seed=seed)
    return boolean_relations_of(target)["R"]


@pytest.mark.parametrize("arity", [2, 4, 6])
def test_bijunctive_construction(benchmark, arity):
    relation = _relation(arity, "bijunctive", arity)
    clauses = benchmark(bijunctive_defining_formula, relation)
    assert all(len(c) <= 2 for c in clauses)


@pytest.mark.parametrize("arity", [2, 4, 6])
def test_horn_construction(benchmark, arity):
    relation = _relation(arity, "horn", arity + 10)
    benchmark(horn_defining_formula, relation)


@pytest.mark.parametrize("arity", [2, 4, 6])
def test_dual_horn_construction(benchmark, arity):
    relation = _relation(arity, "dual_horn", arity + 20)
    benchmark(dual_horn_defining_formula, relation)


@pytest.mark.parametrize("arity", [2, 4, 6])
def test_affine_construction(benchmark, arity):
    relation = _relation(arity, "affine", arity + 30)
    equations = benchmark(affine_defining_formula, relation)
    assert len(equations) <= arity + 1
