"""Path setup for running the benchmarks from a checkout."""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)
