"""E8 — Theorems 4.7/4.9: the existential k-pebble game in O(n^{2k}).

Benchmarks the game solver and the table-based k-consistency variant on
2-colorability instances for k = 2, 3, growing |A|.  Expected shape:
polynomial growth with a visible jump from k=2 to k=3 (the exponent is
2k); for k=3 the game decides the CSP exactly (cCSP(K2) is
Datalog-expressible), matching backtracking's verdicts.
"""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.pebble.game import solve_pebble_game
from repro.pebble.kconsistency import strong_k_consistent
from repro.structures.homomorphism import homomorphism_exists

from _workloads import two_coloring_instance

SIZES = [4, 6, 8]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("k", [2, 3])
def test_pebble_game(benchmark, n, k):
    source, target = two_coloring_instance(n, seed=n)
    result = benchmark(solve_pebble_game, source, target, k)
    if k == 3:
        assert result.duplicator_wins == homomorphism_exists(source, target)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("k", [2, 3])
def test_kconsistency_tables(benchmark, n, k):
    source, target = two_coloring_instance(n, seed=n)
    answer = benchmark(strong_k_consistent, source, target, k)
    if k == 3:
        assert answer == homomorphism_exists(source, target)


@pytest.mark.parametrize("n", SIZES)
def test_backtracking_baseline(benchmark, n):
    source, target = two_coloring_instance(n, seed=n)
    benchmark(solve_backtracking, source, target)
