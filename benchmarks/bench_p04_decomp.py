"""P4 — the decomposition kernel: compiled DP, generalized pebble, planner.

Three tables, answers asserted identical before anything is written:

1. **DP kernel vs legacy** on the E10 bounded-treewidth workload
   (widths 2–4 with certificate decompositions, clique targets): the
   compiled bag-table DP (``repro.kernel.decomp``) against the legacy
   bag-map enumeration (``solve_by_treewidth(engine="legacy")``).
2. **Generalized k-pebble vs legacy** on the E8 two-coloring workload at
   k = 3 (plus the table-based legacy variant): the compiled bitset
   fixpoint (``repro.kernel.pebblek``) against the deletion loop of
   ``repro.pebble.game``.
3. **Planner routing**: the width-aware planner on three instance
   families — bounded-width k-trees (→ dp), clique-into-dense-graph
   searches (→ search), and dense almost-surely-non-2-colorable graphs
   against a non-Boolean two-element target (→ pebble) — with the route,
   the cost signals, and the winning strategy label per instance.

Run directly (writes ``BENCH_decomp.json``)::

    python benchmarks/bench_p04_decomp.py --repeat 3
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time

import _paths  # noqa: F401  (sys.path setup for a bare checkout)

from repro.core.pipeline import SolverPipeline
from repro.kernel.decomp import solve_decomposition
from repro.kernel.pebblek import spoiler_wins_k
from repro.pebble.game import spoiler_wins
from repro.pebble.kconsistency import strong_k_consistent
from repro.structures.graphs import clique, random_graph
from repro.structures.homomorphism import is_homomorphism
from repro.treewidth.dp import solve_by_treewidth

from _workloads import (
    bounded_treewidth_family,
    pebble_two_coloring_instance,
    treewidth_instance,
    two_coloring_instance,
)

REPEAT = 3


def timed(fn, *args):
    """(median wall-clock ms over REPEAT runs, last result)."""
    result = None
    samples = []
    for _ in range(REPEAT):
        start = time.perf_counter()
        result = fn(*args)
        samples.append((time.perf_counter() - start) * 1000)
    return statistics.median(samples), result


def bench_dp() -> dict:
    """Table 1: kernel vs legacy DP on the E10 workload."""
    instances = []
    source, target, certificate = treewidth_instance(40, 2, seed=40)
    instances.append(("E10 n=40 w=2 K3", source, target, certificate))
    for n in (40, 60):
        for label, source, target, certificate in bounded_treewidth_family(
            n=n, seed=n
        ):
            instances.append(
                (
                    f"E10 {label} n={n} K{len(target)}",
                    source,
                    target,
                    certificate,
                )
            )
    rows = []
    for label, source, target, certificate in instances:
        kernel_ms, kernel = timed(
            solve_decomposition, source, target, certificate
        )
        legacy_ms, legacy = timed(
            lambda: solve_by_treewidth(
                source, target, certificate, engine="legacy"
            )
        )
        if (kernel is None) != (legacy is None):
            raise SystemExit(f"parity FAILED on {label}: verdicts differ")
        for witness in (kernel, legacy):
            if witness is not None and not is_homomorphism(
                witness, source, target
            ):
                raise SystemExit(f"parity FAILED on {label}: bad witness")
        rows.append(
            {
                "workload": label,
                "kernel_ms": round(kernel_ms, 3),
                "legacy_ms": round(legacy_ms, 3),
                "speedup": round(legacy_ms / kernel_ms, 1),
                "exists": kernel is not None,
            }
        )
    return {"title": "P4.1 kernel DP vs legacy (E10 workload)", "rows": rows}


def bench_pebble() -> dict:
    """Table 2: generalized kernel game vs both legacy fixpoints, k=3."""
    rows = []
    for n in (4, 6, 8, 12):
        source, target = two_coloring_instance(n, seed=n)
        kernel_ms, kernel = timed(spoiler_wins_k, source, target, 3)
        game_ms, game = timed(
            lambda: spoiler_wins(source, target, 3, engine="legacy")
        )
        tables_ms, tables = timed(
            lambda: strong_k_consistent(source, target, 3, engine="legacy")
        )
        if kernel != game or kernel == tables:
            raise SystemExit(f"parity FAILED on E8 n={n}: verdicts differ")
        rows.append(
            {
                "workload": f"E8 2-coloring n={n} k=3",
                "kernel_ms": round(kernel_ms, 3),
                "legacy_game_ms": round(game_ms, 3),
                "legacy_tables_ms": round(tables_ms, 3),
                "speedup_vs_game": round(game_ms / kernel_ms, 1),
                "spoiler_wins": kernel,
            }
        )
    return {
        "title": "P4.2 generalized k-pebble vs legacy (E8, k=3)",
        "rows": rows,
    }


def bench_planner() -> dict:
    """Table 3: planner routing across three instance families."""
    pipeline = SolverPipeline()
    instances = []
    for seed in (0, 1):
        for label, source, target, _cert in bounded_treewidth_family(
            widths=(2, 3), n=36, seed=seed
        ):
            instances.append((label, source, target))
        instances.append(
            (f"clique-5 s={seed}", clique(5), random_graph(16, 0.5, seed=seed))
        )
        instances.append(
            (
                f"dense-2col s={seed}",
                *pebble_two_coloring_instance(40, seed=seed),
            )
        )
    rows = []
    for label, source, target in instances:
        tick = time.perf_counter()
        solution = pipeline.solve(source, target, plan=True)
        elapsed_ms = (time.perf_counter() - tick) * 1000
        baseline = pipeline.solve(source, target)
        if solution.exists != baseline.exists:
            raise SystemExit(f"parity FAILED on {label}: planner answer")
        plan = solution.stats.plan or {}
        rows.append(
            {
                "workload": label,
                "route": plan.get("route"),
                "strategy": solution.strategy,
                "width": plan.get("width"),
                "search_cost": plan.get("search_cost"),
                "dp_cost": plan.get("dp_cost"),
                "pebble_cost": plan.get("pebble_cost"),
                "ms": round(elapsed_ms, 3),
                "exists": solution.exists,
            }
        )
    routes = sorted({row["route"] for row in rows if row["route"]})
    return {
        "title": "P4.3 width-aware planner routing",
        "rows": rows,
        "distinct_routes": routes,
    }


def main() -> None:
    global REPEAT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default="BENCH_decomp.json")
    args = parser.parse_args()
    REPEAT = max(1, args.repeat)

    dp = bench_dp()
    pebble = bench_pebble()
    planner = bench_planner()

    for table in (dp, pebble, planner):
        print(f"\n### {table['title']}")
        for row in table["rows"]:
            print("  " + json.dumps(row))

    dp_speedups = [row["speedup"] for row in dp["rows"]]
    pebble_speedups = [row["speedup_vs_game"] for row in pebble["rows"]]
    headline = {
        # Workload-level speedup: total legacy wall-clock over total
        # kernel wall-clock across every row — the time saved actually
        # serving the whole E10 mix.
        "dp_speedup_workload": round(
            sum(r["legacy_ms"] for r in dp["rows"])
            / sum(r["kernel_ms"] for r in dp["rows"]),
            1,
        ),
        "dp_speedup_median": statistics.median(dp_speedups),
        "dp_speedup_min": min(dp_speedups),
        "dp_speedup_max": max(dp_speedups),
        "pebble_k3_speedup_workload": round(
            sum(r["legacy_game_ms"] for r in pebble["rows"])
            / sum(r["kernel_ms"] for r in pebble["rows"]),
            1,
        ),
        "pebble_k3_speedup_median": statistics.median(pebble_speedups),
        "pebble_k3_speedup_min": min(pebble_speedups),
        "pebble_k3_speedup_max": max(pebble_speedups),
        "planner_distinct_routes": planner["distinct_routes"],
    }
    print("\nheadline:", json.dumps(headline))
    if len(planner["distinct_routes"]) < 3:
        raise SystemExit(
            "planner FAILED to route three families to three engines"
        )

    report = {
        "report": "P4 decomposition kernel",
        "python": platform.python_version(),
        "repeat": REPEAT,
        "headline": headline,
        "tables": [dp, pebble, planner],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
