"""P3 — service load: concurrent serving vs a serial ``solve()`` loop.

The load generator models the north-star serving shape: a mixed stream
(Horn/bijunctive/affine fast routes, 2-coloring, treewidth DP, CQ
evaluation, and the backtracking-heavy clique searches of E13) in which
each distinct instance is requested several times — many users, few
distinct queries.  The serial baseline answers the stream one
``SolverPipeline.solve`` at a time (its ``StructureCache`` still
amortizes per-target analysis, so the comparison is fair); the service
answers it through :class:`repro.service.SolveService`, which adds
in-flight coalescing of duplicates, thread workers for the cheap
routes, and process-pool workers for the heavy ones.

Run directly (writes ``BENCH_service.json``)::

    python benchmarks/bench_p03_service_load.py --duplication 6

The JSON records wall-clock throughput for both runs, the speedup,
p50/p95/p99 latencies, coalesce-hit counts, and the full service stats
snapshot.  Answers are asserted identical between the two runs before
anything is written.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import time

import _paths  # noqa: F401  (sys.path setup for a bare checkout)

from repro.core.pipeline import SolverPipeline
from repro.service import ServiceConfig, SolveService
from repro.service.stats import LatencyHistogram

from _workloads import mixed_service_workload


def build_request_stream(
    *, seed: int, variants: int, duplication: int, clique_sizes: tuple[int, ...]
) -> tuple[list[tuple[str, object, object]], int]:
    """The request stream: each unique instance ``duplication`` times, shuffled."""
    unique = mixed_service_workload(
        seed=seed, variants=variants, clique_sizes=clique_sizes
    )
    stream = [instance for instance in unique for _ in range(duplication)]
    random.Random(seed).shuffle(stream)
    return stream, len(unique)


def run_serial(stream) -> dict:
    """Answer the stream with one pipeline, one call at a time."""
    pipeline = SolverPipeline()
    histogram = LatencyHistogram()
    answers = []
    start = time.perf_counter()
    for _label, source, target in stream:
        tick = time.perf_counter()
        solution = pipeline.solve(source, target)
        histogram.record((time.perf_counter() - tick) * 1000)
        answers.append(solution)
    elapsed = time.perf_counter() - start
    return {
        "answers": answers,
        "seconds": elapsed,
        "throughput_rps": len(stream) / elapsed,
        "latency": histogram.snapshot(),
    }


def run_service(stream, config: ServiceConfig) -> dict:
    """Answer the stream through the concurrent service."""

    async def drive():
        async with SolveService(config) as service:
            start = time.perf_counter()
            answers = await service.submit_many(
                (source, target) for _label, source, target in stream
            )
            elapsed = time.perf_counter() - start
            return answers, elapsed, service.stats.snapshot()

    answers, elapsed, snapshot = asyncio.run(drive())
    return {
        "answers": answers,
        "seconds": elapsed,
        "throughput_rps": len(stream) / elapsed,
        "stats": snapshot,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--variants", type=int, default=2,
        help="seeded variants per workload family",
    )
    parser.add_argument(
        "--duplication", type=int, default=6,
        help="how many times each unique instance is requested",
    )
    parser.add_argument(
        "--max-clique", type=int, default=5,
        help="largest clique size in the backtracking-heavy part",
    )
    parser.add_argument("--thread-workers", type=int, default=4)
    parser.add_argument(
        "--process-workers", type=int, default=None,
        help="default: one per CPU; 0 disables the process backend",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args()

    clique_sizes = tuple(range(4, args.max_clique + 1))
    # Two independently built (structurally equal) streams: compilation
    # and fingerprints are memoized on the Structure objects themselves,
    # so sharing objects would let whichever run goes second inherit the
    # first run's warm memos.
    stream, unique = build_request_stream(
        seed=args.seed,
        variants=args.variants,
        duplication=args.duplication,
        clique_sizes=clique_sizes,
    )
    service_stream, _ = build_request_stream(
        seed=args.seed,
        variants=args.variants,
        duplication=args.duplication,
        clique_sizes=clique_sizes,
    )
    print(
        f"P3 service load: {len(stream)} requests "
        f"({unique} unique instances x {args.duplication})"
    )

    serial = run_serial(stream)
    print(
        f"  serial : {serial['seconds']:8.3f}s  "
        f"{serial['throughput_rps']:8.1f} req/s"
    )

    config = ServiceConfig(
        thread_workers=args.thread_workers,
        process_workers=args.process_workers,
    )
    service = run_service(service_stream, config)
    print(
        f"  service: {service['seconds']:8.3f}s  "
        f"{service['throughput_rps']:8.1f} req/s  "
        f"(coalesce hits: {service['stats']['coalesce_hits']}, "
        f"process solves: {service['stats']['process_solves']})"
    )
    speedup = serial["seconds"] / service["seconds"]
    print(f"  speedup: {speedup:8.2f}x")

    mismatches = sum(
        1
        for ours, theirs in zip(service["answers"], serial["answers"])
        if ours.exists != theirs.exists
        or ours.homomorphism != theirs.homomorphism
    )
    if mismatches:
        raise SystemExit(
            f"parity FAILED: {mismatches} answers differ from the serial run"
        )
    print("  parity : service answers == serial answers")

    report = {
        "report": "P3 service load",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "requests": len(stream),
        "unique_instances": unique,
        "duplication": args.duplication,
        "workload_families": sorted({label for label, _s, _t in stream}),
        "serial": {
            "seconds": round(serial["seconds"], 4),
            "throughput_rps": round(serial["throughput_rps"], 2),
            "latency": serial["latency"],
        },
        "service": {
            "seconds": round(service["seconds"], 4),
            "throughput_rps": round(service["throughput_rps"], 2),
            "config": {
                "thread_workers": config.thread_workers,
                "process_workers": config.process_workers,
                "process_cost_threshold": config.process_cost_threshold,
                "num_shards": config.num_shards,
            },
            "stats": service["stats"],
        },
        "speedup": round(speedup, 3),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"  wrote  : {args.out}")


if __name__ == "__main__":
    main()
