"""E10 — Theorem 5.4: the bounded-treewidth dynamic program.

Width-w random sources (w = 1, 2, 3) against K3, solved by the DP with
the certificate decomposition and by generic backtracking.  Expected
shape: the DP's cost grows with |B|^{w+1} but stays polynomial in n for
each fixed w; backtracking is exponential in principle, competitive on
easy instances, and has no width guarantee.
"""

import pytest

from repro.csp.backtracking import solve_backtracking
from repro.structures.homomorphism import homomorphism_exists
from repro.treewidth.dp import solve_by_treewidth

from _workloads import treewidth_instance

SIZES = [10, 20, 40]
WIDTHS = [1, 2, 3]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("width", WIDTHS)
def test_treewidth_dp(benchmark, n, width):
    source, target, decomposition = treewidth_instance(n, width, seed=n)
    hom = benchmark(solve_by_treewidth, source, target, decomposition)
    assert (hom is not None) == homomorphism_exists(source, target)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("width", WIDTHS)
def test_backtracking_baseline(benchmark, n, width):
    source, target, _decomposition = treewidth_instance(n, width, seed=n)
    benchmark(solve_backtracking, source, target)
