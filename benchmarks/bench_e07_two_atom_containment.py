"""E7 — Proposition 3.6 (Saraiya): polynomial two-atom containment.

Compares the Booleanization→bijunctive pipeline against the general
(NP-complete) containment test on random two-atom instances of growing
size.  Expected shape: identical answers; the polynomial route scales
smoothly; the general route relies on search and may spike.
"""

import pytest

from repro.cq.containment import contains
from repro.cq.saraiya import two_atom_contains

from _workloads import containment_pair

SIZES = [2, 4, 6, 8]


@pytest.mark.parametrize("size", SIZES)
def test_saraiya_route(benchmark, size):
    q1, q2 = containment_pair(size, seed=size)
    result = benchmark(two_atom_contains, q1, q2)
    assert result == contains(q1, q2)


@pytest.mark.parametrize("size", SIZES)
def test_general_containment(benchmark, size):
    q1, q2 = containment_pair(size, seed=size)
    benchmark(contains, q1, q2)
