"""E14 — Theorem 2.1: the three formulations cost the same.

For random query pairs, decides containment by (a) the homomorphism
route, (b) the evaluation route, and — for the structure formulation —
(c) solves the same instance as a CSP.  Expected shape: identical
answers, comparable polynomial cost (they are reductions of each other
with small constant overhead).
"""

import pytest

from repro.core.problem import HomomorphismProblem
from repro.cq.containment import contains, contains_via_evaluation
from repro.structures.homomorphism import homomorphism_exists

from _workloads import containment_pair

SIZES = [2, 4, 6]


@pytest.mark.parametrize("size", SIZES)
def test_homomorphism_route(benchmark, size):
    q1, q2 = containment_pair(size, seed=size)
    result = benchmark(contains, q1, q2)
    assert result == contains_via_evaluation(q1, q2)


@pytest.mark.parametrize("size", SIZES)
def test_evaluation_route(benchmark, size):
    q1, q2 = containment_pair(size, seed=size)
    benchmark(contains_via_evaluation, q1, q2)


@pytest.mark.parametrize("size", SIZES)
def test_csp_route(benchmark, size):
    q1, q2 = containment_pair(size, seed=size)
    problem = HomomorphismProblem.from_containment(q1, q2)

    def run():
        return homomorphism_exists(problem.source, problem.target)

    result = benchmark(run)
    assert result == contains(q1, q2)
