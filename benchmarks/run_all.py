#!/usr/bin/env python3
"""Print the experiment report: one table per experiment E1–E15, P1–P7.

This is the "rows/series" harness of EXPERIMENTS.md: each table reports
wall-clock medians for every algorithm on the shared workloads of
``_workloads.py``, so the shapes (who wins, scaling trend, crossovers)
can be read off directly.  pytest-benchmark gives the statistically
careful numbers; this runner gives the at-a-glance reproduction report.
P1 exercises the solver pipeline itself (routing overhead, fingerprint
cache, ``solve_many``); P2 compares the compiled bitset kernel against
the legacy pure-dict solver on the backtracking-heavy workloads; P4
does the same for the decomposition kernel — the compiled treewidth DP
(E10) and the generalized k-pebble engine (E8) — see
``bench_p04_decomp.py`` for the full version with planner routing; P5
compares the compiled query plane (batch containment matrix, kernel
cores) against the legacy one-shot paths — see ``bench_p05_query.py``
for the full version with the containment planner; P6 compares the
bitset Datalog engine against the legacy evaluator and the Theorem 4.2
decision routes, with parity asserted inline — see
``bench_p06_datalog.py`` for the full version with the service route;
P7 summarizes the plan-vs-actual calibration log on planned solves —
see ``bench_p07_obs.py`` for the full calibration tables and the
kernel-counter overhead gate.

Run:  python benchmarks/run_all.py [--repeat 3] [--json out.json]

``--json`` additionally dumps every table's medians (raw numbers, not
the formatted strings) to a JSON file, so perf snapshots can be
committed and compared across commits (see BENCH_kernel.json).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import _paths  # noqa: F401  (puts src/ and benchmarks/ on sys.path)

import _workloads as W  # noqa: E402
from repro.boolean.booleanize import booleanize  # noqa: E402
from repro.boolean.direct import (  # noqa: E402
    solve_bijunctive_csp,
    solve_horn_csp,
)
from repro.boolean.schaefer import classify_structure  # noqa: E402
from repro.boolean.uniform import solve_schaefer_csp  # noqa: E402
from repro.csp.backtracking import solve_backtracking  # noqa: E402
from repro.csp.generators import random_boolean_target  # noqa: E402
from repro.core.pipeline import SolverPipeline  # noqa: E402
from repro.cq.acyclic import yannakakis_holds  # noqa: E402
from repro.cq.containment import (  # noqa: E402
    contains,
    contains_via_evaluation,
)
from repro.cq.evaluation import holds  # noqa: E402
from repro.cq.query import Atom, ConjunctiveQuery  # noqa: E402
from repro.cq.saraiya import two_atom_contains  # noqa: E402
from repro.datalog.canonical_program import canonical_program  # noqa: E402
from repro.datalog.evaluation import goal_holds  # noqa: E402
from repro.fo.evaluation import satisfies  # noqa: E402
from repro.fo.from_decomposition import structure_to_formula  # noqa: E402
from repro.pebble.game import spoiler_wins  # noqa: E402
from repro.pebble.kconsistency import strong_k_consistent  # noqa: E402
from repro.structures.binary_encoding import binary_encoding  # noqa: E402
from repro.structures.graphs import (  # noqa: E402
    clique,
    random_digraph,
    random_graph,
)
from repro.treewidth.dp import solve_by_treewidth  # noqa: E402

REPEAT = 3

#: Tables recorded by ``table()`` for the optional ``--json`` dump.
REPORT: list[dict] = []


def timed(fn, *args, **kwargs) -> float:
    """Median wall-clock milliseconds over REPEAT runs."""
    samples = []
    for _ in range(REPEAT):
        start = time.perf_counter()
        fn(*args, **kwargs)
        samples.append((time.perf_counter() - start) * 1000)
    return statistics.median(samples)


class _Cell(str):
    """A formatted cell that remembers the raw number for the JSON dump."""

    raw: float


def table(title: str, header: list[str], rows: list[list]) -> None:
    REPORT.append(
        {
            "title": title,
            "header": list(header),
            "rows": [
                [
                    cell.raw if isinstance(cell, _Cell) else cell
                    for cell in row
                ]
                for row in rows
            ],
        }
    )
    print(f"\n### {title}")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def ms(value: float) -> _Cell:
    cell = _Cell(f"{value:8.2f}ms")
    cell.raw = value
    return cell


def ratio(value: float) -> _Cell:
    cell = _Cell(f"{value:6.1f}x")
    cell.raw = value
    return cell


def e01() -> None:
    rows = []
    for tuples in (4, 8, 16, 32):
        target = random_boolean_target(W.TERNARY, tuples, seed=tuples)
        rows.append([tuples, ms(timed(classify_structure, target))])
    table("E1 Schaefer recognition (Thm 3.1)", ["|R|", "classify"], rows)


def e03() -> None:
    from repro.boolean.schaefer import SchaeferClass
    from repro.boolean.uniform import build_instance_formula
    from repro.sat.horn import solve_horn

    rows = []
    for n in (10, 20, 40, 80):
        source, target = W.satisfiable_horn_instance(n, seed=n)

        def formula_route():
            # Force the Horn construction: the generated targets are also
            # 0-valid, and letting pick_class take the constant-map
            # shortcut would make the comparison vacuous.
            formula, _vars = build_instance_formula(
                source, target, SchaeferClass.HORN
            )
            return solve_horn(formula)

        rows.append(
            [
                n,
                ms(timed(solve_horn_csp, source, target)),
                ms(timed(formula_route)),
                ms(timed(solve_backtracking, source, target)),
            ]
        )
    table(
        "E3 Horn uniform CSP (Thm 3.4 vs 3.3 vs baseline)",
        ["‖A‖", "direct", "formula", "backtracking"],
        rows,
    )


def e04() -> None:
    rows = []
    for n in (8, 16, 32, 64):
        source, target = W.two_coloring_instance(n, seed=n)
        bz = booleanize(source, target)
        rows.append(
            [
                n,
                ms(timed(solve_bijunctive_csp, bz.source, bz.target)),
                ms(timed(solve_schaefer_csp, bz.source, bz.target)),
                ms(timed(solve_backtracking, source, target)),
            ]
        )
    table(
        "E4 Bijunctive uniform CSP (Thm 3.4)",
        ["n", "direct", "formula", "backtracking"],
        rows,
    )


def e05_e06() -> None:
    rows = []
    for n in (8, 16, 32, 64):
        source, target = W.c4_instance(n, seed=n)

        def boolean_route():
            bz = booleanize(source, target)
            return solve_schaefer_csp(bz.source, bz.target)

        rows.append(
            [
                n,
                ms(timed(boolean_route)),
                ms(timed(solve_backtracking, source, target)),
            ]
        )
    table(
        "E5/E6 CSP(C4) via Booleanization+affine (Lemma 3.5, Ex 3.8)",
        ["n", "booleanize+GF(2)", "backtracking"],
        rows,
    )


def e07() -> None:
    rows = []
    for size in (2, 4, 6, 8):
        q1, q2 = W.containment_pair(size, seed=size)
        rows.append(
            [
                size,
                ms(timed(two_atom_contains, q1, q2)),
                ms(timed(contains, q1, q2)),
            ]
        )
    table(
        "E7 Two-atom containment (Prop 3.6)",
        ["#preds", "saraiya", "general"],
        rows,
    )


def e08() -> None:
    rows = []
    for n in (4, 6, 8):
        source, target = W.two_coloring_instance(n, seed=n)
        rows.append(
            [
                n,
                ms(timed(spoiler_wins, source, target, 2)),
                ms(timed(spoiler_wins, source, target, 3)),
                ms(timed(strong_k_consistent, source, target, 3)),
                ms(timed(solve_backtracking, source, target)),
            ]
        )
    table(
        "E8 Existential k-pebble game (Thm 4.7/4.9)",
        ["n", "game k=2", "game k=3", "tables k=3", "backtracking"],
        rows,
    )


def e09() -> None:
    rho = canonical_program(clique(2), 2)
    rows = []
    for n in (3, 4, 5, 6):
        source, target = W.two_coloring_instance(n, seed=n)
        kernel_says = goal_holds(rho, source, engine="kernel")
        legacy_says = goal_holds(rho, source, engine="legacy")
        game_says = spoiler_wins(source, target, 2)
        assert kernel_says == legacy_says == game_says, f"E9 parity n={n}"
        rows.append(
            [
                n,
                ms(timed(goal_holds, rho, source, engine="kernel")),
                ms(timed(goal_holds, rho, source, engine="legacy")),
                ms(timed(spoiler_wins, source, target, 2)),
            ]
        )
    table(
        "E9 Canonical program rho_B (Thm 4.7.2)",
        ["n", "datalog kernel", "datalog legacy", "direct game"],
        rows,
    )


def e10_e11() -> None:
    rows = []
    for n in (10, 20, 40):
        source, target, decomposition = W.treewidth_instance(n, 2, seed=n)

        def fo_route():
            formula = structure_to_formula(source, decomposition)
            return satisfies(target, formula)

        rows.append(
            [
                n,
                ms(timed(solve_by_treewidth, source, target, decomposition)),
                ms(timed(fo_route)),
                ms(timed(solve_backtracking, source, target)),
            ]
        )
    table(
        "E10/E11 width-2 sources vs K3 (Thm 5.4, Lemma 5.2)",
        ["n", "treewidth DP", "FO^{k+1}", "backtracking"],
        rows,
    )


def e12() -> None:
    rows = []
    for n in (4, 8, 16):
        source = W.random_structure(W.TERNARY, n, n, seed=n)
        rows.append(
            [
                n,
                ms(timed(binary_encoding, source, "full")),
                ms(timed(binary_encoding, source, "chain")),
                binary_encoding(source, "full").num_facts,
                binary_encoding(source, "chain").num_facts,
            ]
        )
    table(
        "E12 binary(A) encoding (Lemma 5.5)",
        ["n", "full (ms)", "chain (ms)", "full tuples", "chain tuples"],
        rows,
    )


def e13() -> None:
    graph = random_graph(18, 0.5, seed=99)
    rows = []
    for k in (3, 4, 5, 6):
        rows.append(
            [k, ms(timed(solve_backtracking, clique(k), graph))]
        )
    table(
        "E13 clique CSP does not uniformize (Section 2)",
        ["k", "find K_k in G(18, .5)"],
        rows,
    )


def e14() -> None:
    rows = []
    for size in (2, 4, 6):
        q1, q2 = W.containment_pair(size, seed=size)
        rows.append(
            [
                size,
                ms(timed(contains, q1, q2)),
                ms(timed(contains_via_evaluation, q1, q2)),
            ]
        )
    table(
        "E14 Chandra-Merlin routes (Thm 2.1)",
        ["#preds", "hom route", "eval route"],
        rows,
    )


def e15() -> None:
    database = random_digraph(12, 0.2, seed=21)
    rows = []
    for length in (2, 4, 8, 16):
        atoms = [
            Atom("E", (f"X{i}", f"X{i + 1}")) for i in range(length)
        ]
        query = ConjunctiveQuery((), atoms)
        rows.append(
            [
                length,
                ms(timed(yannakakis_holds, query, database)),
                ms(timed(holds, query, database)),
            ]
        )
    table(
        "E15 Yannakakis acyclic evaluation (introduction's lineage)",
        ["chain", "semi-join", "general"],
        rows,
    )


def p01() -> None:
    """The pipeline itself: cached classification and batch amortization."""
    target = random_boolean_target(W.TERNARY, 16, seed=3)
    sources = [
        W.random_structure(W.TERNARY, n, 2 * n, seed=n)
        for n in (8, 12, 16, 20)
    ]
    pairs = [(source, target) for source in sources]

    def cold() -> None:
        # a fresh pipeline per call: classification recomputed each time,
        # which is exactly what the seed dispatcher did
        for source, tgt in pairs:
            SolverPipeline().solve(source, tgt)

    def warm() -> None:
        SolverPipeline().solve_many(pairs)

    rows = [
        [len(pairs), ms(timed(cold)), ms(timed(warm))],
    ]
    table(
        "P1 pipeline batch vs per-call (fingerprint cache amortization)",
        ["batch size", "cold (per-call)", "warm (solve_many)"],
        rows,
    )
    pipeline = SolverPipeline()
    solutions = pipeline.solve_many(pairs)
    hits = sum(s.stats.cache_hits for s in solutions)
    misses = sum(s.stats.cache_misses for s in solutions)
    print(
        f"(shared target classified once: {misses} cache miss(es), "
        f"{hits} hit(s) across {len(solutions)} solves)"
    )


def p02() -> None:
    """The compiled kernel vs the legacy solver, backtracking-heavy only."""
    from repro.kernel import use_engine

    graph = random_graph(18, 0.5, seed=99)
    coloring_8 = W.two_coloring_instance(8, seed=8)
    coloring_64 = W.two_coloring_instance(64, seed=64)
    q1, q2 = W.containment_pair(6, seed=6)
    workloads = [
        (
            "E8 2-coloring n=8",
            lambda: solve_backtracking(*coloring_8),
        ),
        (
            "E8 2-coloring n=64",
            lambda: solve_backtracking(*coloring_64),
        ),
        (
            "E13 K5 into G(18,.5)",
            lambda: solve_backtracking(clique(5), graph),
        ),
        (
            "E13 K6 into G(18,.5)",
            lambda: solve_backtracking(clique(6), graph),
        ),
        (
            "E14 containment #preds=6",
            lambda: contains(q1, q2),
        ),
    ]
    rows = []
    for label, fn in workloads:
        with use_engine("kernel"):
            kernel = timed(fn)
        with use_engine("legacy"):
            legacy = timed(fn)
        rows.append([label, ms(kernel), ms(legacy), ratio(legacy / kernel)])
    table(
        "P2 compiled kernel vs legacy solver (backtracking-heavy)",
        ["workload", "kernel", "legacy", "speedup"],
        rows,
    )


def p04() -> None:
    """The decomposition kernel vs legacy: treewidth DP and k-pebble."""
    from repro.kernel import use_engine
    from _workloads import bounded_treewidth_family

    workloads = []
    for label, source, target, certificate in bounded_treewidth_family(
        n=40, seed=40
    ):
        workloads.append(
            (
                f"E10 {label} K{len(target)}",
                # bind loop variables now, not at call time
                lambda s=source, t=target, d=certificate: solve_by_treewidth(
                    s, t, d
                ),
            )
        )
    for n in (6, 8):
        source, target = W.two_coloring_instance(n, seed=n)
        workloads.append(
            (
                f"E8 pebble k=3 n={n}",
                lambda s=source, t=target: spoiler_wins(s, t, 3),
            )
        )
        workloads.append(
            (
                f"E8 tables k=3 n={n}",
                lambda s=source, t=target: strong_k_consistent(s, t, 3),
            )
        )
    rows = []
    for label, fn in workloads:
        with use_engine("kernel"):
            kernel = timed(fn)
        with use_engine("legacy"):
            legacy = timed(fn)
        rows.append([label, ms(kernel), ms(legacy), ratio(legacy / kernel)])
    table(
        "P4 decomposition kernel vs legacy (E8/E10)",
        ["workload", "kernel", "legacy", "speedup"],
        rows,
    )


def p05() -> None:
    """The compiled query plane vs the legacy one-shot paths."""
    from bench_p05_query import fresh, query_family, redundant_chain
    from repro.cq.containment import containment_matrix
    from repro.cq.minimize import minimize

    def legacy_matrix() -> None:
        queries = query_family(16)
        [[contains(a, b, engine="legacy") for b in queries] for a in queries]

    def compiled_matrix() -> None:
        containment_matrix(query_family(16))

    redundant = redundant_chain(5, 4, seed=5)
    rows = [
        [
            "P5 matrix 16 queries (256 pairs)",
            ms(timed(compiled_matrix)),
            ms(timed(legacy_matrix)),
        ],
        [
            "P5 minimize chain 5+4 redundant",
            ms(timed(lambda: minimize(fresh(redundant)))),
            ms(timed(lambda: minimize(fresh(redundant), engine="legacy"))),
        ],
    ]
    for row in rows:
        row.append(ratio(row[2].raw / row[1].raw))
    table(
        "P5 compiled query plane vs legacy (containment, minimization)",
        ["workload", "compiled", "legacy", "speedup"],
        rows,
    )


def p06() -> None:
    """The compiled Datalog plane vs the legacy engine, parity inline."""
    from repro.datalog.canonical_program import canonical_refutes
    from repro.datalog.evaluation import evaluate_program
    from repro.datalog.program import parse_program

    rho = canonical_program(clique(2), 2)
    tc = parse_program(
        "T(X, Y) :- E(X, Y)\nT(X, Y) :- T(X, Z), E(Z, Y)", goal="T"
    )
    rows = []
    for label, program, structure in (
        ("rho_K2 fixpoint n=8", rho, W.two_coloring_instance(8, seed=8)[0]),
        ("rho_K2 fixpoint n=10", rho, W.two_coloring_instance(10, seed=10)[0]),
        ("TC n=16", tc, random_digraph(16, 0.3, seed=16)),
    ):
        kernel_db = evaluate_program(program, structure, engine="kernel")
        legacy_db = evaluate_program(program, structure, engine="legacy")
        assert kernel_db == legacy_db, f"P6 parity: {label}"
        kernel = timed(evaluate_program, program, structure, engine="kernel")
        legacy = timed(evaluate_program, program, structure, engine="legacy")
        rows.append([label, ms(kernel), ms(legacy), ratio(legacy / kernel)])
    source = random_digraph(8, 0.3, seed=8)
    assert canonical_refutes(source, clique(2), 2) == canonical_refutes(
        source, clique(2), 2, engine="legacy"
    ) == spoiler_wins(source, clique(2), 2), "P6 parity: Thm 4.2 decision"
    kernel = timed(canonical_refutes, source, clique(2), 2)
    legacy = timed(canonical_refutes, source, clique(2), 2, engine="legacy")
    rows.append(
        ["Thm 4.2 decision n=8 k=2", ms(kernel), ms(legacy),
         ratio(legacy / kernel)]
    )
    table(
        "P6 compiled Datalog plane vs legacy (evaluation, Thm 4.2)",
        ["workload", "kernel", "legacy", "speedup"],
        rows,
    )


def p07() -> None:
    """Plan-vs-actual calibration: planner cost guess vs kernel work."""
    from repro.obs.calibration import ROUTE_WORK_COUNTER, CalibrationLog

    pipeline = SolverPipeline()
    log = CalibrationLog()
    for source, target in (
        *(
            (item[1], item[2])
            for item in W.bounded_treewidth_family(widths=(2,), n=36, seed=0)
        ),
        (clique(5), random_graph(16, 0.5, seed=0)),
        W.pebble_two_coloring_instance(40, seed=0),
    ):
        solution = pipeline.solve(source, target, plan=True)
        if solution.stats is not None:
            log.observe_solve(solution.stats)
    rows = []
    for route, entry in log.report().items():
        rows.append(
            [
                route,
                ROUTE_WORK_COUNTER.get(route, "-"),
                f"{entry['predicted_median']:.0f}",
                f"{entry.get('observed_median', '-')}",
                f"{entry.get('ratio_median', '-')}",
                ms(entry["latency_median_ms"]),
            ]
        )
    table(
        "P7 plan-vs-actual calibration (see bench_p07_obs.py for the "
        "overhead gate)",
        ["route", "work counter", "predicted", "observed", "ratio", "median"],
        rows,
    )


def main() -> None:
    global REPEAT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="dump every table's medians (raw numbers) to this JSON file",
    )
    args = parser.parse_args()
    REPEAT = max(1, args.repeat)
    print("Experiment report — Kolaitis & Vardi reproduction")
    print("(median wall-clock per call; see EXPERIMENTS.md for shapes)")
    for experiment in (
        e01, e03, e04, e05_e06, e07, e08, e09, e10_e11, e12, e13, e14,
        e15, p01, p02, p04, p05, p06, p07,
    ):
        experiment()
    if args.json is not None:
        payload = {
            "report": "Kolaitis & Vardi reproduction",
            "repeat": REPEAT,
            "python": sys.version.split()[0],
            "tables": REPORT,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\n(wrote {len(REPORT)} tables to {args.json})")


if __name__ == "__main__":
    main()
