"""Cross-module integration tests: every solver route must agree.

These are the reproduction's strongest checks — for a single random
instance, up to seven independently implemented deciders answer the same
question:

1. generic backtracking (structures.homomorphism),
2. the treewidth DP (treewidth.dp),
3. the ∃FO^{k+1} translation + evaluation (fo),
4. Booleanization + the Schaefer formula-building route (boolean.uniform),
5. Booleanization + a direct Theorem 3.4 algorithm when applicable,
6. containment of canonical queries (cq.containment),
7. the uniform dispatcher (core.solver).

Plus the Section 4 stack: pebble game == k-consistency == ρ_B Datalog.
"""

from hypothesis import given, settings

from repro.boolean.booleanize import booleanize
from repro.boolean.schaefer import classify_structure, is_schaefer
from repro.boolean.uniform import solve_schaefer_csp
from repro.core.solver import solve
from repro.cq.canonical import query_of_structure
from repro.cq.containment import contains
from repro.cq.evaluation import holds
from repro.datalog.canonical_program import canonical_program
from repro.datalog.evaluation import goal_holds
from repro.fo.from_decomposition import homomorphism_exists_by_fo
from repro.pebble.game import duplicator_wins
from repro.pebble.kconsistency import strong_k_consistent
from repro.structures.binary_encoding import binary_encoding
from repro.structures.homomorphism import homomorphism_exists
from repro.treewidth.dp import homomorphism_exists_by_treewidth

from conftest import structure_pairs


class TestAllRoutesAgree:
    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=40, deadline=None)
    def test_seven_deciders(self, pair):
        a, b = pair
        expected = homomorphism_exists(a, b)

        assert homomorphism_exists_by_treewidth(a, b) == expected
        assert homomorphism_exists_by_fo(a, b) == expected
        assert solve(a, b).exists == expected

        qb, qa = query_of_structure(b), query_of_structure(a)
        assert contains(qb, qa) == expected
        assert holds(qa, b) == expected

        if b.universe:
            bz = booleanize(a, b)
            if is_schaefer(bz.target):
                got = solve_schaefer_csp(bz.source, bz.target)
                assert (got is not None) == expected

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=20, deadline=None)
    def test_section4_stack(self, pair):
        a, b = pair
        if not b.universe:
            return
        k = 2
        game = duplicator_wins(a, b, k)
        tables = strong_k_consistent(a, b, k)
        datalog = not goal_holds(canonical_program(b, k), a)
        assert game == tables == datalog
        # soundness: spoiler winning implies no hom
        if not game:
            assert not homomorphism_exists(a, b)

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=20, deadline=None)
    def test_binary_encoding_route(self, pair):
        a, b = pair
        expected = homomorphism_exists(a, b)
        if not expected:
            return  # see Lemma 5.5 caveats in test_binary_encoding
        assert homomorphism_exists(
            binary_encoding(a), binary_encoding(b)
        )


class TestEndToEndScenarios:
    def test_query_optimization_scenario(self):
        """Parse a redundant query, minimize it, verify equivalence and
        that evaluation agrees on a concrete database."""
        from repro.cq.evaluation import evaluate
        from repro.cq.minimize import minimize
        from repro.cq.parser import parse_query
        from repro.structures.graphs import random_digraph

        q = parse_query(
            "Q(X) :- E(X, Y), E(X, Z), E(Z, W), E(X, V)."
        )
        m = minimize(q)
        assert len(m) < len(q)
        for seed in range(4):
            db = random_digraph(5, 0.4, seed=seed)
            assert evaluate(q, db) == evaluate(m, db)

    def test_view_equivalence_scenario(self):
        """Two syntactically different view definitions are recognized
        as equivalent."""
        from repro.cq.containment import equivalent
        from repro.cq.parser import parse_query

        v1 = parse_query("V(X, Y) :- E(X, Z), E(Z, Y), E(X, W).")
        v2 = parse_query("V(X, Y) :- E(X, U), E(U, Y).")
        assert equivalent(v1, v2)

    def test_scheduling_as_csp_solved_by_dispatcher(self):
        """An AI-style scheduling CSP goes through the dispatcher."""
        from repro.core.problem import HomomorphismProblem
        from repro.csp.instance import Constraint, CSPInstance

        # three tasks, two machines, tasks 0-1 and 1-2 conflict
        conflict = frozenset({(0, 1), (1, 0)})
        instance = CSPInstance(
            ["t0", "t1", "t2"],
            {t: {0, 1} for t in ("t0", "t1", "t2")},
            [
                Constraint(("t0", "t1"), conflict),
                Constraint(("t1", "t2"), conflict),
            ],
        )
        problem = HomomorphismProblem.from_csp(instance)
        solution = solve(problem.source, problem.target)
        assert solution.exists
        assignment = {
            v: solution.homomorphism[v] for v in instance.variables
        }
        assert instance.is_solution(assignment)

    def test_coloring_pipeline_through_booleanization(self):
        """2-coloring an even cycle via every Section 3 route."""
        from repro.boolean.direct import solve_bijunctive_csp
        from repro.structures.graphs import clique, cycle

        a, b = cycle(8), clique(2)
        bz = booleanize(a, b)
        classes = classify_structure(bz.target)
        assert classes  # K2 booleanizes into a Schaefer structure
        direct = solve_bijunctive_csp(bz.source, bz.target)
        formula_route = solve_schaefer_csp(bz.source, bz.target)
        assert direct is not None and formula_route is not None
        decoded = bz.decode_homomorphism(direct)
        from repro.structures.homomorphism import is_homomorphism

        assert is_homomorphism(decoded, a, b)
