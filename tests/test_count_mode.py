"""The kernel count mode vs the legacy enumerator (satellite of P3)."""

from __future__ import annotations

import random

from repro.kernel.search import count_solutions, search_homomorphisms
from repro.csp.generators import random_structure
from repro.structures.homomorphism import SearchStats, count_homomorphisms
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"R": 2})
MIXED = Vocabulary.from_arities({"R": 2, "T": 3})


def random_pair(seed: int, vocabulary=BINARY):
    rng = random.Random(seed)
    source = random_structure(
        vocabulary, rng.randint(1, 5), rng.randint(0, 8), seed=seed
    )
    target = random_structure(
        vocabulary, rng.randint(1, 4), rng.randint(0, 8), seed=seed + 5000
    )
    return source, target


class TestCountParity:
    def test_matches_legacy_on_random_instances(self):
        for seed in range(120):
            vocabulary = BINARY if seed % 2 else MIXED
            source, target = random_pair(seed, vocabulary)
            kernel_stats, legacy_stats = SearchStats(), SearchStats()
            kernel = count_homomorphisms(source, target, stats=kernel_stats)
            legacy = count_homomorphisms(
                source, target, engine="legacy", stats=legacy_stats
            )
            assert kernel == legacy, seed
            # Identical search tree, not just an identical total.
            assert kernel_stats.nodes == legacy_stats.nodes, seed
            assert kernel_stats.backtracks == legacy_stats.backtracks, seed

    def test_matches_enumeration_with_static_order(self):
        source, target = random_pair(7)
        order = source.sorted_universe
        assert count_homomorphisms(source, target, order=order) == sum(
            1
            for _ in search_homomorphisms(source, target, order=order)
        )

    def test_counts_leaves_not_dicts(self):
        # A solution-dense instance: |B|^|A| total homomorphisms since the
        # source has no facts.
        source = Structure(BINARY, range(5))
        target = Structure(BINARY, range(4), {"R": [(0, 1)]})
        assert count_homomorphisms(source, target) == 4**5


class TestCountEdgeCases:
    def test_empty_source_counts_the_empty_map(self):
        empty = Structure(BINARY)
        target = Structure(BINARY, {0, 1}, {"R": [(0, 1)]})
        assert count_homomorphisms(empty, target) == 1

    def test_empty_target_counts_zero(self):
        source = Structure(BINARY, {0})
        empty = Structure(BINARY)
        assert count_homomorphisms(source, empty) == 0

    def test_fixed_prunes_the_count(self):
        source, target = random_pair(11)
        element = source.sorted_universe[0]
        for value in target.sorted_universe:
            fixed_count = count_solutions(
                source, target, fixed={element: value}
            )
            by_filter = sum(
                1
                for h in search_homomorphisms(source, target)
                if h[element] == value
            )
            assert fixed_count == by_filter

    def test_unsatisfiable_counts_zero(self):
        # A reflexive source fact against a loopless target.
        source = Structure(BINARY, {0}, {"R": [(0, 0)]})
        target = Structure(BINARY, {0, 1}, {"R": [(0, 1), (1, 0)]})
        assert count_homomorphisms(source, target) == 0
