"""Property-based metamorphic suite for the query plane (Theorem 2.1).

Every property is a law the Chandra–Merlin identification forces on the
implementation — uniqueness of minimal queries, the preorder structure of
containment, the core's fixpoint behaviour, the category-theoretic
product/coproduct characterizations — checked on random queries and
structures from the conftest strategies.  The suite runs deterministically
under the ``ci`` hypothesis profile (``HYPOTHESIS_PROFILE=ci``:
derandomized, bounded examples, explicit deadline).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.containment import (
    containment_matrix,
    contains,
    contains_via_evaluation,
    equivalence_classes,
    equivalent,
)
from repro.cq.minimize import is_minimal, minimize, minimize_by_atom_removal
from repro.cq.saraiya import two_atom_contains
from repro.cq.width import contains_bounded_width
from repro.structures.homomorphism import homomorphism_exists
from repro.structures.product import (
    core,
    direct_product,
    disjoint_union,
    is_core,
)

from conftest import (
    conjunctive_queries,
    query_pairs,
    structures,
    vocabularies,
)


@st.composite
def query_triples(draw):
    """Three containment-compatible queries over one vocabulary."""
    vocabulary = draw(vocabularies(max_symbols=2, max_arity=2))
    width = draw(st.integers(min_value=0, max_value=1))
    return tuple(
        draw(
            conjunctive_queries(
                vocabulary, max_variables=3, max_atoms=3, head_width=width
            )
        )
        for _ in range(3)
    )


@st.composite
def query_batches(draw):
    """A small batch of compatible queries for the matrix layer."""
    vocabulary = draw(vocabularies(max_symbols=2, max_arity=2))
    width = draw(st.integers(min_value=0, max_value=1))
    size = draw(st.integers(min_value=2, max_value=5))
    return [
        draw(
            conjunctive_queries(
                vocabulary, max_variables=3, max_atoms=3, head_width=width
            )
        )
        for _ in range(size)
    ]


@st.composite
def structure_triples(draw):
    """Three structures over one vocabulary (for the algebraic laws)."""
    vocabulary = draw(vocabularies())
    return tuple(
        draw(structures(vocabulary, max_elements=3, max_facts=4))
        for _ in range(3)
    )


class TestMinimization:
    @given(conjunctive_queries())
    @settings(max_examples=40, deadline=None)
    def test_both_minimizers_agree_on_atom_count(self, query):
        """Uniqueness of minimal queries: core-based and greedy removal
        land on the same number of atoms."""
        by_core = minimize(query)
        by_removal = minimize_by_atom_removal(query)
        assert len(by_core.atoms) == len(by_removal.atoms)

    @given(conjunctive_queries())
    @settings(max_examples=40, deadline=None)
    def test_minimize_preserves_equivalence(self, query):
        assert equivalent(minimize(query), query)

    @given(conjunctive_queries())
    @settings(max_examples=40, deadline=None)
    def test_minimize_is_idempotent_and_minimal(self, query):
        minimal = minimize(query)
        assert minimize(minimal) == minimal
        assert is_minimal(minimal)


class TestContainmentLaws:
    @given(conjunctive_queries())
    @settings(max_examples=40, deadline=None)
    def test_containment_is_reflexive(self, query):
        assert contains(query, query)
        assert contains_via_evaluation(query, query)

    @given(query_pairs())
    @settings(max_examples=50, deadline=None)
    def test_evaluation_route_agrees(self, pair):
        """Theorem 2.1: the homomorphism route and the evaluation route
        decide every containment identically."""
        q1, q2 = pair
        assert contains(q1, q2) == contains_via_evaluation(q1, q2)

    @given(query_triples())
    @settings(max_examples=50, deadline=None)
    def test_containment_is_transitive(self, triple):
        a, b, c = triple
        if contains(a, b) and contains(b, c):
            assert contains(a, c)

    @given(query_pairs())
    @settings(max_examples=50, deadline=None)
    def test_planner_routes_are_exact(self, pair):
        """Every route the containment planner can pick is exact."""
        q1, q2 = pair
        expected = contains(q1, q2)
        assert contains(q1, q2, plan=True) == expected
        assert contains_bounded_width(q1, q2) == expected
        if q1.is_two_atom:
            assert two_atom_contains(q1, q2) == expected


class TestCores:
    @given(structures())
    @settings(max_examples=40, deadline=None)
    def test_core_is_a_fixpoint(self, a):
        """core(core(A)) = core(A) exactly, and the result is a core."""
        once = core(a)
        assert core(once) == once
        assert is_core(once)

    @given(structures())
    @settings(max_examples=40, deadline=None)
    def test_core_is_homomorphically_equivalent(self, a):
        """A → core(A) (by construction) and core(A) → A (inclusion)."""
        shrunk = core(a)
        assert homomorphism_exists(a, shrunk)
        assert homomorphism_exists(shrunk, a)


class TestAlgebraicOracles:
    @given(structure_triples())
    @settings(max_examples=40, deadline=None)
    def test_product_law(self, triple):
        """C → A×B iff C → A and C → B (the product property)."""
        a, b, c = triple
        assert homomorphism_exists(c, direct_product(a, b)) == (
            homomorphism_exists(c, a) and homomorphism_exists(c, b)
        )

    @given(structure_triples())
    @settings(max_examples=40, deadline=None)
    def test_coproduct_law(self, triple):
        """A ⊎ B → C iff A → C and B → C (the coproduct property)."""
        a, b, c = triple
        assert homomorphism_exists(disjoint_union(a, b), c) == (
            homomorphism_exists(a, c) and homomorphism_exists(b, c)
        )


class TestBatchLayer:
    @given(query_batches())
    @settings(max_examples=30, deadline=None)
    def test_matrix_matches_pairwise_contains(self, queries):
        matrix = containment_matrix(queries)
        for i, qi in enumerate(queries):
            for j, qj in enumerate(queries):
                assert matrix[i][j] == contains(qi, qj), (i, j)

    @given(query_batches())
    @settings(max_examples=30, deadline=None)
    def test_equivalence_classes_partition_by_equivalence(self, queries):
        classes = equivalence_classes(queries)
        seen = sorted(index for members in classes for index in members)
        assert seen == list(range(len(queries)))
        for members in classes:
            leader = queries[members[0]]
            for index in members[1:]:
                assert equivalent(leader, queries[index])
        leaders = [queries[members[0]] for members in classes]
        for i in range(len(leaders)):
            for j in range(i + 1, len(leaders)):
                assert not equivalent(leaders[i], leaders[j])
