"""Cross-checked tests for the Horn, 2-SAT, affine, and DPLL solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.affine import LinearSystemGF2, nullspace_basis, solve_gf2
from repro.sat.cnf import CNF
from repro.sat.dpll import solve_dpll
from repro.sat.horn import horn_minimal_model, solve_dual_horn, solve_horn
from repro.sat.two_sat import solve_2sat, solve_2sat_phases


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def horn_cnf(draw, max_vars=6, max_clauses=10):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    clauses = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_clauses))):
        body = draw(
            st.sets(st.integers(min_value=1, max_value=n), max_size=3)
        )
        head = draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=n))
        )
        clause = tuple(-v for v in sorted(body))
        if head is not None:
            clause += (head,)
        if clause:
            clauses.append(clause)
    return CNF(n, clauses)


@st.composite
def two_cnf(draw, max_vars=6, max_clauses=12):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    clauses = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_clauses))):
        length = draw(st.integers(min_value=1, max_value=2))
        clause = tuple(
            draw(st.integers(min_value=1, max_value=n))
            * draw(st.sampled_from([1, -1]))
            for _ in range(length)
        )
        clauses.append(clause)
    return CNF(n, clauses)


@st.composite
def general_cnf(draw, max_vars=5, max_clauses=10):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    clauses = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_clauses))):
        length = draw(st.integers(min_value=1, max_value=3))
        clause = tuple(
            draw(st.integers(min_value=1, max_value=n))
            * draw(st.sampled_from([1, -1]))
            for _ in range(length)
        )
        clauses.append(clause)
    return CNF(n, clauses)


# ---------------------------------------------------------------------------
# Horn
# ---------------------------------------------------------------------------

class TestHorn:
    def test_simple_implication_chain(self):
        # 1, 1->2, 2->3
        formula = CNF(3, [(1,), (-1, 2), (-2, 3)])
        assert horn_minimal_model(formula) == {1, 2, 3}

    def test_contradiction(self):
        formula = CNF(2, [(1,), (-1,)])
        assert solve_horn(formula) is None

    def test_empty_clause(self):
        assert solve_horn(CNF(1, [()])) is None

    def test_minimal_model_is_minimal(self):
        # nothing forced -> all false
        formula = CNF(3, [(-1, 2)])
        assert horn_minimal_model(formula) == set()

    def test_non_horn_rejected(self):
        with pytest.raises(ValueError):
            solve_horn(CNF(2, [(1, 2)]))

    @given(horn_cnf())
    @settings(max_examples=80, deadline=None)
    def test_against_bruteforce(self, formula):
        model = solve_horn(formula)
        assert (model is not None) == formula.is_satisfiable_bruteforce()
        if model is not None:
            assert formula.evaluate(model)

    @given(horn_cnf())
    @settings(max_examples=40, deadline=None)
    def test_minimal_model_below_every_model(self, formula):
        minimal = horn_minimal_model(formula)
        if minimal is None:
            return
        for model in formula.all_models():
            trues = {v for v, value in model.items() if value}
            assert minimal <= trues


class TestDualHorn:
    def test_simple(self):
        formula = CNF(2, [(1, -2), (2,)])
        model = solve_dual_horn(formula)
        assert model is not None and formula.evaluate(model)

    def test_non_dual_horn_rejected(self):
        with pytest.raises(ValueError):
            solve_dual_horn(CNF(2, [(-1, -2)]))

    @given(horn_cnf())
    @settings(max_examples=60, deadline=None)
    def test_against_bruteforce_via_flip(self, formula):
        flipped = CNF(
            formula.num_vars,
            [tuple(-lit for lit in c) for c in formula.clauses],
        )
        model = solve_dual_horn(flipped)
        assert (model is not None) == flipped.is_satisfiable_bruteforce()
        if model is not None:
            assert flipped.evaluate(model)


# ---------------------------------------------------------------------------
# 2-SAT
# ---------------------------------------------------------------------------

class Test2SAT:
    def test_satisfiable_chain(self):
        formula = CNF(3, [(1, 2), (-2, 3), (-1, -3)])
        for solver in (solve_2sat, solve_2sat_phases):
            model = solver(formula)
            assert model is not None and formula.evaluate(model)

    def test_classic_unsat(self):
        formula = CNF(2, [(1, 2), (1, -2), (-1, 2), (-1, -2)])
        assert solve_2sat(formula) is None
        assert solve_2sat_phases(formula) is None

    def test_unit_clauses(self):
        formula = CNF(2, [(1,), (-1, 2)])
        model = solve_2sat(formula)
        assert model == {1: True, 2: True}
        assert solve_2sat_phases(formula) == {1: True, 2: True}

    def test_empty_clause(self):
        assert solve_2sat(CNF(1, [()])) is None
        assert solve_2sat_phases(CNF(1, [()])) is None

    def test_wide_clause_rejected(self):
        with pytest.raises(ValueError):
            solve_2sat(CNF(3, [(1, 2, 3)]))
        with pytest.raises(ValueError):
            solve_2sat_phases(CNF(3, [(1, 2, 3)]))

    @given(two_cnf())
    @settings(max_examples=100, deadline=None)
    def test_both_against_bruteforce(self, formula):
        expected = formula.is_satisfiable_bruteforce()
        for solver in (solve_2sat, solve_2sat_phases):
            model = solver(formula)
            assert (model is not None) == expected
            if model is not None:
                assert formula.evaluate(model)


# ---------------------------------------------------------------------------
# GF(2)
# ---------------------------------------------------------------------------

class TestGF2:
    def test_single_equation(self):
        system = LinearSystemGF2(2)
        system.add_equation([0, 1], 1)
        solution = solve_gf2(system)
        assert solution is not None
        assert (solution[0] + solution[1]) % 2 == 1

    def test_inconsistent(self):
        system = LinearSystemGF2(1)
        system.add_equation([0], 0)
        system.add_equation([0], 1)
        assert solve_gf2(system) is None

    def test_zero_equals_one_inconsistent(self):
        system = LinearSystemGF2(1)
        system.add_equation([], 1)
        assert solve_gf2(system) is None

    def test_repeated_variables_cancel(self):
        system = LinearSystemGF2(1)
        system.add_equation([0, 0], 1)  # x ^ x = 1 is 0 = 1
        assert solve_gf2(system) is None

    def test_out_of_range_variable(self):
        system = LinearSystemGF2(1)
        with pytest.raises(ValueError):
            system.add_equation([5], 0)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_systems_against_bruteforce(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        system = LinearSystemGF2(n)
        for _ in range(data.draw(st.integers(min_value=0, max_value=6))):
            variables = data.draw(
                st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
            )
            system.add_equation(variables, data.draw(st.integers(0, 1)))
        solution = solve_gf2(system)
        bruteforce = any(
            system.evaluate(
                [(mask >> i) & 1 for i in range(n)]
            )
            for mask in range(1 << n)
        )
        assert (solution is not None) == bruteforce
        if solution is not None:
            assert system.evaluate(solution)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_nullspace_vectors_annihilate_rows(self, data):
        n = data.draw(st.integers(min_value=1, max_value=6))
        rows = [
            data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
            for _ in range(data.draw(st.integers(min_value=0, max_value=5)))
        ]
        basis = nullspace_basis(rows, n)
        for vector in basis:
            for row in rows:
                assert bin(row & vector).count("1") % 2 == 0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_nullspace_dimension(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        rows = [
            data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
            for _ in range(data.draw(st.integers(min_value=0, max_value=5)))
        ]
        basis = nullspace_basis(rows, n)
        # rank-nullity: |basis| = n - rank(rows)
        rank = 0
        pivots = {}
        for row in rows:
            for bit, prow in pivots.items():
                if row & (1 << bit):
                    row ^= prow
            if row:
                pivots[row.bit_length() - 1] = row
                rank += 1
        assert len(basis) == n - rank


# ---------------------------------------------------------------------------
# DPLL
# ---------------------------------------------------------------------------

class TestDPLL:
    def test_simple_sat(self):
        formula = CNF(3, [(1, 2, 3), (-1, -2), (-3,)])
        model = solve_dpll(formula)
        assert model is not None and formula.evaluate(model)

    def test_simple_unsat(self):
        formula = CNF(1, [(1,), (-1,)])
        assert solve_dpll(formula) is None

    def test_empty_clause(self):
        assert solve_dpll(CNF(1, [()])) is None

    @given(general_cnf())
    @settings(max_examples=80, deadline=None)
    def test_against_bruteforce(self, formula):
        model = solve_dpll(formula)
        assert (model is not None) == formula.is_satisfiable_bruteforce()
        if model is not None:
            assert formula.evaluate(model)
