"""Randomized decomposition-kernel parity: four engines, one verdict.

Seeded loops over the workload generators assert that, on every
instance, the following all agree:

* the compiled decomposition DP (``repro.kernel.decomp``),
* the legacy bag-map DP (``solve_by_treewidth(engine="legacy")``),
* the kernel backtracking search (``repro.kernel.search.solve``),
* and — where the target's cCSP is k-Datalog-expressible — the
  generalized k-pebble decision.

Existence must match exactly; every produced witness must verify as a
homomorphism (witness *elements* may differ between DP engines — both
are correct answers).  The pebble engines are additionally held to
*exact* family/table parity against both legacy fixpoints, and the
k-consistency verdicts to the Theorem 4.8 relationships (soundness of a
Spoiler win for every k; completeness at k = 3 for 2-colorability).

160 instances run through the main loop (the acceptance floor is 150);
the pebble loops use a prefix of the same stream to stay fast.
"""

from __future__ import annotations

import random

from repro.csp.generators import (
    bounded_treewidth_structure,
    coloring_instance,
    random_structure,
)
from repro.kernel.decomp import solve_decomposition
from repro.kernel.pebblek import (
    kernel_consistency_tables,
    pebble_game_family,
    spoiler_wins_k,
)
from repro.kernel.search import solve as kernel_search
from repro.pebble.game import solve_pebble_game, spoiler_wins
from repro.pebble.kconsistency import consistency_tables, strong_k_consistent
from repro.structures.graphs import clique
from repro.structures.homomorphism import is_homomorphism
from repro.structures.vocabulary import Vocabulary
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.dp import solve_by_treewidth

BINARY = Vocabulary.from_arities({"E": 2})
TERNARY = Vocabulary.from_arities({"T": 3})
MIXED = Vocabulary.from_arities({"U": 1, "E": 2, "T": 3})

NUM_INSTANCES = 160


def _instance(seed: int):
    """One deterministic random instance per seed; some come with a
    width certificate."""
    rng = random.Random(seed)
    shape = seed % 5
    if shape == 0:
        n = rng.randint(2, 6)
        m = rng.randint(2, 4)
        return (
            random_structure(BINARY, n, rng.randint(2, 2 * n), seed=seed),
            random_structure(BINARY, m, rng.randint(2, 2 * m), seed=seed + 1),
            None,
        )
    if shape == 1:
        n = rng.randint(2, 4)
        m = rng.randint(2, 3)
        return (
            random_structure(TERNARY, n, rng.randint(2, 6), seed=seed),
            random_structure(TERNARY, m, rng.randint(2, 6), seed=seed + 1),
            None,
        )
    if shape == 2:
        width = rng.choice((1, 2, 3))
        graph, bags, tree_edges = bounded_treewidth_structure(
            rng.randint(width + 2, 9),
            width,
            edge_keep_probability=0.8,
            seed=seed,
        )
        source, target = coloring_instance(graph, rng.randint(2, 3))
        return source, target, TreeDecomposition(bags, tree_edges)
    if shape == 3:
        graph, bags, tree_edges = bounded_treewidth_structure(
            rng.randint(6, 10), 2, edge_keep_probability=0.9, seed=seed
        )
        return graph, clique(rng.randint(2, 4)), TreeDecomposition(
            bags, tree_edges
        )
    n = rng.randint(2, 4)
    m = rng.randint(2, 3)
    return (
        random_structure(MIXED, n, rng.randint(1, 5), seed=seed),
        random_structure(MIXED, m, rng.randint(1, 5), seed=seed + 1),
        None,
    )


class TestDecompositionParity:
    def test_four_way_agreement(self):
        """Kernel DP, legacy DP, kernel search: same verdict everywhere;
        all witnesses verify; a Spoiler win always refutes."""
        sat = unsat = 0
        for seed in range(NUM_INSTANCES):
            a, b, certificate = _instance(seed)
            kernel = solve_decomposition(a, b, certificate)
            legacy = solve_by_treewidth(a, b, certificate, engine="legacy")
            search = kernel_search(a, b)
            exists = kernel is not None
            assert (legacy is not None) == exists, f"seed {seed}: DP engines"
            assert (search is not None) == exists, f"seed {seed}: search"
            if exists:
                sat += 1
                assert is_homomorphism(kernel, a, b), f"seed {seed}: kernel"
                assert is_homomorphism(legacy, a, b), f"seed {seed}: legacy"
                assert is_homomorphism(search, a, b), f"seed {seed}: search"
                # Soundness (Theorem 4.8, easy direction): the Spoiler
                # never wins on a satisfiable instance.
                assert not spoiler_wins_k(a, b, 2), f"seed {seed}"
            else:
                unsat += 1
        # the stream must exercise both outcomes
        assert sat >= 30 and unsat >= 30

    def test_engine_flag_roundtrip(self):
        """The facade dispatches both engines to the same place."""
        for seed in range(0, NUM_INSTANCES, 16):
            a, b, certificate = _instance(seed)
            via_flag = solve_by_treewidth(a, b, certificate)
            direct = solve_decomposition(a, b, certificate)
            assert via_flag == direct, f"seed {seed}"

    def test_pebble_decision_parity(self):
        """Generalized kernel game vs legacy deletion loop, k = 1..3."""
        for seed in range(0, NUM_INSTANCES, 2):
            a, b, _certificate = _instance(seed)
            for k in (1, 2, 3):
                kernel = spoiler_wins_k(a, b, k)
                legacy = spoiler_wins(a, b, k, engine="legacy")
                assert kernel == legacy, f"seed {seed} k={k}"
                tables = strong_k_consistent(a, b, k, engine="legacy")
                assert kernel == (not tables), f"seed {seed} k={k} tables"

    def test_pebble_family_and_tables_exact(self):
        """The kernel fixpoint is the *identical* greatest family."""
        for seed in range(0, NUM_INSTANCES, 8):
            a, b, _certificate = _instance(seed)
            for k in (2, 3):
                legacy_game = solve_pebble_game(a, b, k, engine="legacy")
                assert pebble_game_family(a, b, k) == legacy_game.family, (
                    f"seed {seed} k={k} family"
                )
                assert kernel_consistency_tables(
                    a, b, k
                ) == consistency_tables(a, b, k, engine="legacy"), (
                    f"seed {seed} k={k} tables"
                )

    def test_k3_decides_two_colorability_via_kernel(self):
        """Theorem 4.8 completeness on a Datalog-expressible target: the
        generalized kernel game at k = 3 decides 2-colorability, and the
        DP agrees."""
        k2 = clique(2)
        decided = 0
        for seed in range(0, NUM_INSTANCES, 2):
            a, b, certificate = _instance(seed)
            if b != k2:
                continue
            exists = solve_decomposition(a, b, certificate) is not None
            assert spoiler_wins_k(a, b, 3) == (not exists), f"seed {seed}"
            decided += 1
        assert decided >= 5
