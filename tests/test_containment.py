"""Tests for Chandra–Merlin containment (Theorem 2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.containment import (
    containment_witness,
    contains,
    contains_via_evaluation,
    equivalent,
)
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import VocabularyError


@st.composite
def small_queries(draw, head_width=1):
    variables = ["X", "Y", "Z", "W"]
    atoms = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        atoms.append(
            Atom(
                draw(st.sampled_from(["E", "F"])),
                (
                    draw(st.sampled_from(variables)),
                    draw(st.sampled_from(variables)),
                ),
            )
        )
    head = tuple(
        draw(st.sampled_from(variables)) for _ in range(head_width)
    )
    return ConjunctiveQuery(head, atoms)


class TestBasicContainment:
    def test_longer_path_contained_in_shorter(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        assert contains(q1, q2)
        assert not contains(q2, q1)

    def test_self_containment(self):
        q = parse_query("Q(X) :- E(X, Y), E(Y, X).")
        assert contains(q, q)
        assert equivalent(q, q)

    def test_equivalent_up_to_renaming_of_existentials(self):
        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X) :- E(X, Z).")
        assert equivalent(q1, q2)

    def test_distinguished_variables_pinned(self):
        # Q1 returns successors, Q2 returns predecessors: incomparable
        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X) :- E(Y, X).")
        assert not contains(q1, q2)
        assert not contains(q2, q1)

    def test_boolean_queries(self):
        q1 = parse_query("Q :- E(X, Y), E(Y, X).")   # a 2-cycle exists
        q2 = parse_query("Q :- E(X, Y).")            # an edge exists
        assert contains(q1, q2)
        assert not contains(q2, q1)

    def test_different_predicates_incomparable(self):
        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X) :- F(X, Y).")
        assert not contains(q1, q2)
        assert not contains(q2, q1)

    def test_arity_mismatch_rejected(self):
        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X, Y) :- E(X, Y).")
        with pytest.raises(VocabularyError):
            contains(q1, q2)

    def test_cycle_lengths(self):
        # a 6-cycle pattern is contained in the 2-cycle pattern's
        # generalization?  use triangle vs self-loop instead:
        triangle = parse_query("Q :- E(X, Y), E(Y, Z), E(Z, X).")
        loop = parse_query("Q :- E(X, X).")
        # loop -> triangle body hom exists (maps all to X), so
        # loop <= triangle
        assert contains(loop, triangle)
        assert not contains(triangle, loop)

    def test_query_with_empty_body_contains_everything_of_its_shape(self):
        empty = parse_query("Q(X) :- .")
        q = parse_query("Q(X) :- E(X, Y).")
        assert contains(q, empty)
        assert not contains(empty, q)


class TestWitness:
    def test_witness_is_variable_map(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        witness = containment_witness(q1, q2)
        assert witness is not None
        assert witness["X"] == "X"
        # the image of q2's Y must be a successor of X in q1
        assert witness["Y"] == "Y"

    def test_no_witness_when_not_contained(self):
        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        assert containment_witness(q1, q2) is None


class TestEvaluationRoute:
    @given(small_queries(), small_queries())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_homomorphism_route(self, q1, q2):
        assert contains(q1, q2) == contains_via_evaluation(q1, q2)

    @given(small_queries(head_width=2), small_queries(head_width=2))
    @settings(max_examples=40, deadline=None)
    def test_agrees_binary_heads(self, q1, q2):
        assert contains(q1, q2) == contains_via_evaluation(q1, q2)


class TestPreorderProperties:
    @given(small_queries())
    @settings(max_examples=30, deadline=None)
    def test_reflexive(self, q):
        assert contains(q, q)

    @given(small_queries(), small_queries(), small_queries())
    @settings(max_examples=40, deadline=None)
    def test_transitive(self, a, b, c):
        if contains(a, b) and contains(b, c):
            assert contains(a, c)

    @given(small_queries())
    @settings(max_examples=30, deadline=None)
    def test_adding_atoms_shrinks(self, q):
        # adding an atom to the body can only shrink the answer set
        extended = ConjunctiveQuery(
            q.head_variables,
            q.atoms + (Atom("E", ("X", "X")),),
            q.name,
        )
        assert contains(extended, q)


class TestCheckCompatible:
    """The public arity guard shared by every containment route."""

    def test_check_compatible_raises_on_arity_mismatch(self):
        from repro.cq.query import check_compatible

        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X, Y) :- E(X, Y).")
        with pytest.raises(VocabularyError, match="equal arities"):
            check_compatible(q1, q2)
        check_compatible(q1, q1)  # same arity: no error

    def test_every_route_rejects_arity_mismatch(self):
        from repro.cq.containment import containment_matrix, plan_containment
        from repro.cq.saraiya import two_atom_contains
        from repro.cq.width import contains_bounded_width

        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X, Y) :- E(X, Y).")
        for probe in (
            lambda: contains(q1, q2),
            lambda: contains_via_evaluation(q1, q2),
            lambda: containment_witness(q1, q2),
            lambda: equivalent(q1, q2),
            lambda: two_atom_contains(q1, q2),
            lambda: contains_bounded_width(q1, q2),
            lambda: plan_containment(q1, q2),
            lambda: containment_matrix([q1, q2]),
        ):
            with pytest.raises(VocabularyError, match="equal arities"):
                probe()
