"""Tests for Schaefer classification (Theorem 3.1)."""

from itertools import product

from hypothesis import given, settings

from repro.boolean.relations import BooleanRelation
from repro.boolean.schaefer import (
    NONTRIVIAL_CLASSES,
    SchaeferClass,
    classify_relation,
    classify_structure,
    is_schaefer,
    nontrivial_classes,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import boolean_relations, boolean_structures


def brute_force_definability(relation, kind: str) -> bool:
    """Exponential oracle: does some formula of the kind define R?

    Uses the closure characterizations' *semantic* side: enumerate all
    formulas is infeasible, so instead verify against the known-correct
    closure conditions computed naively here, independently of the
    library code under test.
    """
    tuples = list(relation.tuples)
    if kind == "horn":
        return all(
            tuple(x & y for x, y in zip(a, b)) in relation.tuples
            for a in tuples
            for b in tuples
        )
    if kind == "dual_horn":
        return all(
            tuple(x | y for x, y in zip(a, b)) in relation.tuples
            for a in tuples
            for b in tuples
        )
    if kind == "bijunctive":
        return all(
            tuple(
                1 if x + y + z >= 2 else 0 for x, y, z in zip(a, b, c)
            )
            in relation.tuples
            for a in tuples
            for b in tuples
            for c in tuples
        )
    if kind == "affine":
        return all(
            tuple((x + y + z) % 2 for x, y, z in zip(a, b, c))
            in relation.tuples
            for a in tuples
            for b in tuples
            for c in tuples
        )
    raise ValueError(kind)


class TestClassifyRelation:
    def test_zero_one_valid(self):
        r = BooleanRelation(2, [(0, 0), (1, 1)])
        classes = classify_relation(r)
        assert classes & SchaeferClass.ZERO_VALID
        assert classes & SchaeferClass.ONE_VALID

    def test_one_in_three_is_nothing(self):
        r = BooleanRelation(3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert classify_relation(r) is SchaeferClass.NONE

    def test_k2_edge_relation(self):
        # Example 3.7: {(0,1),(1,0)} is bijunctive and affine, nothing else
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        classes = classify_relation(r)
        assert classes & SchaeferClass.BIJUNCTIVE
        assert classes & SchaeferClass.AFFINE
        assert not classes & SchaeferClass.HORN
        assert not classes & SchaeferClass.DUAL_HORN
        assert not classes & SchaeferClass.ZERO_VALID
        assert not classes & SchaeferClass.ONE_VALID

    def test_implication_relation_everything_horn_side(self):
        # x -> y: {00, 01, 11}
        r = BooleanRelation(2, [(0, 0), (0, 1), (1, 1)])
        classes = classify_relation(r)
        for c in (
            SchaeferClass.ZERO_VALID,
            SchaeferClass.ONE_VALID,
            SchaeferClass.HORN,
            SchaeferClass.DUAL_HORN,
            SchaeferClass.BIJUNCTIVE,
        ):
            assert classes & c
        assert not classes & SchaeferClass.AFFINE

    @given(boolean_relations(max_arity=3))
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_oracle(self, r):
        classes = classify_relation(r)
        assert bool(classes & SchaeferClass.HORN) == (
            brute_force_definability(r, "horn")
        )
        assert bool(classes & SchaeferClass.DUAL_HORN) == (
            brute_force_definability(r, "dual_horn")
        )
        assert bool(classes & SchaeferClass.BIJUNCTIVE) == (
            brute_force_definability(r, "bijunctive")
        )
        assert bool(classes & SchaeferClass.AFFINE) == (
            brute_force_definability(r, "affine")
        )

    def test_full_relation_in_every_class(self):
        full = BooleanRelation(2, list(product((0, 1), repeat=2)))
        classes = classify_relation(full)
        assert classes == (
            SchaeferClass.ZERO_VALID
            | SchaeferClass.ONE_VALID
            | SchaeferClass.HORN
            | SchaeferClass.DUAL_HORN
            | SchaeferClass.BIJUNCTIVE
            | SchaeferClass.AFFINE
        )


class TestClassifyStructure:
    def _structure(self, relations: dict) -> Structure:
        vocabulary = Vocabulary.from_arities(
            {name: len(next(iter(tuples))) for name, tuples in relations.items()}
        )
        return Structure(vocabulary, {0, 1}, relations)

    def test_intersection_semantics(self):
        s = self._structure(
            {
                "R": {(0, 1), (1, 0)},              # bijunctive + affine
                "S": {(0, 0), (0, 1), (1, 1)},      # everything but affine
            }
        )
        classes = classify_structure(s)
        assert classes == SchaeferClass.BIJUNCTIVE

    def test_is_schaefer(self):
        good = self._structure({"R": {(0, 1), (1, 0)}})
        assert is_schaefer(good)
        bad = self._structure(
            {"R": {(1, 0, 0), (0, 1, 0), (0, 0, 1)}}
        )
        assert not is_schaefer(bad)

    def test_nontrivial_classes_masks_trivial(self):
        s = self._structure({"R": {(0, 0), (1, 1)}})
        assert nontrivial_classes(s) == (
            classify_structure(s) & NONTRIVIAL_CLASSES
        )

    @given(boolean_structures(closure="horn"))
    @settings(max_examples=30, deadline=None)
    def test_generated_horn_structures_recognized(self, s):
        assert classify_structure(s) & SchaeferClass.HORN

    @given(boolean_structures(closure="affine"))
    @settings(max_examples=30, deadline=None)
    def test_generated_affine_structures_recognized(self, s):
        assert classify_structure(s) & SchaeferClass.AFFINE
