"""Unit tests of the persistent artifact store: format, recovery, caching.

The contract under test, in one sentence: the store never serves bytes
that fail verification, and everything else — torn tails, flipped bits,
concurrent writers, size budgets — degrades to a *cold cache*, never to
a wrong answer.
"""

from __future__ import annotations

import logging
import os
import pickle

import pytest

from repro.boolean.schaefer import classify_structure
from repro.core.pipeline import SolverPipeline, StructureCache
from repro.cq.compiled import compile_query
from repro.cq.query import ConjunctiveQuery
from repro.datalog.canonical_program import canonical_program
from repro.exceptions import ArtifactStoreError, StoreCorruptionError
from repro.kernel.compile import compile_source, compile_target
from repro.persist import (
    ArtifactStore,
    datalog_key,
    decode_artifact,
    encode_artifact,
    set_default_store,
)
from repro.persist import format as sformat
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary
from repro.treewidth.heuristics import cached_decomposition

BINARY = Vocabulary.from_arities({"E": 2})


def fresh_pair():
    """A small instance, rebuilt fresh so no compile memos ride along."""
    source = Structure(BINARY, range(2), {"E": [(0, 1), (1, 0)]})
    target = Structure(
        BINARY,
        range(3),
        {"E": [(i, j) for i in range(3) for j in range(3) if i != j]},
    )
    return source, target


# ---------------------------------------------------------------------------
# The on-disk format
# ---------------------------------------------------------------------------


class TestFormat:
    def test_clean_log_scans_clean(self):
        blob = sformat.HEADER + sformat.encode_record("k", "key", b"payload")
        report = sformat.scan_log(blob)
        assert report.clean
        assert len(report.records) == 1
        assert report.good_end == len(blob)
        record = report.records[0]
        assert (record.kind, record.key) == ("k", "key")

    def test_bad_header_rejected(self):
        report = sformat.scan_log(b"NOTSTORE" + b"\x00" * 8)
        assert report.failure == "bad-header"
        assert not report.records

    def test_torn_tail_detected_and_prefix_kept(self):
        good = sformat.encode_record("k", "a", b"one")
        torn = sformat.encode_record("k", "b", b"two")[:-3]
        report = sformat.scan_log(sformat.HEADER + good + torn)
        assert report.failure == "torn-record"
        assert len(report.records) == 1
        assert report.good_end == sformat.HEADER_SIZE + len(good)

    def test_bit_flip_detected(self):
        record = sformat.encode_record("k", "a", b"payload-bytes")
        blob = bytearray(sformat.HEADER + record)
        blob[-4] ^= 0x40  # flip one payload bit
        report = sformat.scan_log(bytes(blob))
        assert report.failure == "checksum"
        assert not report.records

    def test_implausible_length_prefix_rejected(self):
        record = bytearray(sformat.encode_record("k", "a", b"x"))
        record[4:8] = (0xFF, 0xFF, 0xFF, 0xFF)  # absurd payload_len
        report = sformat.scan_log(sformat.HEADER + bytes(record))
        assert report.failure == "bad-length"

    def test_read_record_at_reverifies(self, tmp_path):
        record = sformat.encode_record("k", "a", b"payload")
        path = tmp_path / "log"
        path.write_bytes(sformat.HEADER + record)
        with open(path, "r+b") as fh:
            assert sformat.read_record_at(fh, sformat.HEADER_SIZE) == (
                "k",
                "a",
                b"payload",
            )
            # Rot the payload after open: the read must refuse.
            fh.seek(sformat.HEADER_SIZE + len(record) - 2)
            fh.write(b"!!")
            fh.flush()
            with pytest.raises(StoreCorruptionError):
                sformat.read_record_at(fh, sformat.HEADER_SIZE)


# ---------------------------------------------------------------------------
# The codec: one canonical serializer
# ---------------------------------------------------------------------------


class TestCodec:
    def test_store_bytes_are_pool_bytes(self):
        """The store persists exactly what the process pool pickles."""
        _, target = fresh_pair()
        compiled = compile_target(target)
        assert encode_artifact("ctarget", compiled) == pickle.dumps(
            compiled, protocol=5
        )

    def test_wrong_type_refused_on_encode(self):
        with pytest.raises(TypeError):
            encode_artifact("ctarget", "not a compiled target")

    def test_wrong_type_is_corruption_on_decode(self):
        payload = pickle.dumps("just a string", protocol=5)
        with pytest.raises(StoreCorruptionError):
            decode_artifact("ctarget", payload)

    def test_garbage_is_corruption_on_decode(self):
        with pytest.raises(StoreCorruptionError):
            decode_artifact("ctarget", b"\x80\x05garbage")

    def test_compiled_target_reattaches_to_memo(self):
        _, target = fresh_pair()
        compiled = compile_target(target)
        restored = pickle.loads(pickle.dumps(compiled))
        assert restored.structure._compiled_target is restored
        assert compile_target(restored.structure) is restored
        assert restored.supports == compiled.supports

    def test_compiled_source_reattaches_to_memo(self):
        source, _ = fresh_pair()
        compiled = compile_source(source)
        restored = pickle.loads(pickle.dumps(compiled))
        assert restored.structure._compiled_source is restored

    def test_compiled_query_reattaches_to_memo(self):
        query = ConjunctiveQuery(
            ("X",), [("E", ("X", "Y")), ("E", ("Y", "Z"))]
        )
        compiled = compile_query(query)
        canonical = compiled.canonical
        restored = pickle.loads(pickle.dumps(compiled))
        assert restored.query._compiled is restored
        assert restored.fingerprint == compiled.fingerprint
        assert restored.canonical == canonical

    def test_bare_query_pickles_without_memo(self):
        query = ConjunctiveQuery(("X",), [("E", ("X", "Y"))])
        compile_query(query)
        assert pickle.loads(pickle.dumps(query))._compiled is None


# ---------------------------------------------------------------------------
# The store proper
# ---------------------------------------------------------------------------


class TestStore:
    def test_round_trips_every_artifact_kind(self, tmp_path):
        source, target = fresh_pair()
        boolean = Structure(BINARY, (0, 1), {"E": [(0, 1), (1, 1)]})
        compiled = compile_target(target)
        query = ConjunctiveQuery(("X",), [("E", ("X", "Y"))])
        cq = compile_query(query)
        _ = cq.canonical
        program = canonical_program(target, 2)
        fp = canonical_fingerprint(target)

        with ArtifactStore(tmp_path / "store") as store:
            assert store.put("ctarget", fp, compiled)
            assert store.put(
                "classification",
                canonical_fingerprint(boolean),
                classify_structure(boolean),
            )
            assert store.put(
                "decomposition",
                canonical_fingerprint(source),
                cached_decomposition(source),
            )
            assert store.put("query", cq.fingerprint, cq)
            assert store.put("datalog", datalog_key(fp, 2), program)

        ro = ArtifactStore(tmp_path / "store", mode="ro")
        assert ro.get("ctarget", fp).supports == compiled.supports
        assert ro.get(
            "classification", canonical_fingerprint(boolean)
        ) == classify_structure(boolean)
        decomp = ro.get("decomposition", canonical_fingerprint(source))
        assert decomp.bags == cached_decomposition(source).bags
        assert ro.get("query", cq.fingerprint).canonical == cq.canonical
        restored = ro.get("datalog", datalog_key(fp, 2))
        assert restored.rules == program.rules
        assert restored.goal == program.goal
        assert ro.stats.hits == 5 and ro.stats.corrupt_records == 0
        ro.close()

    def test_miss_returns_none(self, tmp_path):
        with ArtifactStore(tmp_path / "store") as store:
            assert store.get("ctarget", "no-such-fingerprint") is None
            assert store.stats.misses == 1

    def test_put_is_insert_only(self, tmp_path):
        _, target = fresh_pair()
        compiled = compile_target(target)
        fp = canonical_fingerprint(target)
        with ArtifactStore(tmp_path / "store") as store:
            assert store.put("ctarget", fp, compiled)
            assert not store.put("ctarget", fp, compiled)
            assert store.stats.appends == 1

    def test_single_writer_lock(self, tmp_path):
        with ArtifactStore(tmp_path / "store"):
            with pytest.raises(ArtifactStoreError, match="lock"):
                ArtifactStore(tmp_path / "store")
        # Lock released on close: a new writer succeeds.
        ArtifactStore(tmp_path / "store").close()

    def test_readers_need_no_lock(self, tmp_path):
        with ArtifactStore(tmp_path / "store"):
            ro = ArtifactStore(tmp_path / "store", mode="ro")
            ro.close()

    def test_ro_mode_never_writes(self, tmp_path):
        _, target = fresh_pair()
        with ArtifactStore(tmp_path / "store"):
            pass
        ro = ArtifactStore(tmp_path / "store", mode="ro")
        assert not ro.put(
            "ctarget", canonical_fingerprint(target), compile_target(target)
        )
        ro.close()

    def test_ro_open_of_missing_store_is_empty(self, tmp_path):
        ro = ArtifactStore(tmp_path / "nowhere", mode="ro")
        assert ro.get("ctarget", "x") is None
        ro.close()

    def test_truncated_log_recovers_warm_prefix(self, tmp_path, caplog):
        source, target = fresh_pair()
        fp_t = canonical_fingerprint(target)
        fp_s = canonical_fingerprint(source)
        with ArtifactStore(tmp_path / "store") as store:
            store.put("ctarget", fp_t, compile_target(target))
            store.put(
                "decomposition", fp_s, cached_decomposition(source)
            )
        log_path = os.path.join(tmp_path / "store", ArtifactStore.LOG_NAME)
        # Tear the second record: simulate a writer SIGKILLed mid-append.
        with open(log_path, "r+b") as fh:
            fh.truncate(os.path.getsize(log_path) - 7)
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            store = ArtifactStore(tmp_path / "store")
        assert store.stats.corrupt_records == 1
        assert store.stats.quarantined_bytes > 0
        assert any(
            "store recovery" in record.message for record in caplog.records
        )
        # Warm where possible: the first record survived and verifies.
        assert store.get("ctarget", fp_t) is not None
        # Cold where not: the torn record is gone, quarantined as evidence.
        assert store.get("decomposition", fp_s) is None
        assert os.listdir(store.quarantine_path)
        store.close()

    def test_bit_flip_recovers_and_warns(self, tmp_path, caplog):
        source, target = fresh_pair()
        fp_t = canonical_fingerprint(target)
        with ArtifactStore(tmp_path / "store") as store:
            store.put("ctarget", fp_t, compile_target(target))
            offset, length = store._index[("ctarget", fp_t)]
        log_path = os.path.join(tmp_path / "store", ArtifactStore.LOG_NAME)
        with open(log_path, "r+b") as fh:
            fh.seek(offset + length - 5)
            corrupted = bytes([fh.read(1)[0] ^ 0x01])
            fh.seek(offset + length - 5)
            fh.write(corrupted)
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            store = ArtifactStore(tmp_path / "store")
        assert store.stats.corrupt_records == 1
        assert store.get("ctarget", fp_t) is None  # never served corrupt
        # The store still works after recovery.
        assert store.put("ctarget", fp_t, compile_target(target))
        assert store.get("ctarget", fp_t) is not None
        store.close()

    def test_rot_after_open_never_served(self, tmp_path):
        """A record that rots *after* the opening scan is still refused."""
        _, target = fresh_pair()
        fp = canonical_fingerprint(target)
        store = ArtifactStore(tmp_path / "store")
        store.put("ctarget", fp, compile_target(target))
        offset, length = store._index[("ctarget", fp)]
        log_path = os.path.join(tmp_path / "store", ArtifactStore.LOG_NAME)
        with open(log_path, "r+b") as fh:
            fh.seek(offset + length - 3)
            fh.write(b"\xff\xff\xff")
        assert store.get("ctarget", fp) is None
        assert store.stats.corrupt_records == 1
        assert ("ctarget", fp) not in store
        store.close()

    def test_compaction_bounds_the_log(self, tmp_path):
        # Eight distinct path structures, with their record sizes known
        # up front so the budget provably forces eviction.
        structures = [
            Structure(
                BINARY,
                range(3 + i),
                {"E": [(j, j + 1) for j in range(2 + i)]},
            )
            for i in range(8)
        ]
        records = [
            sformat.encode_record(
                "ctarget",
                canonical_fingerprint(structure),
                encode_artifact("ctarget", compile_target(structure)),
            )
            for structure in structures
        ]
        budget = sformat.HEADER_SIZE + sum(
            len(record) for record in records[-3:]
        )
        store = ArtifactStore(tmp_path / "store", max_bytes=budget)
        fingerprints = []
        for structure in structures:
            fp_i = canonical_fingerprint(structure)
            fingerprints.append(fp_i)
            store.put("ctarget", fp_i, compile_target(structure))
        assert store.stats.compactions >= 1
        assert store.size_bytes() <= budget
        # Newest-first survival: the most recent artifact is always live.
        assert store.get("ctarget", fingerprints[-1]) is not None
        store.close()
        # The compacted log reopens clean.
        reopened = ArtifactStore(tmp_path / "store")
        assert reopened.stats.corrupt_records == 0
        assert reopened.get("ctarget", fingerprints[-1]) is not None
        reopened.close()

    def test_flush_and_reopen(self, tmp_path):
        _, target = fresh_pair()
        fp = canonical_fingerprint(target)
        store = ArtifactStore(tmp_path / "store")
        store.put("ctarget", fp, compile_target(target))
        store.flush()
        assert store.stats.flushes == 1
        store.close()
        reopened = ArtifactStore(tmp_path / "store")
        assert reopened.get("ctarget", fp) is not None
        reopened.close()


# ---------------------------------------------------------------------------
# The cache integration: read-through, write-through, warm-up
# ---------------------------------------------------------------------------


class TestCacheIntegration:
    def test_write_through_then_read_through(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        source, target = fresh_pair()
        s1 = SolverPipeline(cache=StructureCache(store=store)).solve(
            source, target
        )
        assert (s1.stats.kernel or {}).get("compile.targets", 0) >= 1
        assert store.stats.appends >= 1
        # A brand-new cache generation: every structure artifact decodes
        # from the store, so nothing is compiled during the solve.
        source2, target2 = fresh_pair()
        s2 = SolverPipeline(cache=StructureCache(store=store)).solve(
            source2, target2
        )
        assert s2.exists == s1.exists
        assert (s2.stats.kernel or {}).get("compile.targets", 0) == 0
        assert store.stats.hits >= 1
        store.close()

    def test_eager_warm_cache(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        source, target = fresh_pair()
        SolverPipeline(cache=StructureCache(store=store)).solve(
            source, target
        )
        cache = StructureCache()
        warmed = store.warm_cache(cache)
        assert warmed >= 2  # at least the compiled target + decomposition
        assert len(cache) == warmed
        assert store.stats.warmed == warmed
        store.close()

    def test_seed_ignores_unknown_kinds(self):
        cache = StructureCache()
        cache.seed("no-such-kind", "fp", object())
        assert len(cache) == 0

    def test_datalog_read_through_default_store(self, tmp_path):
        from repro.datalog.canonical_program import (
            _cached_canonical_program,
        )

        store = ArtifactStore(tmp_path / "store")
        previous = set_default_store(store)
        _cached_canonical_program.cache_clear()
        try:
            _, target = fresh_pair()
            program = canonical_program(target, 2)
            assert ("datalog", datalog_key(canonical_fingerprint(target), 2)) in store
            # A fresh process generation (cleared lru_cache) reads the
            # program back instead of rebuilding |B|^k rules.
            _cached_canonical_program.cache_clear()
            _, target2 = fresh_pair()
            again = canonical_program(target2, 2)
            assert again.rules == program.rules
            assert store.stats.hits >= 1
        finally:
            set_default_store(previous)
            _cached_canonical_program.cache_clear()
            store.close()


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class TestTelemetry:
    def test_store_metric_families_exposed(self, tmp_path):
        from repro.obs.metrics import default_registry

        store = ArtifactStore(tmp_path / "store")
        _, target = fresh_pair()
        store.put(
            "ctarget", canonical_fingerprint(target), compile_target(target)
        )
        store.get("ctarget", canonical_fingerprint(target))
        store.get("ctarget", "missing")
        store.flush()
        text = default_registry().exposition()
        for family in (
            "repro_store_hits_total",
            "repro_store_misses_total",
            "repro_store_corrupt_records_total",
            "repro_store_appends_total",
            "repro_store_flushes_total",
            "repro_store_bytes",
            "repro_store_records",
            "repro_store_load_ms",
        ):
            assert family in text
        store.close()
        # Unregistered after close: a dead store stops reporting.
        assert "repro_store_hits_total" not in default_registry().exposition()

    def test_recorder_events(self, tmp_path):
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder()
        store = ArtifactStore(
            tmp_path / "store", recorder=recorder, register_metrics=False
        )
        _, target = fresh_pair()
        fp = canonical_fingerprint(target)
        store.put("ctarget", fp, compile_target(target))
        store.get("ctarget", fp)
        store.get("ctarget", "missing")
        store.flush()
        store.close()
        counts = recorder.counts()
        assert counts.get("store.hit") == 1
        assert counts.get("store.miss") == 1
        assert counts.get("store.flush", 0) >= 1
